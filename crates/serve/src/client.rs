//! A minimal std-only HTTP client and deterministic load generator.
//!
//! Powers the `dg-load` binary and the integration smoke tests. The mix
//! generator is seeded (its own LCG, no wall-clock entropy), so a given
//! `(seed, n)` always produces the same request sequence — which is what
//! makes `BENCH_serve.json` comparable across runs and the CI smoke step
//! reproducible.

use crate::http::{chunked_body_end, decode_chunked};
use crate::json::{obj, Json};
use crate::metrics::monotonic_us;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body as text.
    pub body: String,
}

impl HttpReply {
    /// The first header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request on a fresh connection (`Connection: close`).
///
/// # Errors
///
/// Any socket failure, or a response that is not parseable HTTP/1.1.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpReply> {
    let payload = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: dg-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    raw_request(addr, raw.as_bytes())
}

/// Writes `raw` bytes verbatim and parses whatever comes back — the escape
/// hatch the malformed-framing probes use.
///
/// # Errors
///
/// Any socket failure, or an unparseable response.
pub fn raw_request(addr: SocketAddr, raw: &[u8]) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(raw)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    parse_reply(&bytes)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable reply"))
}

/// Why a request failed, and whether retrying can help.
///
/// The split drives the retry loop in [`request_with_retries`]: transport
/// faults where the server plausibly never processed the request
/// (connect refused/reset, truncated response) are [`Retryable`];
/// complete-but-garbled replies are [`Fatal`] because a retry would just
/// reproduce the same server-side bug; and [`DeadlineExpired`] reports
/// that the per-request wall-clock budget ran out, however many attempts
/// were made.
///
/// [`Retryable`]: ClientError::Retryable
/// [`Fatal`]: ClientError::Fatal
/// [`DeadlineExpired`]: ClientError::DeadlineExpired
#[derive(Debug)]
pub enum ClientError {
    /// A transport fault another attempt may clear.
    Retryable(std::io::Error),
    /// A fault no retry will fix (e.g. a complete but unparseable reply).
    Fatal(std::io::Error),
    /// The per-request deadline expired before any attempt succeeded.
    DeadlineExpired {
        /// Wall time spent on the request, µs.
        elapsed_us: u64,
        /// Attempts started before the budget ran out.
        attempts: u32,
    },
}

impl ClientError {
    /// Whether another attempt could plausibly succeed (with budget left).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Retryable(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable(e) => write!(f, "retryable transport fault: {e}"),
            ClientError::Fatal(e) => write!(f, "fatal client error: {e}"),
            ClientError::DeadlineExpired {
                elapsed_us,
                attempts,
            } => write!(
                f,
                "request deadline expired after {elapsed_us} us and {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// Whether an I/O failure of this kind is worth another attempt.
///
/// Refused/reset/aborted connects, broken pipes, timeouts, and truncated
/// responses all describe a server that may simply have been busy or
/// mid-restart; everything else (notably `InvalidData`) is treated as
/// permanent.
pub fn is_retryable_kind(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
            | ErrorKind::BrokenPipe
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
            | ErrorKind::UnexpectedEof
            | ErrorKind::Interrupted
    )
}

/// Per-request robustness knobs for [`http_request_with`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries); clamped to at least 1.
    pub max_attempts: u32,
    /// First retry's nominal backoff, µs (doubles per retry).
    pub base_backoff_us: u64,
    /// Cap on any single nominal backoff, µs.
    pub max_backoff_us: u64,
    /// Wall-clock budget for the whole request — connect, write, full
    /// response read, and every backoff pause — in µs.
    pub deadline_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 5_000,
            max_backoff_us: 100_000,
            deadline_us: 10_000_000,
        }
    }
}

/// The deterministic backoff pauses (µs) a `(policy, seed)` pair produces:
/// one entry per possible retry, exponentially growing and capped, with
/// "equal jitter" — half the nominal value fixed plus a seeded-uniform
/// half — so concurrent clients spread out without wall-clock entropy.
#[must_use]
pub fn backoff_schedule(policy: &RetryPolicy, seed: u64) -> Vec<u64> {
    let mut rng = Lcg::new(seed);
    let base = policy.base_backoff_us.max(1);
    let cap = policy.max_backoff_us.max(base);
    (0..policy.max_attempts.saturating_sub(1))
        .map(|k| {
            let nominal = base.checked_shl(k).unwrap_or(u64::MAX).min(cap);
            nominal / 2 + rng.below(nominal / 2 + 1)
        })
        .collect()
}

/// The pause (µs) before retry number `attempt` (0-based).
///
/// Attempts past the end of the schedule reuse its final — largest,
/// capped — pause instead of falling back to zero: a fallback of 0 would
/// turn any overrun into a busy retry loop hammering a server that is
/// by then demonstrably struggling.
fn backoff_pause(schedule: &[u64], attempt: usize) -> u64 {
    schedule
        .get(attempt)
        .or_else(|| schedule.last())
        .copied()
        .unwrap_or(0)
}

/// Converts a µs budget into a socket-timeout duration (never zero,
/// because a zero `Duration` is rejected by `set_read_timeout`).
fn us_timeout(us: u64) -> Duration {
    Duration::from_micros(us.max(1))
}

/// One deadline-bounded request attempt on a fresh connection.
///
/// The deadline applies to the connect, the write, and *every* read of
/// the response — a server that stalls mid-body fails the attempt with
/// `TimedOut` when the budget runs out, rather than hanging for the
/// 30-second defaults of [`raw_request`].
fn attempt_once(addr: SocketAddr, raw: &[u8], deadline_us: u64) -> std::io::Result<HttpReply> {
    use std::io::{Error, ErrorKind};
    let remaining = deadline_us.saturating_sub(monotonic_us());
    if remaining == 0 {
        return Err(Error::new(ErrorKind::TimedOut, "deadline expired"));
    }
    let mut stream = TcpStream::connect_timeout(&addr, us_timeout(remaining))?;
    let remaining = deadline_us.saturating_sub(monotonic_us());
    if remaining == 0 {
        return Err(Error::new(
            ErrorKind::TimedOut,
            "deadline expired after connect",
        ));
    }
    stream.set_write_timeout(Some(us_timeout(remaining)))?;
    stream.write_all(raw)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let now = monotonic_us();
        if now >= deadline_us {
            return Err(Error::new(
                ErrorKind::TimedOut,
                "deadline expired mid-response",
            ));
        }
        stream.set_read_timeout(Some(us_timeout(deadline_us - now)))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(Error::new(
                    ErrorKind::TimedOut,
                    "deadline expired mid-response",
                ));
            }
            Err(e) => return Err(e),
        }
    }
    match parse_reply(&bytes) {
        Some(reply) => Ok(reply),
        // Nothing (or a truncated head) came back: the server closed
        // early, which a retry may well fix. A complete head over a
        // chunked stream whose terminal chunk never arrived is the same
        // kind of truncation, just later in the response. A complete head
        // that still does not parse is a server bug a retry will only
        // reproduce.
        None if !bytes.windows(4).any(|w| w == b"\r\n\r\n") => Err(Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed before a complete response",
        )),
        None if is_truncated_chunked(&bytes) => Err(Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed mid chunked stream",
        )),
        None => Err(Error::new(ErrorKind::InvalidData, "unparseable reply")),
    }
}

/// Whether `bytes` is a complete response head declaring a chunked body
/// whose terminal chunk never arrived — a stream cut mid-flight, not a
/// framing bug. [`attempt_once`] classifies this as `UnexpectedEof`
/// (retryable) rather than `InvalidData`: the leftover chunk bytes may
/// even decode to an empty or partial payload, but the truncation is the
/// server dying, which a retry may well fix.
fn is_truncated_chunked(bytes: &[u8]) -> bool {
    let Some(head_len) = head_end(bytes) else {
        return false;
    };
    let head = String::from_utf8_lossy(bytes.get(..head_len).unwrap_or_default()).into_owned();
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    is_chunked(&headers) && chunked_body_end(bytes.get(head_len..).unwrap_or_default()).is_none()
}

/// Issues `raw` with retries, deterministic jittered backoff, and a hard
/// per-request deadline, per `policy`. The retry pauses come from
/// [`backoff_schedule`]`(policy, seed)`, so a given `(policy, seed)`
/// always retries on the same schedule.
///
/// # Errors
///
/// [`ClientError::Fatal`] immediately on non-retryable faults,
/// [`ClientError::Retryable`] once attempts are exhausted, and
/// [`ClientError::DeadlineExpired`] when the budget runs out first.
pub fn request_with_retries(
    addr: SocketAddr,
    raw: &[u8],
    policy: &RetryPolicy,
    seed: u64,
) -> Result<HttpReply, ClientError> {
    let start = monotonic_us();
    let deadline = start.saturating_add(policy.deadline_us.max(1));
    let schedule = backoff_schedule(policy, seed);
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..attempts {
        if monotonic_us() >= deadline {
            return Err(ClientError::DeadlineExpired {
                elapsed_us: monotonic_us().saturating_sub(start),
                attempts: attempt,
            });
        }
        match attempt_once(addr, raw, deadline) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                if e.kind() == std::io::ErrorKind::TimedOut && monotonic_us() >= deadline {
                    return Err(ClientError::DeadlineExpired {
                        elapsed_us: monotonic_us().saturating_sub(start),
                        attempts: attempt + 1,
                    });
                }
                if !is_retryable_kind(e.kind()) {
                    return Err(ClientError::Fatal(e));
                }
                last = Some(e);
            }
        }
        if attempt + 1 < attempts {
            let pause = backoff_pause(&schedule, attempt as usize);
            if monotonic_us().saturating_add(pause) >= deadline {
                return Err(ClientError::DeadlineExpired {
                    elapsed_us: monotonic_us().saturating_sub(start),
                    attempts: attempt + 1,
                });
            }
            std::thread::sleep(Duration::from_micros(pause));
        }
    }
    match last {
        Some(e) => Err(ClientError::Retryable(e)),
        None => Err(ClientError::DeadlineExpired {
            elapsed_us: monotonic_us().saturating_sub(start),
            attempts,
        }),
    }
}

/// Like [`http_request`], but with the full robustness layer: per-request
/// deadline, bounded retries, deterministic backoff, and typed error
/// classification. This is what `dg-load` and the chaos driver use.
///
/// # Errors
///
/// See [`request_with_retries`].
pub fn http_request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    seed: u64,
) -> Result<HttpReply, ClientError> {
    let payload = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: dg-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    request_with_retries(addr, raw.as_bytes(), policy, seed)
}

/// Finds the end (exclusive) of the `\r\n\r\n`-terminated response head.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads one `Content-Length`-framed HTTP/1.1 response from `stream`,
/// using (and refilling) `leftover` as the connection's read buffer so
/// bytes of a following response are preserved for the next call.
///
/// This is the keep-alive counterpart of [`parse_reply`]: where the
/// close-framed path can read to EOF, a persistent connection must stop
/// exactly at the declared body length. The dg-router forward path uses
/// the same routine for its pooled upstream connections.
///
/// # Errors
///
/// Socket errors, a clean close before a complete response
/// (`UnexpectedEof`), or an unparseable head (`InvalidData`).
pub fn read_framed_reply(
    stream: &mut TcpStream,
    leftover: &mut Vec<u8>,
) -> std::io::Result<HttpReply> {
    use std::io::{Error, ErrorKind};
    let mut chunk = [0u8; 16 * 1024];
    let head_len = loop {
        if let Some(end) = head_end(leftover) {
            break end;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed before a complete response head",
                ))
            }
            Ok(n) => leftover.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(leftover.get(..head_len).unwrap_or_default()).into_owned();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "unparseable status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    if is_chunked(&headers) {
        // A streamed reply (`/v1/explore`): read until the terminal
        // chunk, then hand back the de-chunked payload so callers see
        // the NDJSON lines, not the chunk framing.
        let encoded_len = loop {
            if let Some(end) = chunked_body_end(leftover.get(head_len..).unwrap_or_default()) {
                break end;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-stream",
                    ))
                }
                Ok(n) => leftover.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let total = head_len.saturating_add(encoded_len);
        let (payload, _) = decode_chunked(leftover.get(head_len..total).unwrap_or_default())
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad chunked framing"))?;
        leftover.drain(..total);
        return Ok(HttpReply {
            status,
            headers,
            body: String::from_utf8_lossy(&payload).into_owned(),
        });
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let total = head_len.saturating_add(content_length);
    while leftover.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => leftover.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let body =
        String::from_utf8_lossy(leftover.get(head_len..total).unwrap_or_default()).into_owned();
    leftover.drain(..total);
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// A persistent HTTP/1.1 connection: requests are sent without
/// `Connection: close` and responses are read by `Content-Length`
/// framing, so consecutive requests reuse one TCP connection.
///
/// The client reconnects lazily: a transport fault on a *reused*
/// connection (the server may simply have timed out the idle socket or
/// hit its per-connection request cap) is retried once on a fresh
/// connection before being reported.
#[derive(Debug)]
pub struct KeepAliveClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    leftover: Vec<u8>,
}

impl KeepAliveClient {
    /// A client for `addr` with a 30 s per-read socket timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(30))
    }

    /// A client for `addr` with an explicit socket timeout.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        KeepAliveClient {
            addr,
            timeout,
            stream: None,
            leftover: Vec::new(),
        }
    }

    /// Ensures the connection is established (no-op when already up).
    ///
    /// # Errors
    ///
    /// Propagates connect / socket-option failures.
    pub fn connect(&mut self) -> std::io::Result<()> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.leftover.clear();
            self.stream = Some(stream);
        }
        Ok(())
    }

    /// Drops the connection; the next request reconnects.
    pub fn reset(&mut self) {
        self.stream = None;
        self.leftover.clear();
    }

    /// Issues one keep-alive request, retrying once on a fresh connection
    /// if a *reused* connection faults.
    ///
    /// # Errors
    ///
    /// Socket failures after the stale-connection retry, or an
    /// unparseable response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpReply> {
        let reused = self.stream.is_some();
        match self.request_once(method, path, body) {
            Ok(reply) => Ok(reply),
            Err(e) if reused && is_retryable_kind(e.kind()) => {
                self.reset();
                self.request_once(method, path, body)
            }
            Err(e) => {
                self.reset();
                Err(e)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpReply> {
        self.connect()?;
        let payload = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: dg-serve\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        );
        let outcome = match self.stream.as_mut() {
            Some(stream) => stream
                .write_all(raw.as_bytes())
                .and_then(|()| read_framed_reply(stream, &mut self.leftover)),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connect did not establish a stream",
            )),
        };
        match outcome {
            Ok(reply) => {
                // Honor the server's close decision (shed, drain, cap).
                if reply
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.reset();
                }
                Ok(reply)
            }
            Err(e) => {
                self.reset();
                Err(e)
            }
        }
    }
}

/// Whether a lowercased header list declares a chunked body.
fn is_chunked(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"))
}

fn parse_reply(bytes: &[u8]) -> Option<HttpReply> {
    let text = String::from_utf8_lossy(bytes);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(pair) => pair,
        None => text.split_once("\n\n")?,
    };
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    let body = if is_chunked(&headers) {
        // A streamed reply read to EOF: de-chunk so callers see the
        // NDJSON payload, not the chunk framing.
        let (payload, _) = decode_chunked(body.as_bytes())?;
        String::from_utf8_lossy(&payload).into_owned()
    } else {
        body.to_owned()
    };
    Some(HttpReply {
        status,
        headers,
        body,
    })
}

/// A deterministic linear-congruential generator (Knuth MMIX constants).
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1))
    }

    /// The next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// A value in `[0, bound)` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// One request of the generated mix.
#[derive(Debug, Clone)]
enum MixItem {
    /// `(method, path, body, expected status)` of a well-formed request.
    /// The expectation is `None` when any success/shed outcome is fine,
    /// `Some(status)` for probes whose whole point is a specific rejection.
    Framed(&'static str, &'static str, String, Option<u16>),
    /// Raw bytes with intentionally broken framing; the expected status.
    Raw(Vec<u8>, u16),
}

/// Which slice of the probe population a run draws from.
///
/// The historical single mix interleaved well-formed traffic with
/// deliberately broken framing, which made the benchmark numbers measure
/// "valid work plus parser rejections" in one blur. The bench run now
/// uses [`Valid`] (every request is a well-formed computation or read)
/// and records a separate [`ErrorProbes`] pass; the smoke tests keep
/// [`Full`] so the rejection paths stay exercised under concurrency.
///
/// [`Valid`]: MixKind::Valid
/// [`ErrorProbes`]: MixKind::ErrorProbes
/// [`Full`]: MixKind::Full
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Everything: valid traffic and error probes interleaved.
    Full,
    /// Only well-formed requests that expect success.
    Valid,
    /// Only the rejection probes (malformed, oversized, empty/huge batch).
    ErrorProbes,
}

fn droop_probe(rng: &mut Lcg) -> MixItem {
    // Four droop variants → heavy repetition across the burst.
    let to = 40 + 10 * rng.below(4);
    MixItem::Framed(
        "POST",
        "/v1/droop",
        format!("{{\"variant\":\"gated\",\"from_a\":10,\"to_a\":{to}}}"),
        None,
    )
}

fn sweep_probe(rng: &mut Lcg) -> MixItem {
    let variant = if rng.below(2) == 0 {
        "gated"
    } else {
        "bypassed"
    };
    MixItem::Framed(
        "POST",
        "/v1/sweep",
        format!("{{\"variant\":\"{variant}\",\"points\":128,\"decimate\":16}}"),
        None,
    )
}

fn product_spec_probe() -> MixItem {
    MixItem::Framed(
        "POST",
        "/v1/product",
        "{\"design\":\"desktop\",\"tdp_w\":91,\
         \"workload\":{\"kind\":\"spec\",\"benchmark\":\"444.namd\",\"mode\":\"base\"}}"
            .to_owned(),
        None,
    )
}

fn product_energy_probe() -> MixItem {
    MixItem::Framed(
        "POST",
        "/v1/product",
        "{\"design\":\"mobile\",\"tdp_w\":45,\
         \"workload\":{\"kind\":\"energy\",\"name\":\"energy-star\"}}"
            .to_owned(),
        None,
    )
}

fn valid_batch_probe(rng: &mut Lcg) -> MixItem {
    // A small valid batch (2–4 lanes from a fixed menu): few distinct
    // shapes → the coalescer and the batch kernel both see repetition.
    let lanes = 2 + rng.below(3);
    let steps: Vec<String> = (0..lanes)
        .map(|k| format!("{{\"from_a\":10,\"to_a\":{}}}", 40 + 10 * k))
        .collect();
    MixItem::Framed(
        "POST",
        "/v1/droop_batch",
        format!("{{\"variant\":\"gated\",\"steps\":[{}]}}", steps.join(",")),
        None,
    )
}

fn explore_probe(rng: &mut Lcg) -> MixItem {
    // A small 2x2 design-space sweep (8 points with two fuse modes):
    // streams chunked NDJSON, which the reply readers de-chunk. Two seeds
    // keep the response cache honest without splitting it per request.
    let seed = rng.below(2);
    MixItem::Framed(
        "POST",
        "/v1/explore",
        format!(
            "{{\"seed\":{seed},\"tech_nodes\":[45,22],\"tdp_w\":[45,91],\"big_perf\":[20],\
             \"small_perf\":[2],\"fraction_parallelism\":[0.9]}}"
        ),
        None,
    )
}

fn malformed_explore_probe() -> MixItem {
    // Well-framed HTTP around an unparseable spec document: the route
    // must 400 before any grid work.
    MixItem::Framed("POST", "/v1/explore", "{not a spec".to_owned(), Some(400))
}

fn oversized_explore_probe() -> MixItem {
    // A 32-value parallelism axis over the default Charm axes crosses to
    // 6*4*4*4*32*2 = 24576 points, past the serve tier's 20k cap: 413
    // before any evaluation.
    let fractions: Vec<String> = (0..32)
        .map(|i| format!("{:.6}", f64::from(i) / 32.0))
        .collect();
    MixItem::Framed(
        "POST",
        "/v1/explore",
        format!("{{\"fraction_parallelism\":[{}]}}", fractions.join(",")),
        Some(413),
    )
}

fn garbage_probe() -> MixItem {
    MixItem::Raw(b"THIS IS NOT HTTP\r\n\r\n".to_vec(), 400)
}

fn oversized_probe() -> MixItem {
    // Declares a body far beyond the server's cap: rejected with 413
    // before any body byte is transferred.
    MixItem::Raw(
        b"POST /v1/droop HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n".to_vec(),
        413,
    )
}

fn empty_batch_probe() -> MixItem {
    // An empty batch is a client error, never a computation.
    MixItem::Framed(
        "POST",
        "/v1/droop_batch",
        "{\"steps\":[]}".to_owned(),
        Some(400),
    )
}

fn oversized_batch_probe() -> MixItem {
    // One lane beyond the admission limit: rejected with 400 before any
    // lane is integrated.
    let steps = vec!["{\"from_a\":10,\"to_a\":40}"; 257];
    MixItem::Framed(
        "POST",
        "/v1/droop_batch",
        format!("{{\"steps\":[{}]}}", steps.join(",")),
        Some(400),
    )
}

fn droop_sweep_probe(rng: &mut Lcg) -> MixItem {
    // A small delta grid (2 or 3 lanes from two fixed shapes): streams
    // chunked NDJSON waves like explore, with enough repetition that the
    // coalescer and response cache both see the route. Kept tiny on
    // purpose — each lane is a full transient capture, and the smoke
    // server is deliberately starved (2 workers, queue of 4), so a fat
    // grid would turn the whole burst into a shed storm.
    let points = 2 + rng.below(2);
    MixItem::Framed(
        "POST",
        "/v1/droop_sweep",
        format!(
            "{{\"variant\":\"gated\",\"quiescent_a\":10,\
             \"delta\":{{\"start_a\":20,\"stop_a\":40,\"points\":{points}}}}}"
        ),
        None,
    )
}

fn oversized_sweep_probe() -> MixItem {
    // One grid point past the population cap: rejected with 400 before
    // any lane is expanded or integrated.
    MixItem::Framed(
        "POST",
        "/v1/droop_sweep",
        "{\"delta\":{\"start_a\":1,\"stop_a\":50,\"points\":8193}}".to_owned(),
        Some(400),
    )
}

/// The deterministic next request of the seeded mix for `kind`.
///
/// The mixes lean on repetition on purpose: repeated identical droops and
/// sweeps exercise the substrate caches, the response cache, and the
/// coalescer; the malformed and oversized entries exercise the parser's
/// rejection paths; the batch probes (valid, empty, oversized) exercise
/// the lockstep transient kernel and its admission limits.
fn mix_item_of(rng: &mut Lcg, kind: MixKind) -> MixItem {
    match kind {
        MixKind::Full => match rng.below(24) {
            0 | 1 => MixItem::Framed("GET", "/healthz", String::new(), None),
            2 => MixItem::Framed("GET", "/v1/claims", String::new(), None),
            3..=6 => droop_probe(rng),
            7..=9 => sweep_probe(rng),
            10 | 11 => product_spec_probe(),
            12 => product_energy_probe(),
            13 => MixItem::Framed("GET", "/metrics", String::new(), None),
            14 => garbage_probe(),
            15 => oversized_probe(),
            16 => valid_batch_probe(rng),
            17 => empty_batch_probe(),
            18 => oversized_batch_probe(),
            19 => explore_probe(rng),
            20 => malformed_explore_probe(),
            21 => oversized_explore_probe(),
            22 => droop_sweep_probe(rng),
            _ => oversized_sweep_probe(),
        },
        MixKind::Valid => match rng.below(17) {
            0 | 1 => MixItem::Framed("GET", "/healthz", String::new(), None),
            2 => MixItem::Framed("GET", "/v1/claims", String::new(), None),
            3..=6 => droop_probe(rng),
            7..=9 => sweep_probe(rng),
            10 | 11 => product_spec_probe(),
            12 => product_energy_probe(),
            13 => MixItem::Framed("GET", "/metrics", String::new(), None),
            14 => valid_batch_probe(rng),
            15 => explore_probe(rng),
            _ => droop_sweep_probe(rng),
        },
        MixKind::ErrorProbes => match rng.below(7) {
            0 => garbage_probe(),
            1 => oversized_probe(),
            2 => empty_batch_probe(),
            3 => oversized_batch_probe(),
            4 => malformed_explore_probe(),
            5 => oversized_explore_probe(),
            _ => oversized_sweep_probe(),
        },
    }
}

/// Aggregated results of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// 2xx responses.
    pub ok_2xx: usize,
    /// 4xx responses (the mix's malformed probes land here by design).
    pub err_4xx: usize,
    /// 503 sheds (admission control working as specified).
    pub shed_503: usize,
    /// 5xx responses other than 503 — the smoke gate requires **zero**.
    pub other_5xx: usize,
    /// Requests that failed at the transport layer.
    pub transport_errors: usize,
    /// Probes whose status differed from the expectation baked into the
    /// mix (e.g. a malformed frame that was *not* answered 400).
    pub expectation_failures: usize,
    /// Wall time of the whole run, µs.
    pub elapsed_us: u64,
    /// Per-request latencies, sorted ascending, µs.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// The `q`-quantile latency in µs (0 with no samples).
    ///
    /// Nearest-rank: the smallest sample with at least a `q` fraction of
    /// the population at or below it — `rank = ceil(n·q)` clamped to
    /// `1..=n`, the same semantics as the server-side
    /// [`Histogram::quantile_upper_us`], so a client-reported p99 and the
    /// `/metrics` p99 describe the same order statistic. (The old
    /// `floor((n-1)·q)` index under-reported tail quantiles: with 50
    /// samples it called the 49th value "p99" when nearest-rank says the
    /// maximum.)
    ///
    /// [`Histogram::quantile_upper_us`]: crate::metrics::Histogram::quantile_upper_us
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.latencies_us.len();
        if n == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = (((n as f64) * q.clamp(0.0, 1.0)).ceil() as usize).clamp(1, n);
        self.latencies_us.get(rank - 1).copied().unwrap_or(0)
    }

    /// Median latency, µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency, µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Achieved request rate, requests per second.
    pub fn rps(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.requests as f64) * 1e6 / (self.elapsed_us as f64)
        }
    }

    /// The report as JSON (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        fn num(n: usize) -> Json {
            Json::Num(n as f64)
        }
        #[allow(clippy::cast_precision_loss)]
        fn num64(n: u64) -> Json {
            Json::Num(n as f64)
        }
        obj(vec![
            ("requests", num(self.requests)),
            ("ok_2xx", num(self.ok_2xx)),
            ("err_4xx", num(self.err_4xx)),
            ("shed_503", num(self.shed_503)),
            ("other_5xx", num(self.other_5xx)),
            ("transport_errors", num(self.transport_errors)),
            ("expectation_failures", num(self.expectation_failures)),
            ("elapsed_us", num64(self.elapsed_us)),
            ("rps", Json::Num(self.rps())),
            ("p50_us", num64(self.p50_us())),
            ("p99_us", num64(self.p99_us())),
        ])
    }

    fn absorb(&mut self, status: u16, expected: Option<u16>, latency_us: u64) {
        self.requests += 1;
        self.latencies_us.push(latency_us);
        match status {
            200..=299 => self.ok_2xx += 1,
            503 => self.shed_503 += 1,
            400..=499 => self.err_4xx += 1,
            _ => self.other_5xx += 1,
        }
        // A shed (503) is an admission-level outcome and can pre-empt any
        // probe, so it never counts against a probe's expected status.
        if expected.is_some_and(|want| want != status && status != 503) {
            self.expectation_failures += 1;
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.requests += other.requests;
        self.ok_2xx += other.ok_2xx;
        self.err_4xx += other.err_4xx;
        self.shed_503 += other.shed_503;
        self.other_5xx += other.other_5xx;
        self.transport_errors += other.transport_errors;
        self.expectation_failures += other.expectation_failures;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Knobs for [`run_mix_with`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Total requests across all threads.
    pub n: usize,
    /// Mix seed; each thread derives a sub-seed.
    pub seed: u64,
    /// Client threads (clamped to `1..=256`).
    pub concurrency: usize,
    /// Which probe population to draw from.
    pub kind: MixKind,
    /// Reuse one connection per thread instead of one per request.
    pub keep_alive: bool,
}

/// Runs `n` requests of the seeded mix against `addr` from `concurrency`
/// client threads, and aggregates the outcome.
///
/// Each thread derives its own sub-seed from `seed`, so the union of
/// requests is deterministic for a given `(n, seed, concurrency)`.
/// Equivalent to [`run_mix_with`] with the full mix on fresh connections.
pub fn run_mix(addr: SocketAddr, n: usize, seed: u64, concurrency: usize) -> LoadReport {
    run_mix_with(
        addr,
        &RunOptions {
            n,
            seed,
            concurrency,
            kind: MixKind::Full,
            keep_alive: false,
        },
    )
}

/// The configurable load runner behind [`run_mix`] and `dg-load`.
///
/// Threads establish their keep-alive connections *before* a shared
/// barrier releases them, and the run clock starts at the barrier — so
/// `rps` measures request throughput, not connection setup. (Raw
/// malformed probes still open fresh connections mid-run by design:
/// broken framing on a shared connection would poison its successors.)
pub fn run_mix_with(addr: SocketAddr, opts: &RunOptions) -> LoadReport {
    let concurrency = opts.concurrency.clamp(1, 256);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(concurrency + 1));
    let threads: Vec<_> = (0..concurrency)
        .map(|t| {
            let quota = opts.n / concurrency + usize::from(t < opts.n % concurrency);
            let sub_seed = opts
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(t as u64 + 1));
            let kind = opts.kind;
            let keep_alive = opts.keep_alive;
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = if keep_alive {
                    let mut c = KeepAliveClient::new(addr);
                    // dg-analyze: allow(swallowed-result, reason = "warm-up connect paid before the clock starts; a failure surfaces as an error on the first timed send")
                    let _ = c.connect();
                    Some(c)
                } else {
                    None
                };
                barrier.wait();
                let mut rng = Lcg::new(sub_seed);
                let mut report = LoadReport::default();
                for _ in 0..quota {
                    run_one(addr, &mut rng, &mut report, kind, client.as_mut());
                }
                report
            })
        })
        .collect();
    barrier.wait();
    let start = monotonic_us();
    let mut total = LoadReport::default();
    for t in threads {
        match t.join() {
            Ok(report) => total.merge(report),
            Err(_) => total.transport_errors += 1,
        }
    }
    total.elapsed_us = monotonic_us().saturating_sub(start);
    total.latencies_us.sort_unstable();
    total
}

/// The retry policy the load generator applies to its framed requests.
/// Every framed probe in the mix is an idempotent computation, so a
/// couple of quick retries on transport faults are safe; malformed raw
/// probes are sent exactly once (retrying a deliberately broken frame
/// would double-count the parser's rejection).
fn load_retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff_us: 2_000,
        max_backoff_us: 20_000,
        deadline_us: 30_000_000,
    }
}

fn run_one(
    addr: SocketAddr,
    rng: &mut Lcg,
    report: &mut LoadReport,
    kind: MixKind,
    client: Option<&mut KeepAliveClient>,
) {
    let item = mix_item_of(rng, kind);
    // Drawn unconditionally so the RNG stream (and thus the rest of the
    // mix) is identical whether or not a request ends up retrying.
    let retry_seed = rng.next_u64();
    let begin = monotonic_us();
    let outcome = match &item {
        MixItem::Framed(method, path, body, expect) => {
            let body = if body.is_empty() {
                None
            } else {
                Some(body.as_str())
            };
            match client {
                Some(ka) => ka
                    .request(method, path, body)
                    .map(|r| (r.status, *expect))
                    .map_err(ClientError::Retryable),
                None => {
                    http_request_with(addr, method, path, body, &load_retry_policy(), retry_seed)
                        .map(|r| (r.status, *expect))
                }
            }
        }
        MixItem::Raw(bytes, expect) => raw_request(addr, bytes)
            .map(|r| (r.status, Some(*expect)))
            .map_err(ClientError::Fatal),
    };
    let latency = monotonic_us().saturating_sub(begin);
    match outcome {
        Ok((status, expected)) => report.absorb(status, expected, latency),
        Err(_) => {
            report.requests += 1;
            report.transport_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_varies() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w.first() != w.last()));
        assert!(Lcg::new(1).below(10) < 10);
        assert_eq!(Lcg::new(1).below(0), 0);
    }

    #[test]
    fn mix_is_deterministic_for_a_seed() {
        let seq = |seed| {
            let mut rng = Lcg::new(seed);
            (0..50)
                .map(|_| format!("{:?}", mix_item_of(&mut rng, MixKind::Full)))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn mix_covers_every_probe_kind() {
        let mut rng = Lcg::new(3);
        let items: Vec<MixItem> = (0..200)
            .map(|_| mix_item_of(&mut rng, MixKind::Full))
            .collect();
        let raws = items
            .iter()
            .filter(|i| matches!(i, MixItem::Raw(..)))
            .count();
        let framed = items.len() - raws;
        assert!(raws > 5, "mix must include malformed/oversized probes");
        assert!(framed > 100);
        for path in [
            "/healthz",
            "/v1/droop",
            "/v1/droop_batch",
            "/v1/sweep",
            "/v1/product",
            "/v1/claims",
            "/v1/explore",
            "/v1/droop_sweep",
        ] {
            assert!(
                items
                    .iter()
                    .any(|i| matches!(i, MixItem::Framed(_, p, _, _) if **p == *path)),
                "mix never hit {path}"
            );
        }
        // The batch probes cover the whole admission surface: a valid
        // batch, an empty one (400), and an oversized one (400).
        let batch_probes: Vec<(&String, Option<u16>)> = items
            .iter()
            .filter_map(|i| match i {
                MixItem::Framed(_, "/v1/droop_batch", body, expect) => Some((body, *expect)),
                _ => None,
            })
            .collect();
        assert!(
            batch_probes.iter().any(|(_, e)| e.is_none()),
            "no valid batch probe"
        );
        assert!(
            batch_probes
                .iter()
                .any(|(b, e)| *e == Some(400) && b.contains("\"steps\":[]")),
            "no empty-batch probe"
        );
        assert!(
            batch_probes
                .iter()
                .any(|(b, e)| *e == Some(400) && b.len() > 1000),
            "no oversized-batch probe"
        );
        // The explore probes cover its whole admission surface too:
        // a valid streamed sweep, a malformed spec (400), and a grid
        // past the point cap (413).
        let explore_probes: Vec<(&String, Option<u16>)> = items
            .iter()
            .filter_map(|i| match i {
                MixItem::Framed(_, "/v1/explore", body, expect) => Some((body, *expect)),
                _ => None,
            })
            .collect();
        assert!(
            explore_probes.iter().any(|(_, e)| e.is_none()),
            "no valid explore probe"
        );
        assert!(
            explore_probes.iter().any(|(_, e)| *e == Some(400)),
            "no malformed explore probe"
        );
        assert!(
            explore_probes.iter().any(|(_, e)| *e == Some(413)),
            "no oversized explore probe"
        );
        // And the droop-sweep probes: a valid streamed grid plus a grid
        // one point past the population cap (400).
        let sweep_probes: Vec<(&String, Option<u16>)> = items
            .iter()
            .filter_map(|i| match i {
                MixItem::Framed(_, "/v1/droop_sweep", body, expect) => Some((body, *expect)),
                _ => None,
            })
            .collect();
        assert!(
            sweep_probes.iter().any(|(_, e)| e.is_none()),
            "no valid droop-sweep probe"
        );
        assert!(
            sweep_probes
                .iter()
                .any(|(b, e)| *e == Some(400) && b.contains("8193")),
            "no oversized droop-sweep probe"
        );
    }

    #[test]
    fn valid_mix_is_error_free_and_error_mix_is_probes_only() {
        let mut rng = Lcg::new(5);
        for _ in 0..300 {
            match mix_item_of(&mut rng, MixKind::Valid) {
                MixItem::Raw(..) => panic!("valid mix must not contain raw probes"),
                MixItem::Framed(_, _, _, expect) => {
                    assert_eq!(expect, None, "valid mix must not expect rejections")
                }
            }
        }
        let mut rng = Lcg::new(5);
        let mut raws = 0;
        for _ in 0..100 {
            match mix_item_of(&mut rng, MixKind::ErrorProbes) {
                MixItem::Raw(..) => raws += 1,
                MixItem::Framed(_, _, _, expect) => {
                    assert!(expect.is_some(), "every error probe expects a status")
                }
            }
        }
        assert!(raws > 10, "error mix must include raw framing probes");
    }

    /// A one-connection server answering `n` framed requests, then EOF.
    fn framed_server(n: usize) -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut accepted = 0;
            'outer: while accepted < n {
                let Ok((mut s, _)) = listener.accept() else {
                    break;
                };
                accepted += 1;
                loop {
                    // Requests in these tests are header-only GETs.
                    let mut head = Vec::new();
                    let mut byte = [0u8; 1];
                    loop {
                        match s.read(&mut byte) {
                            Ok(0) => continue 'outer,
                            Ok(_) => head.extend_from_slice(&byte),
                            Err(_) => continue 'outer,
                        }
                        if head.ends_with(b"\r\n\r\n") {
                            break;
                        }
                    }
                    if s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                        .is_err()
                    {
                        continue 'outer;
                    }
                }
            }
            accepted
        });
        (addr, handle)
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        let (addr, server) = framed_server(1);
        let mut client = KeepAliveClient::with_timeout(addr, Duration::from_secs(5));
        for _ in 0..3 {
            let reply = client.request("GET", "/healthz", None).expect("reply");
            assert_eq!(reply.status, 200);
            assert_eq!(reply.body, "ok");
        }
        drop(client); // EOF lets the server thread finish
        assert_eq!(server.join().expect("server"), 1, "one connection only");
    }

    #[test]
    fn keep_alive_client_recovers_from_a_server_side_close() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: one reply, then close (as the server's
            // per-connection request cap would). Second: one more reply.
            for _ in 0..2 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                let mut sink = [0u8; 2048];
                let _ = s.read(&mut sink);
                let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
            }
        });
        let mut client = KeepAliveClient::with_timeout(addr, Duration::from_secs(5));
        let a = client.request("GET", "/healthz", None).expect("first");
        // The server closed the first connection; the retry layer must
        // make this invisible.
        let b = client.request("GET", "/healthz", None).expect("second");
        assert_eq!((a.status, b.status), (200, 200));
        server.join().expect("server");
    }

    #[test]
    fn framed_reply_reader_preserves_pipelined_leftovers() {
        let (a, mut b) = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let conn = TcpStream::connect(addr).expect("connect");
            let (srv, _) = listener.accept().expect("accept");
            (conn, srv)
        };
        // Two back-to-back framed responses in one write.
        b.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nfirstHTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("write");
        let mut stream = a;
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut leftover = Vec::new();
        let first = read_framed_reply(&mut stream, &mut leftover).expect("first");
        assert_eq!((first.status, first.body.as_str()), (200, "first"));
        let second = read_framed_reply(&mut stream, &mut leftover).expect("second");
        assert_eq!(second.status, 503);
        assert_eq!(second.header("retry-after"), Some("2"));
        assert!(leftover.is_empty());
    }

    #[test]
    fn report_quantiles_and_rates() {
        let mut r = LoadReport {
            latencies_us: (1..=100).collect(),
            requests: 100,
            elapsed_us: 1_000_000,
            ..LoadReport::default()
        };
        r.latencies_us.sort_unstable();
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 99);
        assert!((r.rps() - 100.0).abs() < 1e-9);
        assert_eq!(LoadReport::default().p99_us(), 0);
    }

    #[test]
    fn quantiles_use_nearest_rank_matching_the_server_histogram() {
        // Nearest-rank (rank = ceil(n·q), 1-based) on a small population,
        // where the old floor((n-1)·q) index visibly under-reported the
        // tail: with 50 samples, p99 is the maximum, not the 49th value.
        let r = LoadReport {
            latencies_us: (1..=50).collect(),
            requests: 50,
            ..LoadReport::default()
        };
        assert_eq!(r.quantile_us(0.0), 1, "q=0 is the minimum (rank 1)");
        assert_eq!(r.quantile_us(0.5), 25, "rank ceil(25.0) = 25");
        assert_eq!(r.quantile_us(0.99), 50, "rank ceil(49.5) = 50: the max");
        assert_eq!(r.quantile_us(1.0), 50, "q=1 is the maximum (rank n)");
        // Out-of-range q clamps rather than indexing out of bounds.
        assert_eq!(r.quantile_us(-3.0), 1);
        assert_eq!(r.quantile_us(7.0), 50);
        let one = LoadReport {
            latencies_us: vec![42],
            requests: 1,
            ..LoadReport::default()
        };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile_us(q), 42, "a single sample is every quantile");
        }
    }

    #[test]
    fn backoff_pause_clamps_overruns_to_the_last_entry() {
        let schedule = [100, 200, 400];
        assert_eq!(backoff_pause(&schedule, 0), 100);
        assert_eq!(backoff_pause(&schedule, 2), 400);
        // Attempts past the schedule keep the final (capped) pause — a
        // zero fallback here would busy-retry a struggling server.
        assert_eq!(backoff_pause(&schedule, 3), 400);
        assert_eq!(backoff_pause(&schedule, 99), 400);
        assert_eq!(backoff_pause(&[], 0), 0, "no retries → no pause");
    }

    #[test]
    fn truncated_chunked_classifier_spots_cut_streams() {
        // Head + declared chunked body, terminal chunk never arrives.
        assert!(is_truncated_chunked(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel"
        ));
        // Same, with no body bytes at all after the head.
        assert!(is_truncated_chunked(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        ));
        // A complete chunked stream is not a truncation.
        assert!(!is_truncated_chunked(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nok\r\n0\r\n\r\n"
        ));
        // Content-Length framing and incomplete heads are other cases.
        assert!(!is_truncated_chunked(
            b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort"
        ));
        assert!(!is_truncated_chunked(b"HTTP/1.1 200 OK\r\nTransfer-"));
    }

    #[test]
    fn truncated_chunked_stream_is_retryable_not_fatal() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: a complete head, then the stream dies
            // mid-chunk. Second: the head alone, then the close. Both are
            // truncations the client must classify as retryable.
            for reply in [
                &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel"[..],
                &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            ] {
                if let Ok((mut s, _)) = listener.accept() {
                    let mut sink = [0u8; 1024];
                    let _ = s.read(&mut sink);
                    let _ = s.write_all(reply);
                }
            }
        });
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 500,
            max_backoff_us: 1_000,
            deadline_us: 5_000_000,
        };
        let err = http_request_with(addr, "POST", "/v1/explore", Some("{}"), &policy, 23)
            .expect_err("a twice-truncated stream must fail");
        match err {
            ClientError::Retryable(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}");
            }
            other => panic!("expected Retryable(UnexpectedEof), got {other}"),
        }
        server.join().expect("server thread");
    }

    #[test]
    fn report_classifies_statuses() {
        let mut r = LoadReport::default();
        r.absorb(200, None, 10);
        r.absorb(400, Some(400), 10);
        r.absorb(413, Some(400), 10); // expectation miss
        r.absorb(503, None, 10);
        r.absorb(500, None, 10);
        assert_eq!((r.ok_2xx, r.err_4xx, r.shed_503, r.other_5xx), (1, 2, 1, 1));
        assert_eq!(r.expectation_failures, 1);
        let json = r.to_json().render();
        assert!(json.contains("\"other_5xx\":1"));
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff_us: 1_000,
            max_backoff_us: 8_000,
            deadline_us: 1_000_000,
        };
        let a = backoff_schedule(&policy, 7);
        let b = backoff_schedule(&policy, 7);
        assert_eq!(a, b, "same (policy, seed) must give the same schedule");
        assert_ne!(a, backoff_schedule(&policy, 8), "seed must vary jitter");
        assert_eq!(a.len(), 5, "one pause per retry");
        // Equal jitter around the exponential nominal value, capped.
        for (k, pause) in a.iter().enumerate() {
            let nominal = (1_000u64 << k).min(8_000);
            assert!(
                (nominal / 2..=nominal).contains(pause),
                "retry {k}: pause {pause} outside [{}, {nominal}]",
                nominal / 2
            );
        }
        assert!(backoff_schedule(&RetryPolicy::default(), 1).len() == 2);
        let single = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(backoff_schedule(&single, 1).is_empty());
    }

    #[test]
    fn error_kinds_classify_retryable_vs_fatal() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::TimedOut,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(is_retryable_kind(kind), "{kind:?} should be retryable");
        }
        for kind in [
            ErrorKind::InvalidData,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidInput,
            ErrorKind::NotFound,
        ] {
            assert!(!is_retryable_kind(kind), "{kind:?} should be fatal");
        }
        let retryable = ClientError::Retryable(std::io::Error::new(ErrorKind::TimedOut, "stalled"));
        let fatal = ClientError::Fatal(std::io::Error::new(ErrorKind::InvalidData, "junk"));
        let expired = ClientError::DeadlineExpired {
            elapsed_us: 10,
            attempts: 2,
        };
        assert!(retryable.is_retryable());
        assert!(!fatal.is_retryable());
        assert!(!expired.is_retryable());
        assert!(format!("{expired}").contains("2 attempt(s)"));
    }

    #[test]
    fn deadline_expires_mid_body_as_deadline_expired() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut sink = [0u8; 1024];
                let _ = s.read(&mut sink);
                // A partial status line, then a stall longer than the
                // client's whole budget: the response never completes.
                let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-");
                std::thread::sleep(Duration::from_millis(700));
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 2_000,
            deadline_us: 250_000,
        };
        let err = http_request_with(addr, "GET", "/healthz", None, &policy, 9)
            .expect_err("stalled response must not succeed");
        assert!(
            matches!(err, ClientError::DeadlineExpired { .. }),
            "expected DeadlineExpired, got {err}"
        );
        server.join().expect("server thread");
    }

    #[test]
    fn transport_faults_retry_and_then_succeed() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: closed before a single response byte
            // (a retryable truncation). Second: a real reply.
            if let Ok((s, _)) = listener.accept() {
                drop(s);
            }
            if let Ok((mut s, _)) = listener.accept() {
                let mut sink = [0u8; 1024];
                let _ = s.read(&mut sink);
                let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 2_000,
            deadline_us: 5_000_000,
        };
        let reply = http_request_with(addr, "GET", "/healthz", None, &policy, 11)
            .expect("second attempt must succeed");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "ok");
        server.join().expect("server thread");
    }

    #[test]
    fn complete_garbage_reply_is_fatal_not_retried() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // Serve garbage on every connection; a retrying client would
            // need more than one accept to succeed, a fatal one just one.
            if let Ok((mut s, _)) = listener.accept() {
                let mut sink = [0u8; 1024];
                let _ = s.read(&mut sink);
                let _ = s.write_all(b"NOT HTTP AT ALL\r\n\r\nbody");
            }
        });
        let err = http_request_with(addr, "GET", "/healthz", None, &RetryPolicy::default(), 13)
            .expect_err("garbage must fail");
        assert!(
            matches!(err, ClientError::Fatal(_)),
            "expected Fatal, got {err}"
        );
        server.join().expect("server thread");
    }

    #[test]
    fn refused_connections_exhaust_retries_as_retryable() {
        // Bind then drop to learn a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 500,
            max_backoff_us: 1_000,
            deadline_us: 2_000_000,
        };
        let err = http_request_with(addr, "GET", "/healthz", None, &policy, 17)
            .expect_err("refused port must fail");
        assert!(
            matches!(err, ClientError::Retryable(_)),
            "expected Retryable after exhausting attempts, got {err}"
        );
    }

    #[test]
    fn reply_parser_reads_status_and_headers() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi",
        )
        .expect("parse");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.body, "hi");
    }
}

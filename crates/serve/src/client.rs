//! A minimal std-only HTTP client and deterministic load generator.
//!
//! Powers the `dg-load` binary and the integration smoke tests. The mix
//! generator is seeded (its own LCG, no wall-clock entropy), so a given
//! `(seed, n)` always produces the same request sequence — which is what
//! makes `BENCH_serve.json` comparable across runs and the CI smoke step
//! reproducible.

use crate::json::{obj, Json};
use crate::metrics::monotonic_us;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body as text.
    pub body: String,
}

impl HttpReply {
    /// The first header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request on a fresh connection (`Connection: close`).
///
/// # Errors
///
/// Any socket failure, or a response that is not parseable HTTP/1.1.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpReply> {
    let payload = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: dg-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    raw_request(addr, raw.as_bytes())
}

/// Writes `raw` bytes verbatim and parses whatever comes back — the escape
/// hatch the malformed-framing probes use.
///
/// # Errors
///
/// Any socket failure, or an unparseable response.
pub fn raw_request(addr: SocketAddr, raw: &[u8]) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(raw)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    parse_reply(&bytes)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable reply"))
}

fn parse_reply(bytes: &[u8]) -> Option<HttpReply> {
    let text = String::from_utf8_lossy(bytes);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(pair) => pair,
        None => text.split_once("\n\n")?,
    };
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Some(HttpReply {
        status,
        headers,
        body: body.to_owned(),
    })
}

/// A deterministic linear-congruential generator (Knuth MMIX constants).
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1))
    }

    /// The next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// A value in `[0, bound)` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// One request of the generated mix.
#[derive(Debug, Clone)]
enum MixItem {
    /// `(method, path, body)` of a well-formed request.
    Framed(&'static str, &'static str, String),
    /// Raw bytes with intentionally broken framing; the expected status.
    Raw(Vec<u8>, u16),
}

/// The deterministic request at position `i` of the seeded mix.
///
/// The mix leans on repetition on purpose: repeated identical droops and
/// sweeps exercise the substrate caches and the coalescer, the malformed
/// and oversized entries exercise the parser's rejection paths.
fn mix_item(rng: &mut Lcg) -> MixItem {
    match rng.below(16) {
        0 | 1 => MixItem::Framed("GET", "/healthz", String::new()),
        2 => MixItem::Framed("GET", "/v1/claims", String::new()),
        3..=6 => {
            // Four droop variants → heavy repetition across the burst.
            let to = 40 + 10 * rng.below(4);
            MixItem::Framed(
                "POST",
                "/v1/droop",
                format!("{{\"variant\":\"gated\",\"from_a\":10,\"to_a\":{to}}}"),
            )
        }
        7..=9 => {
            let variant = if rng.below(2) == 0 {
                "gated"
            } else {
                "bypassed"
            };
            MixItem::Framed(
                "POST",
                "/v1/sweep",
                format!("{{\"variant\":\"{variant}\",\"points\":128,\"decimate\":16}}"),
            )
        }
        10 | 11 => MixItem::Framed(
            "POST",
            "/v1/product",
            "{\"design\":\"desktop\",\"tdp_w\":91,\
             \"workload\":{\"kind\":\"spec\",\"benchmark\":\"444.namd\",\"mode\":\"base\"}}"
                .to_owned(),
        ),
        12 => MixItem::Framed(
            "POST",
            "/v1/product",
            "{\"design\":\"mobile\",\"tdp_w\":45,\
             \"workload\":{\"kind\":\"energy\",\"name\":\"energy-star\"}}"
                .to_owned(),
        ),
        13 => MixItem::Framed("GET", "/metrics", String::new()),
        14 => MixItem::Raw(b"THIS IS NOT HTTP\r\n\r\n".to_vec(), 400),
        _ => MixItem::Raw(
            // Declares a body far beyond the server's cap: rejected with
            // 413 before any body byte is transferred.
            b"POST /v1/droop HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n".to_vec(),
            413,
        ),
    }
}

/// Aggregated results of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// 2xx responses.
    pub ok_2xx: usize,
    /// 4xx responses (the mix's malformed probes land here by design).
    pub err_4xx: usize,
    /// 503 sheds (admission control working as specified).
    pub shed_503: usize,
    /// 5xx responses other than 503 — the smoke gate requires **zero**.
    pub other_5xx: usize,
    /// Requests that failed at the transport layer.
    pub transport_errors: usize,
    /// Probes whose status differed from the expectation baked into the
    /// mix (e.g. a malformed frame that was *not* answered 400).
    pub expectation_failures: usize,
    /// Wall time of the whole run, µs.
    pub elapsed_us: u64,
    /// Per-request latencies, sorted ascending, µs.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// The `q`-quantile latency in µs (0 with no samples).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let hi = self.latencies_us.len() - 1;
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let idx = ((hi as f64) * q.clamp(0.0, 1.0)).floor() as usize;
        self.latencies_us.get(idx.min(hi)).copied().unwrap_or(0)
    }

    /// Median latency, µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency, µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Achieved request rate, requests per second.
    pub fn rps(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.requests as f64) * 1e6 / (self.elapsed_us as f64)
        }
    }

    /// The report as JSON (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        fn num(n: usize) -> Json {
            Json::Num(n as f64)
        }
        #[allow(clippy::cast_precision_loss)]
        fn num64(n: u64) -> Json {
            Json::Num(n as f64)
        }
        obj(vec![
            ("requests", num(self.requests)),
            ("ok_2xx", num(self.ok_2xx)),
            ("err_4xx", num(self.err_4xx)),
            ("shed_503", num(self.shed_503)),
            ("other_5xx", num(self.other_5xx)),
            ("transport_errors", num(self.transport_errors)),
            ("expectation_failures", num(self.expectation_failures)),
            ("elapsed_us", num64(self.elapsed_us)),
            ("rps", Json::Num(self.rps())),
            ("p50_us", num64(self.p50_us())),
            ("p99_us", num64(self.p99_us())),
        ])
    }

    fn absorb(&mut self, status: u16, expected: Option<u16>, latency_us: u64) {
        self.requests += 1;
        self.latencies_us.push(latency_us);
        match status {
            200..=299 => self.ok_2xx += 1,
            503 => self.shed_503 += 1,
            400..=499 => self.err_4xx += 1,
            _ => self.other_5xx += 1,
        }
        // A shed (503) is an admission-level outcome and can pre-empt any
        // probe, so it never counts against a probe's expected status.
        if expected.is_some_and(|want| want != status && status != 503) {
            self.expectation_failures += 1;
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.requests += other.requests;
        self.ok_2xx += other.ok_2xx;
        self.err_4xx += other.err_4xx;
        self.shed_503 += other.shed_503;
        self.other_5xx += other.other_5xx;
        self.transport_errors += other.transport_errors;
        self.expectation_failures += other.expectation_failures;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Runs `n` requests of the seeded mix against `addr` from `concurrency`
/// client threads, and aggregates the outcome.
///
/// Each thread derives its own sub-seed from `seed`, so the union of
/// requests is deterministic for a given `(n, seed, concurrency)`.
pub fn run_mix(addr: SocketAddr, n: usize, seed: u64, concurrency: usize) -> LoadReport {
    let concurrency = concurrency.clamp(1, 64);
    let start = monotonic_us();
    let threads: Vec<_> = (0..concurrency)
        .map(|t| {
            let quota = n / concurrency + usize::from(t < n % concurrency);
            let sub_seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(t as u64 + 1));
            std::thread::spawn(move || {
                let mut rng = Lcg::new(sub_seed);
                let mut report = LoadReport::default();
                for _ in 0..quota {
                    run_one(addr, &mut rng, &mut report);
                }
                report
            })
        })
        .collect();
    let mut total = LoadReport::default();
    for t in threads {
        match t.join() {
            Ok(report) => total.merge(report),
            Err(_) => total.transport_errors += 1,
        }
    }
    total.elapsed_us = monotonic_us().saturating_sub(start);
    total.latencies_us.sort_unstable();
    total
}

fn run_one(addr: SocketAddr, rng: &mut Lcg, report: &mut LoadReport) {
    let item = mix_item(rng);
    let begin = monotonic_us();
    let outcome = match &item {
        MixItem::Framed(method, path, body) => {
            let body = if body.is_empty() {
                None
            } else {
                Some(body.as_str())
            };
            http_request(addr, method, path, body).map(|r| (r.status, None))
        }
        MixItem::Raw(bytes, expect) => raw_request(addr, bytes).map(|r| (r.status, Some(*expect))),
    };
    let latency = monotonic_us().saturating_sub(begin);
    match outcome {
        Ok((status, expected)) => report.absorb(status, expected, latency),
        Err(_) => {
            report.requests += 1;
            report.transport_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_varies() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w.first() != w.last()));
        assert!(Lcg::new(1).below(10) < 10);
        assert_eq!(Lcg::new(1).below(0), 0);
    }

    #[test]
    fn mix_is_deterministic_for_a_seed() {
        let seq = |seed| {
            let mut rng = Lcg::new(seed);
            (0..50)
                .map(|_| format!("{:?}", mix_item(&mut rng)))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn mix_covers_every_probe_kind() {
        let mut rng = Lcg::new(3);
        let items: Vec<MixItem> = (0..200).map(|_| mix_item(&mut rng)).collect();
        let raws = items
            .iter()
            .filter(|i| matches!(i, MixItem::Raw(..)))
            .count();
        let framed = items.len() - raws;
        assert!(raws > 5, "mix must include malformed/oversized probes");
        assert!(framed > 100);
        for path in [
            "/healthz",
            "/v1/droop",
            "/v1/sweep",
            "/v1/product",
            "/v1/claims",
        ] {
            assert!(
                items
                    .iter()
                    .any(|i| matches!(i, MixItem::Framed(_, p, _) if *p == path)),
                "mix never hit {path}"
            );
        }
    }

    #[test]
    fn report_quantiles_and_rates() {
        let mut r = LoadReport {
            latencies_us: (1..=100).collect(),
            requests: 100,
            elapsed_us: 1_000_000,
            ..LoadReport::default()
        };
        r.latencies_us.sort_unstable();
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 99);
        assert!((r.rps() - 100.0).abs() < 1e-9);
        assert_eq!(LoadReport::default().p99_us(), 0);
    }

    #[test]
    fn report_classifies_statuses() {
        let mut r = LoadReport::default();
        r.absorb(200, None, 10);
        r.absorb(400, Some(400), 10);
        r.absorb(413, Some(400), 10); // expectation miss
        r.absorb(503, None, 10);
        r.absorb(500, None, 10);
        assert_eq!((r.ok_2xx, r.err_4xx, r.shed_503, r.other_5xx), (1, 2, 1, 1));
        assert_eq!(r.expectation_failures, 1);
        let json = r.to_json().render();
        assert!(json.contains("\"other_5xx\":1"));
    }

    #[test]
    fn reply_parser_reads_status_and_headers() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi",
        )
        .expect("parse");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.body, "hi");
    }
}

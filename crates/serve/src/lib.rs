//! `dg-serve`: the DarkGates experiment stack as a service.
//!
//! A dependency-free (std-only TCP, hand-rolled JSON) multi-threaded
//! HTTP/1.1 daemon exposing the simulation library over a small API:
//!
//! | endpoint | what it computes |
//! |---|---|
//! | `POST /v1/droop` | one transient droop capture ([`darkgates::pdn::transient`]) |
//! | `POST /v1/droop_batch` | up to 256 load-step lanes through the lockstep explicit-SIMD kernel |
//! | `POST /v1/sweep` | an impedance sweep via the content-keyed substrate cache |
//! | `POST /v1/product` | a SPEC / graphics / energy cell on a catalog product |
//! | `POST /v1/explore` | a design-space sweep ([`dg_explore`]) streamed as chunked NDJSON: progress lines per batch, then the result document |
//! | `POST /v1/droop_sweep` | a population droop sweep: a delta *grid* expanded server-side into up to 8192 lanes, streamed as chunked NDJSON waves |
//! | `GET /v1/claims` | the 12 paper-claim graders ([`darkgates::claims`]) |
//! | `GET /metrics` | Prometheus text: latency histograms, shed/coalesce/panic counters |
//! | `GET /healthz` | liveness + drain state |
//! | `POST /admin/drain` | start a graceful drain |
//!
//! The serve tier is event-driven (DESIGN.md §12): one epoll loop owns
//! every connection's state machine with HTTP/1.1 keep-alive, CPU-bound
//! routes dispatch to a bounded worker pool, and completions wake the
//! loop through a self-pipe. In front of N such shards, the `dg-router`
//! binary ([`proxy`]) consistent-hashes requests on the same content
//! keys the caches use, so coalescing and substrate caches stay
//! shard-local; `--cache-dir` persists them to disk
//! ([`darkgates::pdn::diskcache`]) so restarted shards warm instantly.
//!
//! Four mechanisms keep the daemon well-behaved under load (DESIGN.md
//! §9, §12): **admission control** (a bounded dispatch queue; overflow is
//! answered `503` with a queue-depth-derived `Retry-After` instead of
//! queuing unboundedly), **request coalescing** (concurrent identical
//! requests — identical by the same content hashes the substrate caches
//! use — compute once), **response caching** (deterministic 200s are
//! reused outright, in memory and on disk), and **graceful drain** (stop
//! admitting, finish what was admitted, then exit; SIGTERM does this in
//! the binary).
//!
//! `/v1/explore` and `/v1/droop_sweep` are the streaming routes
//! (DESIGN.md §14): the worker emits a chunked-transfer NDJSON stream — a
//! progress line after every evaluated batch or lane wave, then a result
//! line — through multi-completion dispatch to the event loop. Replays
//! (response-cache hits, coalesced followers) stream only the result
//! line, byte-identical to the leader's.
//!
//! The crate is on the `dg-analyze` no-panic list: handler bugs become
//! `500`s and a `dg_panics_total` increment, never a dead worker.

pub mod client;
pub mod coalesce;
pub mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod proxy;
pub mod queue;
pub mod respcache;
pub mod ring;
pub mod routes;
pub mod server;

pub use server::{DrainReport, Server, ServerConfig, ServerHandle};

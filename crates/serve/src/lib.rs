//! `dg-serve`: the DarkGates experiment stack as a service.
//!
//! A dependency-free (std-only TCP, hand-rolled JSON) multi-threaded
//! HTTP/1.1 daemon exposing the simulation library over a small API:
//!
//! | endpoint | what it computes |
//! |---|---|
//! | `POST /v1/droop` | one transient droop capture ([`darkgates::pdn::transient`]) |
//! | `POST /v1/sweep` | an impedance sweep via the content-keyed substrate cache |
//! | `POST /v1/product` | a SPEC / graphics / energy cell on a catalog product |
//! | `GET /v1/claims` | the 12 paper-claim graders ([`darkgates::claims`]) |
//! | `GET /metrics` | Prometheus text: latency histograms, shed/coalesce/panic counters |
//! | `GET /healthz` | liveness + drain state |
//! | `POST /admin/drain` | start a graceful drain |
//!
//! Three mechanisms keep the daemon well-behaved under load (DESIGN.md
//! §9): **admission control** (a bounded accept queue; overflow is
//! answered `503` + `Retry-After` instead of queuing unboundedly),
//! **request coalescing** (concurrent identical requests — identical by
//! the same content hashes the substrate caches use — compute once), and
//! **graceful drain** (stop admitting, finish what was admitted, then
//! exit; SIGTERM does this in the binary).
//!
//! The crate is on the `dg-analyze` no-panic list: handler bugs become
//! `500`s and a `dg_panics_total` increment, never a dead worker.

pub mod client;
pub mod coalesce;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod routes;
pub mod server;

pub use server::{DrainReport, Server, ServerConfig, ServerHandle};

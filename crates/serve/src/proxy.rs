//! `dg-router`: a consistent-hash reverse proxy over N `dg-serve` shards.
//!
//! The router owns the client-facing listener and forwards every request
//! to one of its shards over pooled keep-alive upstream connections. The
//! shard is chosen by consistent-hashing the request's *content key*
//! ([`crate::routes::content_key_of`]) on a [`HashRing`], which gives the
//! deployment its scaling property: identical requests always land on the
//! same shard, so each shard's coalescer, response cache, and substrate
//! caches see every repeat of a key instead of `1/N` of them.
//!
//! Failure handling is two-layered (DESIGN.md §12):
//!
//! * **request path** — an upstream transport fault retries once on a
//!   fresh connection (the pooled socket may simply have been closed by
//!   the shard's per-connection cap); a fresh-connection fault ejects the
//!   shard immediately and the request is re-routed to the next live
//!   shard clockwise, so a SIGKILLed shard costs in-flight requests at
//!   most one retry, never a 5xx.
//! * **health loop** — a background thread probes `GET /healthz` on every
//!   shard; [`RouterConfig::health_failures`] consecutive failures eject
//!   a shard, and a single success rejoins it (its cache-warm arcs return
//!   with it).
//!
//! `GET /healthz` is answered by the router itself with per-shard
//! liveness; `GET /metrics` aggregates the shards' Prometheus text with a
//! `shard="i"` label plus the router's own counters. Everything else is
//! forwarded verbatim — the request as method + target + body, and the
//! shard's reply byte-for-byte (the router only scans its head for the
//! `Content-Length` framing and the `Connection: close` verdict, so
//! `Retry-After` and every other header pass through untouched).
//!
//! The client-facing side is the same epoll state machine as the shard's
//! event loop: one thread owns every client connection, answers
//! `/healthz`, parse errors, and reply-cache hits inline, and dispatches
//! only cache misses (and `/metrics` scrapes) to a small pool of
//! blocking forward workers. Three hot-path economies keep it fast:
//! the shard reply is *relayed*, never parsed into headers; the
//! per-request routing key is served from a raw-bytes → content-key
//! alias table, so the router JSON-parses any given request body shape
//! once, not once per request; and a bounded [`ReplyCache`] serves
//! repeat keys their exact shard bytes without an upstream exchange
//! (sound because simulation responses are pure functions of their
//! content key).

use crate::client::{http_request, read_framed_reply};
use crate::event_loop::{drain_wakeups, waker_pair, Poller, Waker, EVENT_READ, EVENT_WRITE};
use crate::http::{
    chunked_body_end, write_response, HttpError, ParserLimits, Request, RequestParser,
};
use crate::json::{obj, Json};
use crate::metrics::monotonic_us;
use crate::queue::{BoundedQueue, PushError};
use crate::ring::{HashRing, DEFAULT_REPLICAS};
use crate::routes::{content_key_of, reason_of};
use crate::server::retry_after_secs;
use darkgates::pdn::cache::ContentKey;
use dg_engine::sync::TrackedMutex;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration for [`RouterServer::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard addresses, in ring order (index = shard id).
    pub shards: Vec<SocketAddr>,
    /// Virtual nodes per shard on the hash ring.
    pub replicas: usize,
    /// Forwarding worker threads (each owns its upstream pool). Only
    /// cache-miss requests reach them; everything else is answered on
    /// the event loop.
    pub workers: usize,
    /// Cache-miss requests queued ahead of the forward workers before
    /// the router sheds that request with 503.
    pub queue_depth: usize,
    /// Open client-connection cap; beyond it new sockets get a
    /// best-effort 503.
    pub max_connections: usize,
    /// Client-side HTTP framing limits (the router rejects malformed
    /// framing itself, so broken probes never consume a shard).
    pub limits: ParserLimits,
    /// Idle client-connection timeout, ms.
    pub read_timeout_ms: u64,
    /// Per-operation upstream socket timeout, ms.
    pub upstream_timeout_ms: u64,
    /// Health-probe cadence, ms.
    pub health_interval_ms: u64,
    /// Consecutive probe failures before a shard is ejected.
    pub health_failures: u32,
    /// Requests served on one client connection before it is closed.
    pub max_requests_per_conn: usize,
    /// `Retry-After` base for router-level 503s.
    pub retry_after_secs: u32,
    /// Entries in the router's reply cache (0 disables it). Simulation
    /// responses are pure functions of their content key — the same
    /// argument that makes the shard's response cache sound — so the
    /// router may serve a repeat key's exact shard bytes without an
    /// upstream exchange.
    pub reply_cache_entries: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            replicas: DEFAULT_REPLICAS,
            workers: 16,
            queue_depth: 256,
            max_connections: 4_096,
            limits: ParserLimits::default(),
            read_timeout_ms: 5_000,
            upstream_timeout_ms: 30_000,
            health_interval_ms: 100,
            health_failures: 2,
            max_requests_per_conn: 10_000,
            retry_after_secs: 1,
            reply_cache_entries: 4_096,
        }
    }
}

/// The router's own observability counters (rendered under
/// `dg_router_*` in the aggregated `/metrics`).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Requests parsed from clients (forwarded or answered locally).
    pub requests_total: AtomicU64,
    /// Forward attempts that failed over to another shard.
    pub retries_total: AtomicU64,
    /// Shards marked dead (by the request path or the health loop).
    pub ejections_total: AtomicU64,
    /// Shards marked live again by the health loop.
    pub rejoins_total: AtomicU64,
    /// Requests answered 503 because no live shard remained.
    pub unrouteable_total: AtomicU64,
    /// Client requests rejected by the router's own parser.
    pub bad_requests_total: AtomicU64,
    /// Connections shed because the dispatch queue was full.
    pub shed_total: AtomicU64,
    /// Requests answered from the router's reply cache.
    pub cache_hits_total: AtomicU64,
    /// Successful forwards per shard.
    shard_requests: Vec<AtomicU64>,
}

/// A bounded FIFO cache of verbatim shard replies keyed by content key.
/// Only clean 200 replies to the deterministic simulation routes are
/// admitted (see [`cacheable_route`]), so a cached entry is exactly the
/// bytes the owning shard would send again.
struct ReplyCache {
    state: TrackedMutex<ReplyCacheState>,
    max_entries: usize,
    max_bytes: usize,
}

struct ReplyCacheState {
    map: HashMap<u64, Arc<Vec<u8>>>,
    order: VecDeque<u64>,
    bytes: usize,
}

/// Total reply-byte budget for the router cache (64 MiB, matching the
/// shard response cache's default).
const REPLY_CACHE_MAX_BYTES: usize = 64 * 1024 * 1024;

impl ReplyCache {
    fn new(max_entries: usize) -> Self {
        ReplyCache {
            state: TrackedMutex::new(
                "serve.router.replycache",
                ReplyCacheState {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                    bytes: 0,
                },
            ),
            max_entries,
            max_bytes: REPLY_CACHE_MAX_BYTES,
        }
    }

    fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        if self.max_entries == 0 {
            return None;
        }
        self.state.lock().map.get(&key).map(Arc::clone)
    }

    fn put(&self, key: u64, bytes: &[u8]) {
        if self.max_entries == 0 {
            return;
        }
        let mut state = self.state.lock();
        if state.map.contains_key(&key) {
            return;
        }
        state.map.insert(key, Arc::new(bytes.to_vec()));
        state.order.push_back(key);
        state.bytes = state.bytes.saturating_add(bytes.len());
        while state.map.len() > self.max_entries || state.bytes > self.max_bytes {
            let Some(evicted) = state.order.pop_front() else {
                break;
            };
            if let Some(old) = state.map.remove(&evicted) {
                state.bytes = state.bytes.saturating_sub(old.len());
            }
        }
    }
}

/// Whether a request targets one of the deterministic simulation routes
/// whose `200` replies are safe to cache (mirrors the shard's own
/// response-cache admission in `routes.rs`). The streaming routes
/// (`/v1/explore`, `/v1/droop_sweep`) are deliberately excluded: their
/// leader replies interleave progress lines, so the router relays them
/// verbatim instead of replaying one leader's progress to every client —
/// the shard's own response cache already makes repeats cheap.
fn cacheable_route(method: &str, path: &str) -> bool {
    matches!(
        (method, path),
        ("GET", "/v1/claims")
            | ("POST", "/v1/droop")
            | ("POST", "/v1/droop_batch")
            | ("POST", "/v1/sweep")
            | ("POST", "/v1/product")
    )
}

/// What a dispatched job asks of a forward worker.
enum JobKind {
    /// Forward to the key's shard (the cache-miss path).
    Forward,
    /// Render the aggregated `/metrics` (scrapes every live shard, so it
    /// must not run on the event loop).
    Metrics,
}

/// A request handed from the event loop to a forward worker.
struct ProxyJob {
    token: u64,
    kind: JobKind,
    request: Request,
    key: u64,
    cacheable: bool,
    close: bool,
}

/// A forward worker's finished reply, already framed for the wire.
struct ProxyCompletion {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
}

struct RouterShared {
    config: RouterConfig,
    ring: HashRing,
    alive: Vec<AtomicBool>,
    stop: AtomicBool,
    queue: BoundedQueue<ProxyJob>,
    completions: TrackedMutex<Vec<ProxyCompletion>>,
    waker: Waker,
    counters: RouterMetrics,
    replies: ReplyCache,
}

impl RouterShared {
    fn is_alive(&self, shard: usize) -> bool {
        self.alive
            .get(shard)
            .is_some_and(|a| a.load(Ordering::SeqCst))
    }

    /// Marks a shard dead; counts the ejection only on a live→dead edge.
    fn eject(&self, shard: usize) {
        if let Some(a) = self.alive.get(shard) {
            if a.swap(false, Ordering::SeqCst) {
                self.counters
                    .ejections_total
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Marks a shard live; counts the rejoin only on a dead→live edge.
    fn rejoin(&self, shard: usize) {
        if let Some(a) = self.alive.get(shard) {
            if !a.swap(true, Ordering::SeqCst) {
                self.counters.rejoins_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A pooled keep-alive connection to one shard.
struct Upstream {
    stream: TcpStream,
    leftover: Vec<u8>,
}

impl Upstream {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Upstream {
            stream,
            leftover: Vec::new(),
        })
    }

    /// One request/response exchange on this connection, returning the
    /// reply's exact bytes for verbatim relay.
    fn exchange(&mut self, raw: &[u8]) -> std::io::Result<RawReply> {
        self.stream.write_all(raw)?;
        read_raw_reply(&mut self.stream, &mut self.leftover)
    }
}

/// A shard reply as raw relayable bytes plus the reuse verdict scanned
/// from its head.
struct RawReply {
    /// The complete framed response, byte-for-byte as the shard sent it.
    bytes: Vec<u8>,
    /// Whether the shard is closing its side after this reply.
    close: bool,
}

/// Finds the end of an HTTP head (`\r\n\r\n`), returning the offset just
/// past it.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Case-insensitively finds a header's trimmed value in a raw head.
fn header_value<'a>(head: &'a [u8], name: &str) -> Option<&'a str> {
    for line in head.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).ok()?.trim_end_matches('\r');
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case(name) {
                return Some(v.trim());
            }
        }
    }
    None
}

/// Reads one framed reply off `stream` without parsing it into headers:
/// the hot path only needs the framing boundary and the
/// `Connection: close` verdict, and the bytes are relayed verbatim —
/// `Content-Length` bodies and chunked streams (`/v1/explore`) alike,
/// chunk framing included, so a streaming client behind the router sees
/// the shard's exact progress protocol. Pipelined successor bytes are
/// preserved in `leftover`.
fn read_raw_reply(stream: &mut TcpStream, leftover: &mut Vec<u8>) -> std::io::Result<RawReply> {
    let mut chunk = [0u8; 16 * 1024];
    let head_len = loop {
        if let Some(end) = head_end(leftover) {
            break end;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            ));
        }
        leftover.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };
    let head = leftover.get(..head_len).unwrap_or_default();
    if !head.starts_with(b"HTTP/1.1 ") && !head.starts_with(b"HTTP/1.0 ") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "upstream reply is not HTTP",
        ));
    }
    let chunked =
        header_value(head, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let close = header_value(head, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    let total = if chunked {
        loop {
            let body = leftover.get(head_len..).unwrap_or_default();
            if let Some(encoded_len) = chunked_body_end(body) {
                break head_len + encoded_len;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-stream",
                ));
            }
            leftover.extend_from_slice(chunk.get(..n).unwrap_or_default());
        }
    } else {
        let body_len: usize = header_value(head, "content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        head_len + body_len
    };
    while leftover.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        leftover.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    let bytes = leftover.drain(..total).collect();
    Ok(RawReply { bytes, close })
}

/// A running router; dropping the handle does NOT stop it — call
/// [`RouterHandle::shutdown`].
pub struct RouterHandle {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandle")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shared.config.shards)
            .finish()
    }
}

/// The `dg-router` entry point.
pub struct RouterServer;

impl RouterServer {
    /// Binds the router and spawns its accept, worker, and health threads.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when no shards are configured; otherwise bind /
    /// socket-option failures.
    pub fn start(config: RouterConfig) -> std::io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let (waker, wake_rx) = waker_pair()?;

        let n = config.shards.len();
        let ring = HashRing::new(n, config.replicas);
        let shared = Arc::new(RouterShared {
            ring,
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            stop: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_depth.max(1)),
            completions: TrackedMutex::new("serve.router.completions", Vec::new()),
            waker,
            counters: RouterMetrics {
                shard_requests: (0..n).map(|_| AtomicU64::new(0)).collect(),
                ..RouterMetrics::default()
            },
            replies: ReplyCache::new(config.reply_cache_entries),
            config,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dg-router-fwd-{i}"))
                    .spawn(move || forward_worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dg-router-loop".to_owned())
                .spawn(move || RouterEventLoop::new(&shared, poller, listener, wake_rx).run())?
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || health_loop(&shared))
        };

        Ok(RouterHandle {
            local_addr,
            shared,
            event_loop: Some(event_loop),
            workers,
            health: Some(health),
        })
    }
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the router currently considers `shard` live.
    pub fn is_shard_alive(&self, shard: usize) -> bool {
        self.shared.is_alive(shard)
    }

    /// The router's own counters.
    pub fn counters(&self) -> &RouterMetrics {
        &self.shared.counters
    }

    /// Stops accepting, closes every connection, and joins every thread.
    /// Returns `true` when all threads exited cleanly.
    pub fn shutdown(mut self) -> bool {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.notify();
        let mut clean = true;
        if let Some(t) = self.event_loop.take() {
            // The loop closes the queue on its way out; forward workers
            // then see `None` and exit.
            clean &= t.join().is_ok();
        }
        for t in self.workers.drain(..) {
            clean &= t.join().is_ok();
        }
        if let Some(t) = self.health.take() {
            clean &= t.join().is_ok();
        }
        clean
    }
}

/// The 503 a shed request carries: overload body, a `Retry-After`
/// derived from the forward queue's current depth (same policy as the
/// shard's [`retry_after_secs`]), and `Connection: close`.
fn shed_bytes(shared: &RouterShared) -> Vec<u8> {
    let secs = retry_after_secs(
        shared.config.retry_after_secs.max(1),
        shared.queue.len(),
        shared.queue.capacity(),
    );
    let body = obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("router overloaded".to_owned())),
    ])
    .render();
    write_response(
        503,
        reason_of(503),
        "application/json",
        &[("Retry-After".to_owned(), secs.to_string())],
        body.as_bytes(),
        true,
    )
}

/// The 503 for a request with no live shard to take it.
fn unrouteable_bytes(shared: &RouterShared) -> Vec<u8> {
    let body = obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("no live shard".to_owned())),
    ])
    .render();
    write_response(
        503,
        reason_of(503),
        "application/json",
        &[(
            "Retry-After".to_owned(),
            shared.config.retry_after_secs.max(1).to_string(),
        )],
        body.as_bytes(),
        true,
    )
}

/// The router's own `GET /healthz` body: per-shard liveness.
fn healthz_bytes(shared: &RouterShared, close: bool) -> Vec<u8> {
    let shards: Vec<Json> = shared
        .config
        .shards
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            obj(vec![
                (
                    "index",
                    Json::Num(f64::from(u32::try_from(i).unwrap_or(u32::MAX))),
                ),
                ("addr", Json::Str(addr.to_string())),
                ("alive", Json::Bool(shared.is_alive(i))),
            ])
        })
        .collect();
    let live = (0..shared.config.shards.len())
        .filter(|&i| shared.is_alive(i))
        .count();
    let body = obj(vec![
        (
            "status",
            Json::Str(if live > 0 { "ok" } else { "unrouteable" }.to_owned()),
        ),
        ("role", Json::Str("router".to_owned())),
        ("shards", Json::Arr(shards)),
    ])
    .render();
    write_response(
        200,
        reason_of(200),
        "application/json",
        &[],
        body.as_bytes(),
        close,
    )
}

/// Pops dispatched jobs, forwards them (or renders `/metrics`), and hands
/// the framed reply back to the event loop through the completion list +
/// waker. Each worker keeps one pooled keep-alive connection per shard.
fn forward_worker_loop(shared: &RouterShared) {
    let mut pools: HashMap<usize, Upstream> = HashMap::new();
    while let Some(job) = shared.queue.pop() {
        let (bytes, close) = match job.kind {
            JobKind::Metrics => {
                let body = aggregated_metrics(shared);
                let bytes = write_response(
                    200,
                    reason_of(200),
                    "text/plain; version=0.0.4",
                    &[],
                    body.as_bytes(),
                    job.close,
                );
                (bytes, job.close)
            }
            JobKind::Forward => match forward(shared, &job.request, job.key, &mut pools) {
                // Verbatim relay: the shard's exact bytes, headers
                // included — Retry-After, Content-Type, and framing all
                // pass through. (If the client-side `close` verdict
                // differs from the relayed `Connection` header, the
                // socket action after the write is what decides; both
                // sides handle an early close cleanly.)
                Some(reply) => {
                    if job.cacheable
                        && !reply.close
                        && reply.bytes.get(9..12) == Some(b"200".as_ref())
                    {
                        shared.replies.put(job.key, &reply.bytes);
                    }
                    (reply.bytes, job.close)
                }
                None => {
                    shared
                        .counters
                        .unrouteable_total
                        .fetch_add(1, Ordering::Relaxed);
                    (unrouteable_bytes(shared), true)
                }
            },
        };
        shared.completions.lock().push(ProxyCompletion {
            token: job.token,
            bytes,
            close,
        });
        shared.waker.notify();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// epoll wait timeout; also the granularity of the deadline scan.
const TICK_MS: i32 = 25;

/// Wall-clock budget for a lingering close (mirrors the shard's).
const LINGER_BUDGET_MS: u64 = 250;

/// Where a client connection's state machine currently is (the same
/// three-state machine as the shard's event loop).
enum ConnState {
    /// Waiting for (more) request bytes, or flushing a reply.
    Reading,
    /// A request is with the forward workers; epoll interest is empty,
    /// so further pipelined bytes exert TCP backpressure.
    Dispatched,
    /// Write side shut down; sinking the peer's in-flight bytes until
    /// FIN or the deadline.
    Lingering { deadline_us: u64 },
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    close_after_write: bool,
    served: usize,
    last_activity_us: u64,
    interest: u32,
}

/// What a readiness handler decided about one connection.
enum Action {
    Keep,
    Drop,
    Request(Request),
    ParseError(HttpError),
}

/// The router's client-facing epoll loop: one thread owning every client
/// connection. Reply-cache hits, `/healthz`, and parse errors are
/// answered inline; cache misses and `/metrics` dispatch to the forward
/// workers and resume through the completion list + waker — the same
/// shape as the shard's event loop, which is what keeps tail latency
/// flat as client concurrency grows (a thread per connection convoys on
/// small machines; a loop does not).
struct RouterEventLoop<'a> {
    shared: &'a RouterShared,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    /// The raw-bytes → content-key alias table: routing a request shape
    /// costs one JSON parse ever, not one per request.
    aliases: HashMap<u64, u64>,
    next_token: u64,
    events: Vec<(u64, u32)>,
}

impl<'a> RouterEventLoop<'a> {
    fn new(
        shared: &'a RouterShared,
        poller: Poller,
        listener: TcpListener,
        wake_rx: UnixStream,
    ) -> Self {
        let _ = poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EVENT_READ);
        let _ = poller.add(wake_rx.as_raw_fd(), TOKEN_WAKER, EVENT_READ);
        RouterEventLoop {
            shared,
            poller,
            listener: Some(listener),
            wake_rx,
            conns: HashMap::new(),
            aliases: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            events: Vec::with_capacity(256),
        }
    }

    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                // Routers stop hard: close the queue so workers exit;
                // dropping `self` closes the listener and every socket.
                self.shared.queue.close();
                return;
            }
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller.wait(&mut events, TICK_MS);
            for &(token, _readiness) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => drain_wakeups(&mut self.wake_rx),
                    token => self.conn_ready(token),
                }
            }
            self.events = events;
            self.apply_completions();
            self.scan_deadlines();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if self.conns.len() >= self.shared.config.max_connections {
                        self.shared
                            .counters
                            .shed_total
                            .fetch_add(1, Ordering::Relaxed);
                        let mut stream = stream;
                        let _ = stream.write(&shed_bytes(self.shared));
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, EVENT_READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            parser: RequestParser::new(self.shared.config.limits),
                            out: Vec::new(),
                            out_pos: 0,
                            state: ConnState::Reading,
                            close_after_write: false,
                            served: 0,
                            last_activity_us: monotonic_us(),
                            interest: EVENT_READ,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            ConnState::Dispatched => {}
            ConnState::Lingering { .. } => self.linger_ready(token),
            ConnState::Reading => {
                if conn.out_pos < conn.out.len() {
                    self.flush(token);
                } else {
                    self.read_ready(token);
                }
            }
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let action = match conn.stream.read(&mut chunk) {
                Ok(0) => Action::Drop,
                Ok(n) => {
                    conn.last_activity_us = monotonic_us();
                    match conn.parser.feed(chunk.get(..n).unwrap_or_default()) {
                        Ok(Some(request)) => Action::Request(request),
                        Ok(None) => continue,
                        Err(e) => Action::ParseError(e),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Action::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => Action::Drop,
            };
            match action {
                Action::Keep => return,
                Action::Drop => return self.drop_conn(token),
                Action::Request(request) => return self.on_request(token, request),
                Action::ParseError(e) => return self.on_parse_error(token, e),
            }
        }
    }

    /// A complete request: `/healthz` and reply-cache hits answer inline;
    /// everything else dispatches to the forward workers.
    fn on_request(&mut self, token: u64, request: Request) {
        self.shared
            .counters
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.served += 1;
        let close = !request.keep_alive()
            || conn.served >= self.shared.config.max_requests_per_conn.max(1)
            || self.shared.stop.load(Ordering::SeqCst);

        let path = request
            .target
            .split('?')
            .next()
            .unwrap_or(&request.target)
            .to_owned();
        if request.method == "GET" && path == "/healthz" {
            let bytes = healthz_bytes(self.shared, close);
            return self.queue_write(token, bytes, close);
        }

        let (kind, key, cacheable) = if request.method == "GET" && path == "/metrics" {
            (JobKind::Metrics, 0, false)
        } else {
            let key = routing_key(&request, &mut self.aliases);
            let cacheable = cacheable_route(request.method.as_str(), &path);
            if cacheable {
                if let Some(bytes) = self.shared.replies.get(key) {
                    self.shared
                        .counters
                        .cache_hits_total
                        .fetch_add(1, Ordering::Relaxed);
                    return self.queue_write(token, bytes.as_ref().clone(), close);
                }
            }
            (JobKind::Forward, key, cacheable)
        };

        match self.shared.queue.try_push(ProxyJob {
            token,
            kind,
            request,
            key,
            cacheable,
            close,
        }) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Dispatched;
                }
                self.set_interest(token, 0);
            }
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                self.shared
                    .counters
                    .shed_total
                    .fetch_add(1, Ordering::Relaxed);
                let bytes = shed_bytes(self.shared);
                self.queue_write(token, bytes, true);
            }
        }
    }

    fn on_parse_error(&mut self, token: u64, error: HttpError) {
        self.shared
            .counters
            .bad_requests_total
            .fetch_add(1, Ordering::Relaxed);
        let (status, reason) = error.status();
        let body = obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(error.to_string())),
        ])
        .render();
        let bytes = write_response(
            status,
            reason,
            "application/json",
            &[],
            body.as_bytes(),
            true,
        );
        self.queue_write(token, bytes, true);
    }

    /// Stages `bytes` as the connection's pending output and flushes
    /// optimistically.
    fn queue_write(&mut self, token: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.state = ConnState::Reading;
        conn.out = bytes;
        conn.out_pos = 0;
        conn.close_after_write = close;
        self.flush(token);
    }

    /// Writes pending output until done or the kernel pushes back; a full
    /// flush either lingers the connection out or re-arms it for the next
    /// request (serving a buffered pipelined one immediately).
    fn flush(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            let pending = conn.out.get(conn.out_pos..).unwrap_or_default();
            match conn.stream.write(pending) {
                Ok(0) => return self.drop_conn(token),
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity_us = monotonic_us();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return self.set_interest(token, EVENT_WRITE);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.drop_conn(token),
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out = Vec::new();
        conn.out_pos = 0;
        if conn.close_after_write {
            return self.begin_linger(token);
        }
        conn.last_activity_us = monotonic_us();
        self.set_interest(token, EVENT_READ);
        // Keep-alive: a pipelined successor may already be buffered.
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.parser.feed(&[]) {
            Ok(Some(request)) => self.on_request(token, request),
            Ok(None) => {}
            Err(e) => self.on_parse_error(token, e),
        }
    }

    /// Non-blocking linger: half-close, then sink reads until FIN or the
    /// deadline scan reaps the connection.
    fn begin_linger(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.state = ConnState::Lingering {
            deadline_us: monotonic_us().saturating_add(LINGER_BUDGET_MS.saturating_mul(1_000)),
        };
        self.set_interest(token, EVENT_READ);
        self.linger_ready(token);
    }

    fn linger_ready(&mut self, token: u64) {
        let mut sink = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut sink) {
                Ok(0) => return self.drop_conn(token),
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.drop_conn(token),
            }
        }
    }

    /// Hands worker completions back to their connections' state machines.
    fn apply_completions(&mut self) {
        let done = std::mem::take(&mut *self.shared.completions.lock());
        for completion in done {
            // Tokens are never recycled, so a completion for a dead
            // connection simply misses.
            if self.conns.contains_key(&completion.token) {
                self.queue_write(completion.token, completion.bytes, completion.close);
            }
        }
    }

    /// Reaps idle connections, stalled writers, and expired lingers.
    fn scan_deadlines(&mut self) {
        let now = monotonic_us();
        let idle_budget_us = self
            .shared
            .config
            .read_timeout_ms
            .max(1)
            .saturating_mul(1_000);
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| match c.state {
                ConnState::Lingering { deadline_us } => now >= deadline_us,
                ConnState::Reading => now.saturating_sub(c.last_activity_us) >= idle_budget_us,
                // The forward worker owns the deadline while dispatched
                // (upstream timeouts bound it).
                ConnState::Dispatched => false,
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.drop_conn(token);
        }
    }

    fn set_interest(&mut self, token: u64, interest: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest != interest {
            // A failed re-arm would otherwise leave the fd silently stalled
            // (never readable/writable again): tear the connection down.
            let rearmed = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, interest)
                .is_ok();
            conn.interest = interest;
            if !rearmed {
                self.drop_conn(token);
            }
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // dg-analyze: allow(swallowed-result, reason = "the fd is being torn down; EBADF from epoll_ctl DEL is the expected benign race with peer close")
            let _ = self.poller.remove(conn.stream.as_raw_fd());
        }
    }
}

/// Forwards to the key's shard, failing over clockwise on faults.
fn forward(
    shared: &RouterShared,
    request: &Request,
    key: u64,
    pools: &mut HashMap<usize, Upstream>,
) -> Option<RawReply> {
    let n = shared.config.shards.len();
    let mut tried = vec![false; n];
    let body = String::from_utf8_lossy(&request.body);
    let raw = format!(
        "{} {} HTTP/1.1\r\nHost: dg-router\r\nContent-Length: {}\r\n\r\n{}",
        request.method,
        request.target,
        request.body.len(),
        body
    );
    for attempt in 0..n {
        let shard = shared.ring.route(key, |s| {
            shared.is_alive(s) && !tried.get(s).copied().unwrap_or(true)
        })?;
        if let Some(t) = tried.get_mut(shard) {
            *t = true;
        }
        match exchange_with_shard(shared, shard, raw.as_bytes(), pools) {
            Ok(reply) => {
                if let Some(c) = shared.counters.shard_requests.get(shard) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                if attempt > 0 {
                    shared
                        .counters
                        .retries_total
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Some(reply);
            }
            Err(_) => {
                // A fresh connection to this shard failed too: it is dead
                // until the health loop sees it answer again.
                shared.eject(shard);
            }
        }
    }
    None
}

/// The consistent-hash routing key for a request, via the per-worker
/// alias table: identical raw bytes short-circuit straight to the key;
/// a miss pays the canonical [`content_key_of`] derivation (JSON parse)
/// once and records the alias. Identical raw bytes always parse to the
/// same canonical key, so the alias can never disagree with the shard's
/// own coalescing key.
fn routing_key(request: &Request, aliases: &mut HashMap<u64, u64>) -> u64 {
    let raw_hash = ContentKey::new()
        .word(request.method.len() as u64)
        .bytes(request.method.as_bytes())
        .word(request.target.len() as u64)
        .bytes(request.target.as_bytes())
        .bytes(&request.body)
        .finish();
    if let Some(&key) = aliases.get(&raw_hash) {
        return key;
    }
    let key = content_key_of(&request.method, &request.target, &request.body);
    if aliases.len() >= 16 * 1024 {
        // A bounded table; real workloads repeat a small shape menu, so a
        // wholesale reset on overflow is simpler than eviction order.
        aliases.clear();
    }
    aliases.insert(raw_hash, key);
    key
}

/// One upstream exchange, transparently replacing a stale pooled
/// connection with a fresh one before declaring the shard failed.
fn exchange_with_shard(
    shared: &RouterShared,
    shard: usize,
    raw: &[u8],
    pools: &mut HashMap<usize, Upstream>,
) -> std::io::Result<RawReply> {
    let addr = shared.config.shards.get(shard).copied().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "shard index out of range")
    })?;
    let timeout = Duration::from_millis(shared.config.upstream_timeout_ms.max(1));
    if let Some(pooled) = pools.get_mut(&shard) {
        match pooled.exchange(raw) {
            Ok(reply) => {
                if reply.close {
                    pools.remove(&shard);
                }
                return Ok(reply);
            }
            Err(_) => {
                // Stale pool entry (idle-timeout close, per-conn cap, or a
                // real failure) — retry below on a fresh connection.
                pools.remove(&shard);
            }
        }
    }
    let mut fresh = Upstream::connect(addr, timeout)?;
    let reply = fresh.exchange(raw)?;
    if reply.close {
        pools.remove(&shard);
    } else {
        pools.insert(shard, fresh);
    }
    Ok(reply)
}

fn health_loop(shared: &RouterShared) {
    let mut fail_streaks = vec![0u32; shared.config.shards.len()];
    while !shared.stop.load(Ordering::SeqCst) {
        for (i, addr) in shared.config.shards.iter().enumerate() {
            let healthy = probe_health(*addr);
            let Some(streak) = fail_streaks.get_mut(i) else {
                continue;
            };
            if healthy {
                *streak = 0;
                shared.rejoin(i);
            } else {
                *streak = streak.saturating_add(1);
                if *streak >= shared.config.health_failures.max(1) {
                    shared.eject(i);
                }
            }
        }
        // Sleep in small slices so shutdown is prompt.
        let deadline = shared.config.health_interval_ms.max(10);
        let mut slept = 0;
        while slept < deadline && !shared.stop.load(Ordering::SeqCst) {
            let slice = (deadline - slept).min(25);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
    }
}

/// One `GET /healthz` probe with tight timeouts; any transport fault or
/// non-200 counts as unhealthy.
fn probe_health(addr: SocketAddr) -> bool {
    let timeout = Duration::from_millis(500);
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let mut stream = stream;
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let probe = b"GET /healthz HTTP/1.1\r\nHost: dg-router\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    if stream.write_all(probe).is_err() {
        return false;
    }
    let mut leftover = Vec::new();
    matches!(read_framed_reply(&mut stream, &mut leftover), Ok(reply) if reply.status == 200)
}

/// The router's counters plus every live shard's `/metrics`, with each
/// shard sample rewritten to carry a `shard="i"` label.
fn aggregated_metrics(shared: &RouterShared) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let c = &shared.counters;
    for (name, help, v) in [
        (
            "dg_router_requests_total",
            "Requests parsed by the router.",
            c.requests_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_retries_total",
            "Forwards that failed over to another shard.",
            c.retries_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_ejections_total",
            "Shards marked dead.",
            c.ejections_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_rejoins_total",
            "Shards marked live again.",
            c.rejoins_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_unrouteable_total",
            "Requests 503d with no live shard.",
            c.unrouteable_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_bad_requests_total",
            "Client requests rejected by the router parser.",
            c.bad_requests_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_shed_total",
            "Connections shed by router admission control.",
            c.shed_total.load(Ordering::Relaxed),
        ),
        (
            "dg_router_cache_hits_total",
            "Requests answered from the router reply cache.",
            c.cache_hits_total.load(Ordering::Relaxed),
        ),
    ] {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    }
    out.push_str("# HELP dg_router_shard_requests_total Successful forwards per shard.\n");
    out.push_str("# TYPE dg_router_shard_requests_total counter\n");
    for (i, v) in c.shard_requests.iter().enumerate() {
        out.push_str(&format!(
            "dg_router_shard_requests_total{{shard=\"{i}\"}} {}\n",
            v.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP dg_router_shard_alive Shard liveness (1 = routable).\n");
    out.push_str("# TYPE dg_router_shard_alive gauge\n");
    for i in 0..shared.config.shards.len() {
        out.push_str(&format!(
            "dg_router_shard_alive{{shard=\"{i}\"}} {}\n",
            u8::from(shared.is_alive(i))
        ));
    }
    for (i, addr) in shared.config.shards.iter().enumerate() {
        if !shared.is_alive(i) {
            continue;
        }
        let Ok(reply) = http_request(*addr, "GET", "/metrics", None) else {
            continue;
        };
        if reply.status != 200 {
            continue;
        }
        for line in reply.body.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue; // HELP/TYPE would repeat per shard; drop them
            }
            out.push_str(&relabel(line, i));
            out.push('\n');
        }
    }
    out
}

/// Rewrites `name{labels} v` / `name v` to carry `shard="i"` first.
fn relabel(line: &str, shard: usize) -> String {
    if let Some(brace) = line.find('{') {
        let (name, rest) = line.split_at(brace);
        let rest = rest.get(1..).unwrap_or_default(); // drop the '{'
        format!("{name}{{shard=\"{shard}\",{rest}")
    } else if let Some((name, value)) = line.split_once(' ') {
        format!("{name}{{shard=\"{shard}\"}} {value}")
    } else {
        line.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_request;
    use crate::server::{Server, ServerConfig};

    fn start_shard() -> crate::server::ServerHandle {
        Server::start(ServerConfig {
            workers: 2,
            queue_depth: 64,
            ..ServerConfig::default()
        })
        .expect("shard start")
    }

    /// A test router with the reply cache off, so every request actually
    /// exercises the forward path (affinity and failover assertions
    /// depend on shard traffic, which cache hits would mask).
    fn start_router(shards: Vec<SocketAddr>) -> RouterHandle {
        start_router_with_cache(shards, 0)
    }

    fn start_router_with_cache(
        shards: Vec<SocketAddr>,
        reply_cache_entries: usize,
    ) -> RouterHandle {
        RouterServer::start(RouterConfig {
            shards,
            workers: 4,
            read_timeout_ms: 1_000,
            upstream_timeout_ms: 10_000,
            health_interval_ms: 50,
            health_failures: 2,
            reply_cache_entries,
            ..RouterConfig::default()
        })
        .expect("router start")
    }

    #[test]
    fn router_forwards_with_affinity_and_aggregates_metrics() {
        let shard_a = start_shard();
        let shard_b = start_shard();
        let router = start_router(vec![shard_a.local_addr(), shard_b.local_addr()]);
        let addr = router.local_addr();

        // Identical requests must land on one shard (cache affinity).
        let body = r#"{"variant":"gated","from_a":10,"to_a":60}"#;
        for _ in 0..4 {
            let reply = http_request(addr, "POST", "/v1/droop", Some(body)).expect("droop");
            assert_eq!(reply.status, 200, "{}", reply.body);
            assert!(reply.body.contains("\"ok\":true"));
        }
        let per_shard: Vec<u64> = router
            .counters()
            .shard_requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 4);
        assert!(
            per_shard.contains(&4),
            "identical keys must stick to one shard: {per_shard:?}"
        );

        // Router-local healthz reports both shards live.
        let health = http_request(addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"role\":\"router\""));
        assert_eq!(health.body.matches("\"alive\":true").count(), 2);

        // Aggregated metrics carry shard labels and router counters.
        let metrics = http_request(addr, "GET", "/metrics", None).expect("metrics");
        assert!(metrics.body.contains("dg_router_requests_total"));
        assert!(metrics.body.contains("shard=\"0\""));
        assert!(metrics.body.contains("shard=\"1\""));
        assert!(metrics.body.contains("dg_requests_total{shard="));

        // Malformed framing is rejected by the router itself.
        let bad = crate::client::raw_request(addr, b"NOT HTTP\r\n\r\n").expect("raw");
        assert_eq!(bad.status, 400);
        assert_eq!(
            router.counters().bad_requests_total.load(Ordering::SeqCst),
            1
        );

        assert!(router.shutdown(), "router threads must join cleanly");
        shard_a.shutdown();
        shard_b.shutdown();
    }

    #[test]
    fn dead_shard_is_ejected_and_traffic_fails_over_without_5xx() {
        let shard_a = start_shard();
        let shard_b = start_shard();
        let router = start_router(vec![shard_a.local_addr(), shard_b.local_addr()]);
        let addr = router.local_addr();

        // Warm both arcs with a spread of keys.
        for i in 0..6 {
            let body = format!(
                "{{\"variant\":\"gated\",\"from_a\":10,\"to_a\":{}}}",
                40 + i
            );
            let reply = http_request(addr, "POST", "/v1/droop", Some(&body)).expect("droop");
            assert_eq!(reply.status, 200);
        }

        // Kill shard 1; its keys must fail over with zero 5xx.
        shard_b.shutdown();
        for i in 0..12 {
            let body = format!(
                "{{\"variant\":\"gated\",\"from_a\":10,\"to_a\":{}}}",
                40 + i
            );
            let reply = http_request(addr, "POST", "/v1/droop", Some(&body)).expect("droop");
            assert_eq!(
                reply.status, 200,
                "request {i} after shard death: {}",
                reply.body
            );
        }
        assert_eq!(
            router.counters().unrouteable_total.load(Ordering::SeqCst),
            0
        );

        // The health loop confirms the ejection.
        let deadline = crate::metrics::monotonic_us() + 5_000_000;
        while router.is_shard_alive(1) && crate::metrics::monotonic_us() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(!router.is_shard_alive(1), "shard 1 must be ejected");
        assert!(router.is_shard_alive(0));
        assert!(
            router.counters().ejections_total.load(Ordering::SeqCst) >= 1,
            "ejection must be counted"
        );

        assert!(router.shutdown());
        shard_a.shutdown();
    }

    #[test]
    fn reply_cache_short_circuits_repeat_keys_with_identical_bytes() {
        let shard = start_shard();
        let router = start_router_with_cache(vec![shard.local_addr()], 1_024);
        let addr = router.local_addr();

        let body = r#"{"variant":"gated","from_a":10,"to_a":60}"#;
        let first = http_request(addr, "POST", "/v1/droop", Some(body)).expect("droop");
        assert_eq!(first.status, 200, "{}", first.body);
        for _ in 0..3 {
            let repeat = http_request(addr, "POST", "/v1/droop", Some(body)).expect("droop");
            assert_eq!(repeat.status, 200);
            assert_eq!(
                repeat.body, first.body,
                "cached reply must be byte-identical"
            );
        }
        assert_eq!(
            router.counters().cache_hits_total.load(Ordering::SeqCst),
            3,
            "repeats must be served from the router cache"
        );
        let forwarded: u64 = router
            .counters()
            .shard_requests
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .sum();
        assert_eq!(forwarded, 1, "only the first request reaches the shard");

        // Error replies are never cached: each bad body hits the shard.
        for _ in 0..2 {
            let bad = http_request(addr, "POST", "/v1/droop", Some("{not json")).expect("bad");
            assert_eq!(bad.status, 400);
        }
        assert_eq!(
            router.counters().cache_hits_total.load(Ordering::SeqCst),
            3,
            "non-200 replies must not be admitted to the cache"
        );

        assert!(router.shutdown());
        shard.shutdown();
    }

    #[test]
    fn relabel_handles_both_sample_shapes() {
        assert_eq!(
            relabel("dg_requests_total{route=\"droop\",class=\"2xx\"} 7", 2),
            "dg_requests_total{shard=\"2\",route=\"droop\",class=\"2xx\"} 7"
        );
        assert_eq!(
            relabel("dg_shed_total 3", 0),
            "dg_shed_total{shard=\"0\"} 3"
        );
    }
}

//! The event-driven TCP server: one epoll loop owning every connection's
//! state machine, a bounded work queue, a worker pool for CPU-bound
//! routes, and graceful drain.
//!
//! Life of a connection:
//!
//! 1. the event loop accepts the socket (non-blocking, counted, `TCP_NODELAY`)
//!    and registers it for read readiness under a monotonically increasing
//!    token that is never recycled, so a late completion for a dead
//!    connection can never touch its successor,
//! 2. read readiness feeds the hardened incremental [`RequestParser`]
//!    until one request completes; the loop stops reading there, leaving
//!    any pipelined bytes to the kernel and the parser buffer,
//! 3. cheap control routes (`GET /healthz`, `GET /metrics`,
//!    `POST /admin/drain`) are answered inline on the loop — health stays
//!    observable even under full compute overload — while every other
//!    route is pushed onto the bounded [`BoundedQueue`] for the worker
//!    pool. A full queue sheds **that request** with `503`, a
//!    `Retry-After` derived from the current queue depth, and
//!    `Connection: close`,
//! 4. while a request is dispatched the connection's epoll interest drops
//!    to zero: the peer's further pipelined bytes stay in the kernel
//!    buffer (TCP backpressure bounds memory) and only the worker's
//!    completion — delivered through a self-pipe [`Waker`] — resumes the
//!    state machine,
//! 5. responses are written optimistically; a short write parks the
//!    connection on write readiness (`EPOLLOUT`) until the peer drains
//!    it, with progress bounded by the read-timeout deadline scan,
//! 6. HTTP/1.1 keep-alive: after a full flush the parser is polled for a
//!    buffered pipelined request, otherwise the connection re-arms for
//!    read readiness and an idle deadline,
//! 7. closes (errors, `Connection: close`, drain, per-connection request
//!    cap) go through a non-blocking linger: write side shut down, reads
//!    sunk for up to [`LINGER_BUDGET_MS`], so the peer's in-flight bytes
//!    never turn the response into an RST,
//! 8. on drain ([`ServerHandle::request_drain`], `POST /admin/drain`, or
//!    SIGTERM in the binary) the listener closes immediately, idle
//!    connections drop, in-flight requests finish with
//!    `Connection: close`, then the queue closes, workers exit, and
//!    [`ServerHandle::shutdown`] reports whether the drain was clean.

use crate::coalesce::Role;
use crate::event_loop::{drain_wakeups, waker_pair, Poller, Waker, EVENT_READ, EVENT_WRITE};
use crate::http::{
    write_chunk, write_response, write_stream_head, HttpError, ParserLimits, Request,
    RequestParser, LAST_CHUNK,
};
use crate::json::{obj, Json};
use crate::metrics::{monotonic_us, Metrics, Route};
use crate::queue::{BoundedQueue, PushError};
use crate::routes::{Response, Router, StreamEvent, StreamPlan};
use dg_engine::sync::TrackedMutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads serving dispatched (CPU-bound) requests.
    pub workers: usize,
    /// Admission bound: requests queued ahead of the workers before the
    /// event loop starts shedding with 503.
    pub queue_depth: usize,
    /// HTTP framing limits.
    pub limits: ParserLimits,
    /// Idle deadline: a keep-alive connection that neither delivers bytes
    /// nor accepts response bytes for this long is closed. Drain latency
    /// is bounded by it.
    pub read_timeout_ms: u64,
    /// Base value of the `Retry-After` header on shed responses; the
    /// current queue depth adds to it (see [`retry_after_secs`]).
    pub retry_after_secs: u32,
    /// Requests served on one connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Open-connection cap; beyond it new sockets get a best-effort 503.
    pub max_connections: usize,
    /// Enables `POST /v1/debug/sleep` (overload tests only).
    pub enable_debug_routes: bool,
    /// Root of the persistent content-addressed cache (`--cache-dir`).
    /// Enables the process-wide disk tier for impedance profiles, DC
    /// steady states, ladder coefficients, and cached response bodies.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            limits: ParserLimits::default(),
            read_timeout_ms: 2_000,
            retry_after_secs: 1,
            max_requests_per_conn: 1_000,
            max_connections: 4_096,
            enable_debug_routes: false,
            cache_dir: None,
        }
    }
}

/// What [`ServerHandle::shutdown`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests served over the server's lifetime (inline + dispatched).
    pub requests_served: usize,
    /// `true` when the event loop and every worker exited without
    /// panicking — the graceful-drain contract held.
    pub clean: bool,
}

/// A dispatched request: which connection wants the answer, and whether
/// that connection must close after it.
struct Job {
    token: u64,
    request: Request,
    close: bool,
}

/// Bytes a worker hands back to the event loop, already framed for the
/// wire. Ordinary routes produce exactly one completion with
/// `fin = true`; the streaming `/v1/explore` route produces a sequence —
/// head, progress chunks, then the terminal chunk — where only the last
/// carries `fin`. Completions for one token are pushed in wire order and
/// the event loop appends them in arrival order.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
    /// Whether this completion ends the response.
    fin: bool,
}

/// Everything the event loop and workers share.
struct Shared {
    config: ServerConfig,
    metrics: Arc<Metrics>,
    router: Router,
    draining: Arc<AtomicBool>,
    queue: BoundedQueue<Job>,
    completions: TrackedMutex<Vec<Completion>>,
    waker: Waker,
}

/// The `dg-serve` daemon. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A handle to a running server; dropping it does **not** stop the
/// server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<usize>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the worker pool and the event loop, and returns a
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …) and
    /// epoll/self-pipe setup failures.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        if let Some(dir) = &config.cache_dir {
            darkgates::pdn::diskcache::set_dir(Some(dir.clone()));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let (waker, wake_rx) = waker_pair()?;

        let metrics = Arc::new(Metrics::default());
        let draining = Arc::new(AtomicBool::new(false));
        let router = Router::new(
            Arc::clone(&metrics),
            Arc::clone(&draining),
            config.enable_debug_routes,
        );
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            router,
            metrics,
            draining,
            completions: TrackedMutex::new("serve.completions", Vec::new()),
            waker,
            config,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let event_loop = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dg-serve-loop".to_owned())
                .spawn(move || EventLoop::new(&shared, poller, listener, wake_rx).run())?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            event_loop: Some(event_loop),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry (shared with the handlers).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a drain has been requested (by this handle, by
    /// `POST /admin/drain`, or by a signal in the binary).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain: stop admitting, serve what was admitted.
    /// Idempotent; returns immediately.
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.waker.notify();
    }

    /// Drains (if not already draining) and blocks until the event loop
    /// and every worker have exited, reporting whether the drain was
    /// clean.
    pub fn shutdown(mut self) -> DrainReport {
        self.request_drain();
        let mut clean = true;
        let mut requests_served = 0usize;
        if let Some(event_loop) = self.event_loop.take() {
            // The loop closes the queue on its way out; workers then see
            // `None` and exit.
            match event_loop.join() {
                Ok(served) => requests_served = served,
                Err(_) => clean = false,
            }
        }
        for worker in self.workers.drain(..) {
            clean &= worker.join().is_ok();
        }
        DrainReport {
            requests_served,
            clean,
        }
    }
}

/// The `Retry-After` a shed response carries: the configured base plus a
/// penalty that grows with how deep the queue already is, so a client of
/// a lightly loaded server retries quickly while a client of a saturated
/// one backs off harder. Monotone in `queue_len`, capped at 30 s.
pub fn retry_after_secs(base: u32, queue_len: usize, capacity: usize) -> u32 {
    if capacity == 0 {
        // Nothing can ever be admitted; advertise the maximum backoff.
        return 30;
    }
    let penalty = (3 * queue_len) / capacity;
    base.saturating_add(penalty.min(u32::MAX as usize) as u32)
        .min(30)
}

/// Frames the shed 503 from the current queue depth.
fn shed_response_bytes(shared: &Shared) -> Vec<u8> {
    let secs = retry_after_secs(
        shared.config.retry_after_secs,
        shared.queue.len(),
        shared.queue.capacity(),
    );
    let body = format!("{{\"ok\":false,\"error\":\"server is at capacity, retry after {secs}s\"}}");
    let extra = [("Retry-After".to_owned(), secs.to_string())];
    write_response(
        503,
        "Service Unavailable",
        "application/json",
        &extra,
        body.as_bytes(),
        true,
    )
}

/// Total wall-clock budget for a lingering close. Bounds how long a peer
/// trickling bytes can keep a closed connection's fd alive.
const LINGER_BUDGET_MS: u64 = 250;

/// Per-read timeout inside the blocking [`linger_close`]; a peer that
/// goes quiet for this long ends the drain early.
const LINGER_READ_TIMEOUT_MS: u64 = 50;

/// Half-closes `stream` and drains whatever the peer still has in flight
/// before dropping it (blocking variant, used by callers that own the
/// socket outright, e.g. the router proxy). Closing a socket with unread
/// bytes in its receive buffer makes the kernel send RST, and an RST
/// destroys any response still sitting in the peer's receive buffer —
/// lingering turns that RST into an orderly FIN. Bounded by a hard
/// wall-clock deadline ([`LINGER_BUDGET_MS`]) so a peer trickling bytes
/// cannot hold the drain open.
pub fn linger_close(mut stream: TcpStream) {
    let deadline = monotonic_us().saturating_add(LINGER_BUDGET_MS.saturating_mul(1_000));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(LINGER_READ_TIMEOUT_MS)));
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 4096];
    while monotonic_us() < deadline {
        match stream.read(&mut sink) {
            // Peer finished (FIN), went quiet past the read timeout, or
            // errored: the linger has done its job either way.
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Pops dispatched requests, runs the router with panics contained, and
/// hands the framed response back to the event loop through the
/// completion list + waker.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if let Some(route) = streaming_route(&job.request) {
            stream_route(shared, &job, route);
            continue;
        }
        shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);
        let start = monotonic_us();
        // Handlers run with par_map inlined (one thread per request) and
        // any panic that escapes the router's own containment becomes a
        // 500 on this request, not a dead worker.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            dg_engine::inline_scope(|| shared.router.handle(&job.request))
        }));
        let (route, response) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                (
                    Route::Other,
                    Response {
                        status: 500,
                        reason: "Internal Server Error",
                        content_type: "application/json",
                        body: Arc::new(
                            "{\"ok\":false,\"error\":\"internal handler panic\"}".to_owned(),
                        ),
                    },
                )
            }
        };
        let latency = monotonic_us().saturating_sub(start);
        shared.metrics.record(route, response.status, latency);
        shared.metrics.inflight.fetch_sub(1, Ordering::Relaxed);

        let close = job.close || shared.draining.load(Ordering::SeqCst);
        let bytes = write_response(
            response.status,
            response.reason,
            response.content_type,
            &[],
            response.body.as_bytes(),
            close,
        );
        shared.completions.lock().push(Completion {
            token: job.token,
            bytes,
            close,
            fin: true,
        });
        shared.waker.notify();
    }
}

/// The streaming route a dispatched request targets, if any — these
/// bypass the generic handle-then-frame path for multi-completion
/// chunked NDJSON.
fn streaming_route(request: &Request) -> Option<Route> {
    let path = request.target.split('?').next().unwrap_or(&request.target);
    match (request.method.as_str(), path) {
        ("POST", "/v1/explore") => Some(Route::Explore),
        ("POST", "/v1/droop_sweep") => Some(Route::DroopSweep),
        _ => None,
    }
}

/// The NDJSON stream head shared by every streaming route.
fn stream_head(close: bool) -> Vec<u8> {
    write_stream_head(200, "OK", "application/x-ndjson", close)
}

/// Frames `body` as the newline-terminated final line of a stream,
/// followed by the terminal chunk.
fn stream_tail(body: &str) -> Vec<u8> {
    let mut line = String::with_capacity(body.len() + 1);
    line.push_str(body);
    line.push('\n');
    let mut bytes = write_chunk(line.as_bytes());
    bytes.extend_from_slice(LAST_CHUNK);
    bytes
}

/// Serves one request on a streaming route (`/v1/explore`,
/// `/v1/droop_sweep`): chunked NDJSON progress lines as batches finish,
/// then the result line. Rejections (400/413) stay ordinary framed
/// responses; cache hits and coalesced followers stream only the result
/// line.
fn stream_route(shared: &Shared, job: &Job, route: Route) {
    shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);
    let start = monotonic_us();
    let close = job.close || shared.draining.load(Ordering::SeqCst);
    let token = job.token;

    let push = |bytes: Vec<u8>, fin: bool, close: bool| {
        shared.completions.lock().push(Completion {
            token,
            bytes,
            close,
            fin,
        });
        shared.waker.notify();
    };

    let plan = catch_unwind(AssertUnwindSafe(|| {
        shared.router.plan_stream(route, &job.request)
    }));
    let status = match plan {
        Err(_) => {
            shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
            push(
                write_response(
                    500,
                    "Internal Server Error",
                    "application/json",
                    &[],
                    b"{\"ok\":false,\"error\":\"internal handler panic\"}",
                    close,
                ),
                true,
                close,
            );
            500
        }
        Ok(StreamPlan::Reject(resp)) => {
            push(
                write_response(
                    resp.status,
                    resp.reason,
                    resp.content_type,
                    &[],
                    resp.body.as_bytes(),
                    close,
                ),
                true,
                close,
            );
            resp.status
        }
        Ok(StreamPlan::Cached(body)) => {
            let mut bytes = stream_head(close);
            bytes.extend_from_slice(&stream_tail(&body));
            push(bytes, true, close);
            200
        }
        Ok(StreamPlan::Run(run)) => {
            // The sweep deliberately runs with the engine's par_map pool
            // live (no inline_scope): a 10k-point explore grid or a
            // thousand-lane droop population is exactly the workload the
            // chunked evaluation parallelises, and its results are
            // bit-identical for any thread count.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run(&mut |event| match event {
                    StreamEvent::Started => push(stream_head(close), false, close),
                    StreamEvent::Progress(line) => {
                        push(write_chunk(line.as_bytes()), false, close);
                    }
                })
            }));
            match outcome {
                Ok((Ok((status, body)), role)) => {
                    match role {
                        // Head and progress are already queued in order;
                        // a non-200 logical status rides the wire-200
                        // stream (the head is long gone) and closes.
                        Role::Leader => push(stream_tail(&body), true, close || status != 200),
                        // Followers saw no events: stream head + result
                        // line, exactly like a cache hit — unless the
                        // shared outcome is an error, which they can
                        // still report with honest framing.
                        Role::Follower if status == 200 => {
                            let mut bytes = stream_head(close);
                            bytes.extend_from_slice(&stream_tail(&body));
                            push(bytes, true, close);
                        }
                        Role::Follower => push(
                            write_response(
                                status,
                                "Internal Server Error",
                                "application/json",
                                &[],
                                body.as_bytes(),
                                close,
                            ),
                            true,
                            close,
                        ),
                    }
                    status
                }
                Ok((Err(panic_msg), role)) => {
                    // The leader's compute panicked inside the coalescer
                    // (already booked in panics_total by the runner).
                    // The leader's head is on the wire: terminate its
                    // stream with an error line and close. Followers sent
                    // nothing yet and get a plain framed 500.
                    let body = obj(vec![
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str(format!("handler panicked: {panic_msg}"))),
                    ])
                    .render();
                    match role {
                        Role::Leader => push(stream_tail(&body), true, true),
                        Role::Follower => push(
                            write_response(
                                500,
                                "Internal Server Error",
                                "application/json",
                                &[],
                                body.as_bytes(),
                                close,
                            ),
                            true,
                            true,
                        ),
                    }
                    500
                }
                Err(_) => {
                    // A panic escaped the runner itself (outside the
                    // coalescer's containment — bookkeeping, not compute).
                    // Whether the head went out is unknowable here; end
                    // the response as a stream and close, which bounds
                    // the damage either way.
                    shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                    push(
                        stream_tail("{\"ok\":false,\"error\":\"internal handler panic\"}"),
                        true,
                        true,
                    );
                    500
                }
            }
        }
    };
    let latency = monotonic_us().saturating_sub(start);
    shared.metrics.record(route, status, latency);
    shared.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// epoll wait timeout; also the granularity of the deadline scan.
const TICK_MS: i32 = 25;

/// Where a connection's state machine currently is.
enum ConnState {
    /// Waiting for (more) request bytes, or flushing a response.
    Reading,
    /// A request is with the worker pool; epoll interest is empty, so the
    /// peer's further bytes exert TCP backpressure instead of buffering.
    Dispatched,
    /// Write side shut down; sinking the peer's in-flight bytes until FIN
    /// or the deadline.
    Lingering { deadline_us: u64 },
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    close_after_write: bool,
    /// Set when the final completion of a streamed response has been
    /// appended to `out`: the next full flush may leave [`ConnState::Dispatched`]
    /// instead of waiting for more chunks.
    stream_fin: bool,
    served: usize,
    last_activity_us: u64,
    interest: u32,
}

/// What a readiness handler decided about one connection.
enum Action {
    /// Nothing further; keep waiting.
    Keep,
    /// Close and forget the connection.
    Drop,
    /// A complete request parsed; dispatch it.
    Request(Request),
    /// The parser rejected the framing.
    ParseError(HttpError),
}

struct EventLoop<'a> {
    shared: &'a Shared,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    served: usize,
    events: Vec<(u64, u32)>,
}

impl<'a> EventLoop<'a> {
    fn new(shared: &'a Shared, poller: Poller, listener: TcpListener, wake_rx: UnixStream) -> Self {
        let _ = poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EVENT_READ);
        let _ = poller.add(wake_rx.as_raw_fd(), TOKEN_WAKER, EVENT_READ);
        EventLoop {
            shared,
            poller,
            listener: Some(listener),
            wake_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            served: 0,
            events: Vec::with_capacity(256),
        }
    }

    fn run(mut self) -> usize {
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                self.begin_drain();
                if self.conns.is_empty() {
                    self.shared.queue.close();
                    return self.served;
                }
            }
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller.wait(&mut events, TICK_MS);
            for &(token, _readiness) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => drain_wakeups(&mut self.wake_rx),
                    token => self.conn_ready(token),
                }
            }
            self.events = events;
            self.apply_completions();
            self.scan_deadlines();
        }
    }

    /// Stops admission (idempotent): close the listener, drop idle
    /// connections. In-flight work — dispatched requests, partial
    /// uploads, unflushed responses, lingers — continues to completion,
    /// each path bounded by its own deadline.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            // dg-analyze: allow(swallowed-result, reason = "the listener is closed on the next line regardless; a failed epoll DEL cannot keep it admitting")
            let _ = self.poller.remove(listener.as_raw_fd());
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.state, ConnState::Reading)
                    && c.out.is_empty()
                    && c.parser.buffered() == 0
            })
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.drop_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared
                        .metrics
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if self.conns.len() >= self.shared.config.max_connections {
                        // Best-effort shed; never block the loop on it.
                        self.shared
                            .metrics
                            .shed_total
                            .fetch_add(1, Ordering::Relaxed);
                        let mut stream = stream;
                        let _ = stream.write(&shed_response_bytes(self.shared));
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, EVENT_READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            parser: RequestParser::new(self.shared.config.limits),
                            out: Vec::new(),
                            out_pos: 0,
                            state: ConnState::Reading,
                            close_after_write: false,
                            stream_fin: false,
                            served: 0,
                            last_activity_us: monotonic_us(),
                            interest: EVENT_READ,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept errors (EMFILE, ECONNABORTED): the next
                // readiness event retries rather than killing the daemon.
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            // While dispatched, readiness only matters if a streamed
            // response parked mid-chunk on write readiness; otherwise
            // (interest is empty, but level-triggered ERR/HUP still fire)
            // the completion path discovers a dead peer at write time.
            ConnState::Dispatched => {
                if conn.out_pos < conn.out.len() {
                    self.flush(token);
                }
            }
            ConnState::Lingering { .. } => self.linger_ready(token),
            ConnState::Reading => {
                if conn.out_pos < conn.out.len() {
                    self.flush(token);
                } else {
                    self.read_ready(token);
                }
            }
        }
    }

    /// Reads until one request completes, the socket runs dry, or the
    /// connection dies. Stops at the first complete request so pipelined
    /// successors wait their turn in kernel + parser buffers.
    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let action = match conn.stream.read(&mut chunk) {
                Ok(0) => Action::Drop,
                Ok(n) => {
                    conn.last_activity_us = monotonic_us();
                    match conn.parser.feed(chunk.get(..n).unwrap_or_default()) {
                        Ok(Some(request)) => Action::Request(request),
                        Ok(None) => continue,
                        Err(e) => Action::ParseError(e),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Action::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => Action::Drop,
            };
            match action {
                Action::Keep => return,
                Action::Drop => return self.drop_conn(token),
                Action::Request(request) => return self.on_request(token, request),
                Action::ParseError(e) => return self.on_parse_error(token, e),
            }
        }
    }

    /// A complete request: answer control routes inline, dispatch the
    /// rest to the worker pool, shed if the queue refuses.
    fn on_request(&mut self, token: u64, request: Request) {
        self.served += 1;
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.served += 1;
        let close = !request.keep_alive()
            || draining
            || conn.served >= self.shared.config.max_requests_per_conn;

        if is_inline(&request) {
            let start = monotonic_us();
            // dg-analyze: allow(no-blocking-in-event-loop, reason = "is_inline gates this dispatch to /healthz, /metrics and /admin/drain, which touch no disk, queue, coalescer or sleep; every other route goes through the worker pool below")
            let outcome = catch_unwind(AssertUnwindSafe(|| self.shared.router.handle(&request)));
            let (route, response) = match outcome {
                Ok(pair) => pair,
                Err(_) => {
                    self.shared
                        .metrics
                        .panics_total
                        .fetch_add(1, Ordering::Relaxed);
                    (
                        Route::Other,
                        Response {
                            status: 500,
                            reason: "Internal Server Error",
                            content_type: "application/json",
                            body: Arc::new(
                                "{\"ok\":false,\"error\":\"internal handler panic\"}".to_owned(),
                            ),
                        },
                    )
                }
            };
            let latency = monotonic_us().saturating_sub(start);
            self.shared.metrics.record(route, response.status, latency);
            // `POST /admin/drain` flips the flag inside the handler; honor
            // it on this very response.
            let close = close || self.shared.draining.load(Ordering::SeqCst);
            let bytes = write_response(
                response.status,
                response.reason,
                response.content_type,
                &[],
                response.body.as_bytes(),
                close,
            );
            self.queue_write(token, bytes, close);
            return;
        }

        // Memoized content answers straight off the loop: one JSON parse
        // and one lock, no queue dispatch, no completion wake-up.
        if let Some((route, response)) = self.shared.router.cached_response(&request) {
            self.shared.metrics.record(route, response.status, 0);
            let bytes = write_response(
                response.status,
                response.reason,
                response.content_type,
                &[],
                response.body.as_bytes(),
                close,
            );
            self.queue_write(token, bytes, close);
            return;
        }

        match self.shared.queue.try_push(Job {
            token,
            request,
            close,
        }) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Dispatched;
                }
                self.set_interest(token, 0);
            }
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                self.shared
                    .metrics
                    .shed_total
                    .fetch_add(1, Ordering::Relaxed);
                let bytes = shed_response_bytes(self.shared);
                self.queue_write(token, bytes, true);
            }
        }
    }

    fn on_parse_error(&mut self, token: u64, error: HttpError) {
        self.shared
            .metrics
            .bad_requests_total
            .fetch_add(1, Ordering::Relaxed);
        let (status, reason) = error.status();
        self.shared.metrics.record(Route::Other, status, 0);
        let body = format!("{{\"ok\":false,\"error\":\"{error}\"}}");
        let bytes = write_response(
            status,
            reason,
            "application/json",
            &[],
            body.as_bytes(),
            true,
        );
        // Framing is ambiguous from here on: answer and close.
        self.queue_write(token, bytes, true);
    }

    /// Stages `bytes` as the connection's pending output and flushes
    /// optimistically.
    fn queue_write(&mut self, token: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.state = ConnState::Reading;
        conn.out = bytes;
        conn.out_pos = 0;
        conn.close_after_write = close;
        conn.stream_fin = false;
        self.flush(token);
    }

    /// Writes pending output until done or the kernel pushes back; a full
    /// flush either lingers the connection out or re-arms it for the next
    /// request (serving a buffered pipelined one immediately).
    fn flush(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            let pending = conn.out.get(conn.out_pos..).unwrap_or_default();
            match conn.stream.write(pending) {
                Ok(0) => return self.drop_conn(token),
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity_us = monotonic_us();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Peer not draining yet: park on write readiness.
                    return self.set_interest(token, EVENT_WRITE);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.drop_conn(token),
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if matches!(conn.state, ConnState::Dispatched) && !conn.stream_fin {
            // Mid-stream: the chunks written so far are out, the worker
            // will push more. Stay dispatched with empty interest so only
            // the next completion (or a terminal deadline) resumes us.
            conn.out = Vec::new();
            conn.out_pos = 0;
            conn.last_activity_us = monotonic_us();
            return self.set_interest(token, 0);
        }
        conn.out = Vec::new();
        conn.out_pos = 0;
        conn.stream_fin = false;
        conn.state = ConnState::Reading;
        if conn.close_after_write {
            return self.begin_linger(token);
        }
        conn.last_activity_us = monotonic_us();
        self.set_interest(token, EVENT_READ);
        // Keep-alive: a pipelined successor may already be buffered.
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.parser.feed(&[]) {
            Ok(Some(request)) => self.on_request(token, request),
            Ok(None) => {}
            Err(e) => self.on_parse_error(token, e),
        }
    }

    /// Non-blocking linger: half-close, then sink reads until FIN or the
    /// deadline scan reaps the connection.
    fn begin_linger(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.state = ConnState::Lingering {
            deadline_us: monotonic_us().saturating_add(LINGER_BUDGET_MS.saturating_mul(1_000)),
        };
        self.set_interest(token, EVENT_READ);
        self.linger_ready(token);
    }

    fn linger_ready(&mut self, token: u64) {
        let mut sink = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut sink) {
                Ok(0) => return self.drop_conn(token),
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.drop_conn(token),
            }
        }
    }

    /// Hands worker completions back to their connections' state machines.
    /// A dispatched connection **appends** each completion's bytes (the
    /// completion vector preserves the worker's push order, so a streamed
    /// head → progress → terminal sequence lands on the wire in order);
    /// only the `fin` completion releases the connection back to
    /// [`ConnState::Reading`] via the flush tail.
    fn apply_completions(&mut self) {
        let done = std::mem::take(&mut *self.shared.completions.lock());
        for completion in done {
            // The connection may have died while its request was in
            // flight; tokens are never recycled, so a stale completion
            // simply misses.
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            if matches!(conn.state, ConnState::Dispatched) {
                conn.out.extend_from_slice(&completion.bytes);
                if completion.fin {
                    conn.stream_fin = true;
                    conn.close_after_write = completion.close;
                }
                self.flush(completion.token);
            } else {
                // Defensive: a completion for a connection no longer
                // dispatched (should not happen — the worker owns the
                // connection until fin). Frame it as a whole response.
                self.queue_write(completion.token, completion.bytes, completion.close);
            }
        }
    }

    /// Reaps idle connections, stalled writers, and expired lingers.
    fn scan_deadlines(&mut self) {
        let now = monotonic_us();
        let idle_budget_us = self
            .shared
            .config
            .read_timeout_ms
            .max(1)
            .saturating_mul(1_000);
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| match c.state {
                ConnState::Lingering { deadline_us } => now >= deadline_us,
                // Covers idle keep-alive, stalled heads/bodies, and peers
                // not draining their response (write stall): any quiet
                // period past the read timeout closes the connection.
                ConnState::Reading => now.saturating_sub(c.last_activity_us) >= idle_budget_us,
                // The worker owns the deadline while dispatched — unless a
                // streamed response has pending bytes the peer will not
                // drain (a stalled streaming reader), which the idle
                // budget reaps like any other write stall.
                ConnState::Dispatched => {
                    !c.out.is_empty() && now.saturating_sub(c.last_activity_us) >= idle_budget_us
                }
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.drop_conn(token);
        }
    }

    fn set_interest(&mut self, token: u64, interest: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest != interest {
            // A failed re-arm would otherwise leave the fd silently stalled
            // (never readable/writable again): tear the connection down.
            let rearmed = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, interest)
                .is_ok();
            conn.interest = interest;
            if !rearmed {
                self.drop_conn(token);
            }
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // dg-analyze: allow(swallowed-result, reason = "the fd is being torn down; EBADF from epoll_ctl DEL is the expected benign race with peer close")
            let _ = self.poller.remove(conn.stream.as_raw_fd());
        }
    }
}

/// Routes cheap enough (and important enough) to answer on the event loop
/// itself: liveness and metrics stay observable under full compute
/// overload, and `POST /admin/drain` cannot be shed by the very pressure
/// it relieves.
fn is_inline(request: &Request) -> bool {
    matches!(
        (request.method.as_str(), request.target.as_str()),
        ("GET", "/healthz") | ("GET", "/metrics") | ("POST", "/admin/drain")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 4,
            read_timeout_ms: 200,
            ..ServerConfig::default()
        }
    }

    fn talk(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).expect("write");
        let _ = s.shutdown(Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_healthz_over_tcp_and_drains_cleanly() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        let reply = talk(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        let report = handle.shutdown();
        assert!(report.clean);
        assert_eq!(report.requests_served, 1);
    }

    #[test]
    fn malformed_framing_gets_4xx_and_close() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        let reply = talk(addr, b"NOT-HTTP-AT-ALL\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = talk(
            addr,
            b"POST /v1/droop HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        let m = handle.metrics();
        assert_eq!(m.bad_requests_total.load(Ordering::Relaxed), 2);
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = Server::start(tiny_config()).expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("write");
            let mut buf = [0u8; 2048];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(buf.get(..n).unwrap_or_default()).into_owned();
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        }
        let report = handle.shutdown();
        assert!(report.clean);
        assert_eq!(report.requests_served, 3);
    }

    #[test]
    fn pipelined_requests_are_served_in_order_on_one_connection() {
        let handle = Server::start(tiny_config()).expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // Three requests in one write; the last one asks to close, so
        // read_to_end frames the burst.
        s.write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .expect("write");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(
            text.matches("HTTP/1.1 200 OK").count(),
            3,
            "all three pipelined requests answered: {text}"
        );
        let report = handle.shutdown();
        assert!(report.clean);
        assert_eq!(report.requests_served, 3);
    }

    #[test]
    fn half_read_head_completes_across_readiness_events() {
        let handle = Server::start(tiny_config()).expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // The head arrives in three fragments with genuine gaps, so the
        // loop sees readable events with an incomplete parse in between.
        for fragment in [
            &b"GET /hea"[..],
            &b"lthz HTTP/1.1\r\nHo"[..],
            &b"st: t\r\nConnection: close\r\n\r\n"[..],
        ] {
            s.write_all(fragment).expect("write fragment");
            thread::sleep(Duration::from_millis(40));
        }
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn large_body_survives_short_writes_to_a_slow_reader() {
        let handle = Server::start(ServerConfig {
            read_timeout_ms: 2_000,
            ..tiny_config()
        })
        .expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // A ~600 KB sweep response: far beyond the socket buffers, so the
        // server's optimistic write hits WouldBlock and the connection
        // parks on EPOLLOUT while we drain it slowly.
        let body = br#"{"variant":"gated","points":20000,"decimate":1}"#;
        let head = format!(
            "POST /v1/sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).expect("head");
        s.write_all(body).expect("body");
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    out.extend_from_slice(chunk.get(..n).unwrap_or_default());
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("slow read failed after {} bytes: {e}", out.len()),
            }
        }
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.starts_with("HTTP/1.1 200 OK"),
            "{}",
            &text[..text.len().min(200)]
        );
        let content_length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric");
        let body_start = out
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        assert_eq!(
            out.len() - body_start,
            content_length,
            "the full body must arrive intact through short writes"
        );
        assert!(content_length > 400_000, "response is genuinely large");
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn keep_alive_idle_past_read_timeout_is_closed_by_the_server() {
        let handle = Server::start(tiny_config()).expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let mut buf = [0u8; 2048];
        let n = s.read(&mut buf).expect("reply");
        assert!(n > 0);
        // Go idle past the 200 ms read timeout: the server must close.
        let start = monotonic_us();
        let eof = s.read(&mut buf).expect("server FIN, not client timeout");
        let elapsed_ms = monotonic_us().saturating_sub(start) / 1_000;
        assert_eq!(eof, 0, "idle keep-alive connection must be closed");
        assert!(
            (150..4_000).contains(&elapsed_ms),
            "close arrived after {elapsed_ms} ms for a 200 ms idle budget"
        );
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn linger_close_is_bounded_against_trickling_peers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let trickler = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                // A slowloris peer: keep a byte in flight so every server
                // read returns data and the loop never hits its read
                // timeout. Only the deadline can end the drain.
                while !stop.load(Ordering::Relaxed) {
                    if s.write_all(b"x").is_err() {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let (server_side, _) = listener.accept().expect("accept");
        let start = monotonic_us();
        linger_close(server_side);
        let elapsed_ms = monotonic_us().saturating_sub(start) / 1_000;
        stop.store(true, Ordering::Relaxed);
        trickler.join().expect("trickler");
        // Generous slack over LINGER_BUDGET_MS for slow CI machines, but
        // far below the unbounded behaviour (16 reads x trickle pacing).
        assert!(
            elapsed_ms <= LINGER_BUDGET_MS + 750,
            "linger drain took {elapsed_ms} ms, budget is {LINGER_BUDGET_MS} ms"
        );
        drop(listener);
    }

    #[test]
    fn retry_after_grows_with_queue_depth_and_stays_bounded() {
        assert_eq!(retry_after_secs(1, 0, 64), 1, "empty queue: just the base");
        assert_eq!(retry_after_secs(1, 64, 64), 4, "full queue: base + 3");
        assert_eq!(retry_after_secs(1, 32, 64), 2, "half full");
        let mut last = 0;
        for len in 0..=128 {
            let secs = retry_after_secs(1, len, 128);
            assert!(secs >= last, "must be monotone in queue depth");
            last = secs;
        }
        assert_eq!(retry_after_secs(29, 1000, 1), 30, "capped at 30 s");
        assert_eq!(retry_after_secs(1, 5, 0), 30, "zero capacity cannot divide");
    }

    #[test]
    fn shed_503_carries_depth_derived_retry_after_and_close() {
        // One worker, queue depth 1: concurrent slow requests force the
        // dispatch path to shed with the full-queue Retry-After.
        let handle = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            enable_debug_routes: true,
            ..tiny_config()
        })
        .expect("bind");
        let addr = handle.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(move || {
                    talk(
                        addr,
                        b"POST /v1/debug/sleep HTTP/1.1\r\nHost: t\r\nContent-Length: 11\r\n\r\n{\"ms\": 300}",
                    )
                })
            })
            .collect();
        let mut shed = 0u64;
        for t in threads {
            let reply = t.join().expect("client");
            if reply.starts_with("HTTP/1.1 503") {
                shed += 1;
                assert!(reply.contains("Connection: close"), "{reply}");
                let retry: u32 = reply
                    .lines()
                    .find_map(|l| l.strip_prefix("Retry-After: "))
                    .expect("Retry-After header")
                    .trim()
                    .parse()
                    .expect("numeric Retry-After");
                // Shed happens with the queue at (or near) capacity, so
                // the depth penalty must be visible over the base of 1.
                assert!(
                    (1..=4).contains(&retry),
                    "depth-derived Retry-After out of range: {retry}"
                );
            } else {
                assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
            }
        }
        assert!(shed >= 1, "8 concurrent sleeps on 1 worker must shed");
        assert_eq!(handle.metrics().shed_total.load(Ordering::Relaxed), shed);
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn drain_refuses_new_connections_but_finishes_admitted_work() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        handle.request_drain();
        assert!(handle.is_draining());
        // Give the event loop a tick to notice and close the listener.
        thread::sleep(Duration::from_millis(100));
        // New connections are now refused outright (or, if they raced the
        // listener close, answered and closed).
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = Vec::new();
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.read_to_end(&mut out);
            let text = String::from_utf8_lossy(&out);
            assert!(
                text.is_empty() || text.starts_with("HTTP/1.1 503"),
                "draining server must not serve new work: {text}"
            );
        }
        assert!(handle.shutdown().clean);
    }
}

//! The TCP server: accept loop, bounded work queue, worker pool, and
//! graceful drain.
//!
//! Life of a connection:
//!
//! 1. the accept loop (non-blocking listener polled every few ms so drain
//!    flags are noticed promptly) accepts the socket and counts it,
//! 2. admission control: [`crate::queue::BoundedQueue::try_push`] either
//!    admits the connection or the accept loop *itself* answers
//!    `503 Service Unavailable` with `Retry-After` and closes it — workers
//!    never see shed load, so the backlog and its tail latency stay
//!    bounded,
//! 3. a worker pops the connection and runs a keep-alive request loop:
//!    incremental parse → route dispatch inside
//!    [`dg_engine::inline_scope`] (nested `par_map` calls run inline, so a
//!    request costs one thread, not a thread explosion) → response write →
//!    metrics,
//! 4. on drain ([`ServerHandle::request_drain`], `POST /admin/drain`, or
//!    SIGTERM in the binary) the accept loop stops admitting and closes
//!    the queue; already-admitted connections are served to completion
//!    with `Connection: close`, then workers exit and
//!    [`ServerHandle::shutdown`] reports whether the drain was clean.

use crate::http::{write_response, ParserLimits, Request, RequestParser};
use crate::metrics::{monotonic_us, Metrics, Route};
use crate::queue::{BoundedQueue, PushError};
use crate::routes::Router;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission bound: connections queued ahead of the workers before
    /// the accept loop starts shedding with 503.
    pub queue_depth: usize,
    /// HTTP framing limits.
    pub limits: ParserLimits,
    /// Per-read socket timeout; an idle keep-alive connection is closed
    /// after this long, and drain latency is bounded by it.
    pub read_timeout_ms: u64,
    /// Value of the `Retry-After` header on shed responses.
    pub retry_after_secs: u32,
    /// Requests served on one connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Enables `POST /v1/debug/sleep` (overload tests only).
    pub enable_debug_routes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            limits: ParserLimits::default(),
            read_timeout_ms: 2_000,
            retry_after_secs: 1,
            max_requests_per_conn: 1_000,
            enable_debug_routes: false,
        }
    }
}

/// How often the accept loop re-checks the drain flags while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// What [`ServerHandle::shutdown`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests served over the server's lifetime (all workers).
    pub requests_served: usize,
    /// `true` when the accept loop and every worker exited without
    /// panicking — the graceful-drain contract held.
    pub clean: bool,
}

/// Everything the accept loop and workers share.
struct Shared {
    config: ServerConfig,
    metrics: Arc<Metrics>,
    router: Router,
    draining: Arc<AtomicBool>,
    queue: BoundedQueue<TcpStream>,
}

/// The `dg-serve` daemon. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A handle to a running server; dropping it does **not** stop the
/// server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<usize>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns a
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::default());
        let draining = Arc::new(AtomicBool::new(false));
        let router = Router::new(
            Arc::clone(&metrics),
            Arc::clone(&draining),
            config.enable_debug_routes,
        );
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            router,
            metrics,
            draining,
            config,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dg-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry (shared with the handlers).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a drain has been requested (by this handle, by
    /// `POST /admin/drain`, or by a signal in the binary).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain: stop admitting, serve what was admitted.
    /// Idempotent; returns immediately.
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Drains (if not already draining) and blocks until the accept loop
    /// and every worker have exited, reporting whether the drain was
    /// clean.
    pub fn shutdown(mut self) -> DrainReport {
        self.request_drain();
        let mut clean = true;
        if let Some(accept) = self.accept.take() {
            clean &= accept.join().is_ok();
        }
        // The accept loop closes the queue on its way out; workers drain
        // the remaining admitted connections and then see `None`.
        let mut requests_served = 0usize;
        for worker in self.workers.drain(..) {
            match worker.join() {
                Ok(served) => requests_served += served,
                Err(_) => clean = false,
            }
        }
        DrainReport {
            requests_served,
            clean,
        }
    }
}

/// Accepts until a drain is requested, applying admission control.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                prepare(&stream, &shared.config);
                match shared.queue.try_push(stream) {
                    Ok(()) => {}
                    Err(PushError::Full(stream) | PushError::Closed(stream)) => {
                        shed(stream, shared);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // Transient accept errors (EMFILE, ECONNABORTED): back off and
            // keep serving rather than killing the daemon.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    shared.queue.close();
}

/// Configures socket timeouts; failures degrade to blocking I/O, which
/// only affects idle-connection reaping.
fn prepare(stream: &TcpStream, config: &ServerConfig) {
    let timeout = Some(Duration::from_millis(config.read_timeout_ms.max(1)));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let _ = stream.set_nodelay(true);
}

/// Total wall-clock budget for [`linger_close`]. The drain runs on the
/// accept loop for shed connections, so this bound is what keeps a
/// slowloris peer (trickling one byte per read) from pinning admission.
const LINGER_BUDGET_MS: u64 = 250;

/// Per-read timeout inside [`linger_close`]; a peer that goes quiet for
/// this long ends the drain early, well inside the total budget.
const LINGER_READ_TIMEOUT_MS: u64 = 50;

/// Write timeout for the shed 503. The accept loop writes this response
/// itself, so a peer that never reads (zero receive window) must not be
/// able to stall it for the normal per-connection write timeout.
const SHED_WRITE_TIMEOUT_MS: u64 = 100;

/// Half-closes `stream` and drains whatever the peer still has in flight
/// before dropping it. Closing a socket with unread bytes in its receive
/// buffer makes the kernel send RST, and an RST destroys any response
/// (such as the shed 503) still sitting in the peer's receive buffer —
/// lingering turns that RST into an orderly FIN. Bounded by a hard
/// wall-clock deadline ([`LINGER_BUDGET_MS`]) so a peer trickling bytes
/// cannot hold the drain open: each read returns quickly with data, and
/// without the deadline a byte every few milliseconds would keep the
/// loop alive indefinitely.
fn linger_close(mut stream: TcpStream) {
    let deadline = monotonic_us().saturating_add(LINGER_BUDGET_MS.saturating_mul(1_000));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(LINGER_READ_TIMEOUT_MS)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    while monotonic_us() < deadline {
        match stream.read(&mut sink) {
            // Peer finished (FIN), went quiet past the read timeout, or
            // errored: the linger has done its job either way.
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Answers a connection the queue refused: `503` + `Retry-After` +
/// `Connection: close`, then a bounded lingering close. Runs on the
/// accept loop, so both the write and the drain carry short deadlines.
fn shed(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
    let body = format!(
        "{{\"ok\":false,\"error\":\"server is at capacity, retry after {}s\"}}",
        shared.config.retry_after_secs
    );
    let extra = [(
        "Retry-After".to_owned(),
        shared.config.retry_after_secs.to_string(),
    )];
    let _ = stream.set_write_timeout(Some(Duration::from_millis(SHED_WRITE_TIMEOUT_MS)));
    let _ = stream.write_all(&write_response(
        503,
        "Service Unavailable",
        "application/json",
        &extra,
        body.as_bytes(),
        true,
    ));
    linger_close(stream);
}

/// Pops admitted connections until the queue closes and drains; returns
/// the number of requests this worker served.
fn worker_loop(shared: &Shared) -> usize {
    let mut served = 0usize;
    while let Some(stream) = shared.queue.pop() {
        served += handle_connection(stream, shared);
    }
    served
}

/// Serves one connection's keep-alive request loop (with a lingering
/// close on every exit path); returns requests served on it.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> usize {
    let served = connection_loop(&mut stream, shared);
    linger_close(stream);
    served
}

/// The keep-alive read/parse/dispatch loop behind [`handle_connection`].
fn connection_loop(stream: &mut TcpStream, shared: &Shared) -> usize {
    let mut parser = RequestParser::new(shared.config.limits);
    let mut served = 0usize;
    let mut chunk = [0u8; 8 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return served, // peer closed
            Ok(n) => n,
            // Idle keep-alive connection timed out (or the peer stalled):
            // close it; during a drain this is what bounds shutdown time.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return served
            }
            Err(_) => return served,
        };
        let mut input: &[u8] = chunk.get(..n).unwrap_or_default();
        // Extract every complete request already buffered (pipelining):
        // after the first, feed no new bytes and let leftovers drain.
        loop {
            match parser.feed(input) {
                Ok(Some(request)) => {
                    input = &[];
                    served += 1;
                    if serve_one(stream, &request, shared, served).is_break() {
                        return served;
                    }
                }
                Ok(None) => break, // need more bytes from the socket
                Err(e) => {
                    shared
                        .metrics
                        .bad_requests_total
                        .fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = e.status();
                    shared.metrics.record(Route::Other, status, 0);
                    let body = format!("{{\"ok\":false,\"error\":\"{e}\"}}");
                    let _ = stream.write_all(&write_response(
                        status,
                        reason,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        true,
                    ));
                    return served; // framing is ambiguous: poison + close
                }
            }
        }
    }
}

/// Dispatches one request and writes the response. `Break` means the
/// connection must close.
fn serve_one(
    stream: &mut TcpStream,
    request: &Request,
    shared: &Shared,
    served_on_conn: usize,
) -> std::ops::ControlFlow<()> {
    shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);
    let start = monotonic_us();
    // Handlers run with par_map inlined (one thread per request) and any
    // panic that escapes the router's own containment becomes a 500.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        dg_engine::inline_scope(|| shared.router.handle(request))
    }));
    let (route, response) = match outcome {
        Ok(pair) => pair,
        Err(_) => {
            shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
            (
                Route::Other,
                crate::routes::Response {
                    status: 500,
                    reason: "Internal Server Error",
                    content_type: "application/json",
                    body: Arc::new(
                        "{\"ok\":false,\"error\":\"internal handler panic\"}".to_owned(),
                    ),
                },
            )
        }
    };
    let latency = monotonic_us().saturating_sub(start);
    shared.metrics.record(route, response.status, latency);
    shared.metrics.inflight.fetch_sub(1, Ordering::Relaxed);

    let close = !request.keep_alive()
        || shared.draining.load(Ordering::SeqCst)
        || served_on_conn >= shared.config.max_requests_per_conn;
    let bytes = write_response(
        response.status,
        response.reason,
        response.content_type,
        &[],
        response.body.as_bytes(),
        close,
    );
    if stream.write_all(&bytes).is_err() || close {
        std::ops::ControlFlow::Break(())
    } else {
        std::ops::ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 4,
            read_timeout_ms: 200,
            ..ServerConfig::default()
        }
    }

    fn talk(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).expect("write");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_healthz_over_tcp_and_drains_cleanly() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        let reply = talk(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        let report = handle.shutdown();
        assert!(report.clean);
        assert_eq!(report.requests_served, 1);
    }

    #[test]
    fn malformed_framing_gets_4xx_and_close() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        let reply = talk(addr, b"NOT-HTTP-AT-ALL\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = talk(
            addr,
            b"POST /v1/droop HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        let m = handle.metrics();
        assert_eq!(m.bad_requests_total.load(Ordering::Relaxed), 2);
        assert!(handle.shutdown().clean);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = Server::start(tiny_config()).expect("bind");
        let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("write");
            let mut buf = [0u8; 2048];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(buf.get(..n).unwrap_or_default()).into_owned();
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        }
        let report = handle.shutdown();
        assert!(report.clean);
        assert_eq!(report.requests_served, 3);
    }

    #[test]
    fn linger_close_is_bounded_against_trickling_peers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let trickler = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                // A slowloris peer: keep a byte in flight so every server
                // read returns data and the loop never hits its read
                // timeout. Only the deadline can end the drain.
                while !stop.load(Ordering::Relaxed) {
                    if s.write_all(b"x").is_err() {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let (server_side, _) = listener.accept().expect("accept");
        let start = monotonic_us();
        linger_close(server_side);
        let elapsed_ms = monotonic_us().saturating_sub(start) / 1_000;
        stop.store(true, Ordering::Relaxed);
        trickler.join().expect("trickler");
        // Generous slack over LINGER_BUDGET_MS for slow CI machines, but
        // far below the unbounded behaviour (16 reads x trickle pacing).
        assert!(
            elapsed_ms <= LINGER_BUDGET_MS + 750,
            "linger drain took {elapsed_ms} ms, budget is {LINGER_BUDGET_MS} ms"
        );
        drop(listener);
    }

    #[test]
    fn shed_503_carries_connection_close_and_retry_after() {
        // Drive shed() directly over a real socket pair so the assertion
        // covers the exact bytes the accept loop puts on the wire.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
            String::from_utf8_lossy(&out).into_owned()
        });
        let (server_side, _) = listener.accept().expect("accept");
        let shared = Shared {
            config: tiny_config(),
            metrics: Arc::new(Metrics::default()),
            router: Router::new(
                Arc::new(Metrics::default()),
                Arc::new(AtomicBool::new(false)),
                false,
            ),
            draining: Arc::new(AtomicBool::new(false)),
            queue: BoundedQueue::new(1),
        };
        shed(server_side, &shared);
        let reply = client.join().expect("client");
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        assert!(reply.contains("Retry-After: 1"), "{reply}");
        assert_eq!(shared.metrics.shed_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_refuses_new_connections_but_finishes_admitted_work() {
        let handle = Server::start(tiny_config()).expect("bind");
        let addr = handle.local_addr();
        handle.request_drain();
        assert!(handle.is_draining());
        // Give the accept loop a poll interval to notice.
        thread::sleep(Duration::from_millis(50));
        // New connections are now either refused outright or shed.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = Vec::new();
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.read_to_end(&mut out);
            let text = String::from_utf8_lossy(&out);
            assert!(
                text.is_empty() || text.starts_with("HTTP/1.1 503"),
                "draining server must not serve new work: {text}"
            );
        }
        assert!(handle.shutdown().clean);
    }
}

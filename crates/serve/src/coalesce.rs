//! In-flight request coalescing ("single-flight").
//!
//! N identical concurrent requests compute once: the first arrival
//! becomes the **leader** and runs the computation; every request with the
//! same content key that arrives while the leader is still computing
//! becomes a **follower** and blocks on a condition variable until the
//! leader publishes the shared result. Keys are the same content hashes
//! the PR-1 substrate caches use ([`dg_pdn::cache::ContentKey`] via
//! `darkgates::pdn::cache`), so "identical" means identical *physics
//! inputs*, not identical bytes-on-the-wire.
//!
//! Coalescing composes with the substrate caches rather than replacing
//! them: the caches deduplicate *across time* (a repeat of yesterday's
//! sweep is a pointer bump), the coalescer deduplicates *across
//! concurrency* (a thundering herd of the same cold sweep computes it
//! once instead of once per worker).
//!
//! A leader that panics publishes the panic message instead of a value, so
//! followers never hang; the flight entry is removed either way.

use dg_engine::sync::{TrackedCondvar, TrackedMutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// How a request's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This request ran the computation.
    Leader,
    /// This request reused a concurrent identical computation.
    Follower,
}

/// One in-flight computation: publication slot plus wakeup signal.
struct Flight<T> {
    slot: TrackedMutex<Option<Result<T, String>>>,
    done: TrackedCondvar,
}

/// A single-flight coalescer over content-keyed computations.
///
/// `T` is cloned out to every follower, so callers wrap bulky payloads in
/// [`Arc`] (the server coalesces `Arc<str>` response bodies).
pub struct Coalescer<T: Clone> {
    inflight: TrackedMutex<HashMap<u64, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Self {
        Coalescer {
            inflight: TrackedMutex::new("serve.coalesce.inflight", HashMap::new()),
        }
    }
}

impl<T: Clone> std::fmt::Debug for Coalescer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("inflight", &self.inflight_len())
            .finish()
    }
}

impl<T: Clone> Coalescer<T> {
    /// A fresh coalescer with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys currently in flight (observability; also
    /// exported as a gauge by the server).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().len()
    }

    /// Runs `compute` for `key`, coalescing with any identical in-flight
    /// computation.
    ///
    /// Returns the shared result and this caller's [`Role`]. If the
    /// leader's `compute` panicked, every participant receives the panic
    /// message as `Err` (and the panic does not propagate).
    pub fn run(&self, key: u64, compute: impl FnOnce() -> T) -> (Result<T, String>, Role) {
        let flight = {
            let mut map = self.inflight.lock();
            if let Some(existing) = map.get(&key) {
                let flight = Arc::clone(existing);
                drop(map);
                return (self.wait(&flight), Role::Follower);
            }
            let fresh = Arc::new(Flight {
                slot: TrackedMutex::new("serve.coalesce.flight", None),
                done: TrackedCondvar::new(),
            });
            map.insert(key, Arc::clone(&fresh));
            fresh
        };

        // Leader path: compute outside every lock, publish, then retire
        // the flight so later identical requests start fresh (and hit the
        // substrate caches instead).
        let outcome = catch_unwind(AssertUnwindSafe(compute)).map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "handler panicked".to_owned())
        });
        *flight.slot.lock() = Some(outcome.clone());
        flight.done.notify_all();
        self.inflight.lock().remove(&key);
        (outcome, Role::Leader)
    }

    fn wait(&self, flight: &Flight<T>) -> Result<T, String> {
        let mut slot = flight.slot.lock();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = flight.done.wait(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    /// Two concurrent identical requests → exactly one computation. The
    /// leader is held inside `compute` until the follower is provably
    /// blocked on the flight, so the overlap is deterministic, not a race.
    #[test]
    fn concurrent_identical_requests_compute_once() {
        let coalescer = Arc::new(Coalescer::<u64>::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();

        let leader = {
            let coalescer = Arc::clone(&coalescer);
            let computations = Arc::clone(&computations);
            thread::spawn(move || {
                coalescer.run(7, move || {
                    computations.fetch_add(1, Ordering::SeqCst);
                    started_tx.send(()).expect("test channel");
                    release_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("released");
                    42u64
                })
            })
        };

        // Wait until the leader is inside compute, then launch the
        // follower against the same key.
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("leader started");
        assert_eq!(coalescer.inflight_len(), 1);
        let follower = {
            let coalescer = Arc::clone(&coalescer);
            let computations = Arc::clone(&computations);
            thread::spawn(move || {
                coalescer.run(7, move || {
                    computations.fetch_add(1, Ordering::SeqCst);
                    0u64
                })
            })
        };
        // The follower must end up parked on the flight, not computing.
        // Poll briefly: it never increments the counter.
        for _ in 0..50 {
            if computations.load(Ordering::SeqCst) > 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);

        release_tx.send(()).expect("release leader");
        let (lead_result, lead_role) = leader.join().expect("leader thread");
        let (follow_result, follow_role) = follower.join().expect("follower thread");
        assert_eq!(lead_result, Ok(42));
        assert_eq!(follow_result, Ok(42));
        assert_eq!(lead_role, Role::Leader);
        assert_eq!(follow_role, Role::Follower);
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "one computation total"
        );
        assert_eq!(coalescer.inflight_len(), 0, "flight retired");
    }

    #[test]
    fn different_keys_do_not_coalesce() {
        let c = Coalescer::<u32>::new();
        let (a, ra) = c.run(1, || 10);
        let (b, rb) = c.run(2, || 20);
        assert_eq!((a, ra), (Ok(10), Role::Leader));
        assert_eq!((b, rb), (Ok(20), Role::Leader));
    }

    #[test]
    fn sequential_same_key_recomputes() {
        let c = Coalescer::<u32>::new();
        let mut calls = 0;
        let _ = c.run(9, || {
            calls += 1;
            1
        });
        let _ = c.run(9, || {
            calls += 1;
            2
        });
        // No overlap → no coalescing: time-domain dedup is the substrate
        // caches' job, not the coalescer's.
        assert_eq!(calls, 2);
    }

    #[test]
    fn leader_panic_reaches_followers_as_error() {
        let coalescer = Arc::new(Coalescer::<u32>::new());
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader = {
            let coalescer = Arc::clone(&coalescer);
            thread::spawn(move || {
                coalescer.run(3, move || {
                    started_tx.send(()).expect("test channel");
                    release_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("released");
                    panic!("boom in handler");
                })
            })
        };
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("leader started");
        let follower = {
            let coalescer = Arc::clone(&coalescer);
            thread::spawn(move || coalescer.run(3, || 99))
        };
        // Give the follower time to park, then let the leader explode.
        thread::sleep(Duration::from_millis(20));
        release_tx.send(()).expect("release");
        let (lead, _) = leader.join().expect("leader does not unwind");
        let (follow, role) = follower.join().expect("follower thread");
        assert_eq!(lead, Err("boom in handler".to_owned()));
        match role {
            // Deterministically parked followers see the same error; if the
            // follower lost the race and started after retirement, it
            // computed fresh — both are sound.
            Role::Follower => assert_eq!(follow, Err("boom in handler".to_owned())),
            Role::Leader => assert_eq!(follow, Ok(99)),
        }
        assert_eq!(coalescer.inflight_len(), 0);
    }
}

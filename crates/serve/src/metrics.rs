//! Live serving metrics: per-route latency histograms and counters,
//! rendered in Prometheus text exposition format at `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64` relaxed counters), so recording a
//! sample on the hot path costs a handful of atomic increments. The
//! histograms use fixed power-of-two microsecond buckets: coarse, but
//! stable across runs and cheap to merge, and good enough to read p50/p99
//! off a serving benchmark.
//!
//! This module is the one place in the workspace's library code that reads
//! the wall clock: serving latency *is* wall time, and no simulation result
//! flows through it (the determinism contract of the result-producing
//! crates is untouched — `dg-serve` is deliberately not on the
//! `dg-analyze` determinism-hygiene crate list).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of histogram buckets: bucket `i` counts samples with
/// `latency_us < 2^i`, the last bucket is the overflow (+Inf) bucket.
pub const BUCKETS: usize = 22;

/// A monotonic microsecond timestamp for latency measurement.
///
/// Serving latency is observational-only and never feeds a simulation
/// result, so the wall-clock read is sanctioned here (see the module
/// docs); the clippy lint is acknowledged rather than disabled globally.
#[allow(clippy::disallowed_methods)]
pub fn monotonic_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A fixed-bucket latency histogram with power-of-two bounds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency_us: u64) {
        let idx = bucket_index(latency_us);
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_us.fetch_add(latency_us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded latencies, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The upper bucket bound (µs) below which a `q` fraction of samples
    /// fall — a conservative quantile estimate (returns 0 with no samples).
    ///
    /// The rank is clamped to `1..=count`, so `q = 0` reports the first
    /// *non-empty* bucket (not bucket zero's bound) and f64 rounding on
    /// huge counts cannot push the rank past the last sample. If racing
    /// recorders make `count` momentarily outrun the bucket increments,
    /// the estimate falls back to the highest non-empty bucket instead of
    /// claiming the overflow (+Inf) bound.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = (((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut last_nonempty = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                last_nonempty = bucket_bound_us(i);
            }
            seen += n;
            if seen >= rank {
                return bucket_bound_us(i);
            }
        }
        last_nonempty
    }

    /// Snapshot of cumulative bucket counts `(upper_bound_us, count)`.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                acc += b.load(Ordering::Relaxed);
                (bucket_bound_us(i), acc)
            })
            .collect()
    }
}

fn bucket_index(latency_us: u64) -> usize {
    for i in 0..BUCKETS - 1 {
        if latency_us < (1u64 << i) {
            return i;
        }
    }
    BUCKETS - 1
}

fn bucket_bound_us(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// The routes the registry tracks. `Other` absorbs 404s and probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/droop`
    Droop,
    /// `POST /v1/droop_batch`
    DroopBatch,
    /// `POST /v1/sweep`
    Sweep,
    /// `POST /v1/product`
    Product,
    /// `POST /v1/explore` (streamed)
    Explore,
    /// `POST /v1/droop_sweep` (streamed)
    DroopSweep,
    /// `GET /v1/claims`
    Claims,
    /// `GET /metrics`
    Metrics,
    /// `GET /healthz`
    Healthz,
    /// Anything else (404s, malformed targets, debug routes).
    Other,
}

impl Route {
    /// All tracked routes, in render order.
    pub const ALL: [Route; 10] = [
        Route::Droop,
        Route::DroopBatch,
        Route::Sweep,
        Route::Product,
        Route::Explore,
        Route::DroopSweep,
        Route::Claims,
        Route::Metrics,
        Route::Healthz,
        Route::Other,
    ];

    /// The metrics label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Droop => "droop",
            Route::DroopBatch => "droop_batch",
            Route::Sweep => "sweep",
            Route::Product => "product",
            Route::Explore => "explore",
            Route::DroopSweep => "droop_sweep",
            Route::Claims => "claims",
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::Other => "other",
        }
    }
}

/// One [`RouteMetrics`] slot per tracked route.
#[derive(Debug, Default)]
struct RouteSlots {
    droop: RouteMetrics,
    droop_batch: RouteMetrics,
    sweep: RouteMetrics,
    product: RouteMetrics,
    explore: RouteMetrics,
    droop_sweep: RouteMetrics,
    claims: RouteMetrics,
    metrics: RouteMetrics,
    healthz: RouteMetrics,
    other: RouteMetrics,
}

/// Per-route counters and latency histogram.
#[derive(Debug, Default)]
pub struct RouteMetrics {
    /// Responses in the 2xx class.
    pub ok_2xx: AtomicU64,
    /// Responses in the 4xx class.
    pub client_err_4xx: AtomicU64,
    /// Responses in the 5xx class (includes 503 sheds recorded per route).
    pub server_err_5xx: AtomicU64,
    /// Handler latency.
    pub latency: Histogram,
}

/// The process-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    routes: RouteSlots,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections rejected at admission (503 + Retry-After).
    pub shed_total: AtomicU64,
    /// Requests whose response was taken from another in-flight identical
    /// request instead of being recomputed.
    pub coalesced_total: AtomicU64,
    /// Requests that computed a response other coalesced requests reused.
    pub coalesce_leaders_total: AtomicU64,
    /// Handler panics converted to 500s.
    pub panics_total: AtomicU64,
    /// Requests rejected by the HTTP parser (malformed framing).
    pub bad_requests_total: AtomicU64,
    /// Requests currently being handled by workers.
    pub inflight: AtomicU64,
    /// Requests answered from the response cache (memory or disk tier)
    /// without running a handler.
    pub resp_cache_hits_total: AtomicU64,
}

impl Metrics {
    /// The per-route slot.
    pub fn route(&self, route: Route) -> &RouteMetrics {
        match route {
            Route::Droop => &self.routes.droop,
            Route::DroopBatch => &self.routes.droop_batch,
            Route::Sweep => &self.routes.sweep,
            Route::Product => &self.routes.product,
            Route::Explore => &self.routes.explore,
            Route::DroopSweep => &self.routes.droop_sweep,
            Route::Claims => &self.routes.claims,
            Route::Metrics => &self.routes.metrics,
            Route::Healthz => &self.routes.healthz,
            Route::Other => &self.routes.other,
        }
    }

    /// Records one handled request.
    pub fn record(&self, route: Route, status: u16, latency_us: u64) {
        let slot = self.route(route);
        match status {
            200..=299 => slot.ok_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => slot.client_err_4xx.fetch_add(1, Ordering::Relaxed),
            _ => slot.server_err_5xx.fetch_add(1, Ordering::Relaxed),
        };
        slot.latency.record(latency_us);
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP dg_requests_total Handled requests by route and status class.\n");
        out.push_str("# TYPE dg_requests_total counter\n");
        for route in Route::ALL {
            let slot = self.route(route);
            let label = route.label();
            for (class, v) in [
                ("2xx", slot.ok_2xx.load(Ordering::Relaxed)),
                ("4xx", slot.client_err_4xx.load(Ordering::Relaxed)),
                ("5xx", slot.server_err_5xx.load(Ordering::Relaxed)),
            ] {
                out.push_str(&format!(
                    "dg_requests_total{{route=\"{label}\",class=\"{class}\"}} {v}\n"
                ));
            }
        }
        out.push_str("# HELP dg_request_latency_us Handler latency histogram (µs).\n");
        out.push_str("# TYPE dg_request_latency_us histogram\n");
        for route in Route::ALL {
            let slot = self.route(route);
            if slot.latency.count() == 0 {
                continue;
            }
            let label = route.label();
            for (bound, cum) in slot.latency.cumulative() {
                let le = if bound == u64::MAX {
                    "+Inf".to_owned()
                } else {
                    format!("{bound}")
                };
                out.push_str(&format!(
                    "dg_request_latency_us_bucket{{route=\"{label}\",le=\"{le}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "dg_request_latency_us_sum{{route=\"{label}\"}} {}\n",
                slot.latency.sum_us()
            ));
            out.push_str(&format!(
                "dg_request_latency_us_count{{route=\"{label}\"}} {}\n",
                slot.latency.count()
            ));
        }
        let (disk_hits, disk_misses, disk_stores) = darkgates::pdn::diskcache::stats();
        for (name, help, v) in [
            (
                "dg_connections_total",
                "Connections accepted.",
                self.connections_total.load(Ordering::Relaxed),
            ),
            (
                "dg_shed_total",
                "Connections shed at admission with 503.",
                self.shed_total.load(Ordering::Relaxed),
            ),
            (
                "dg_coalesced_total",
                "Requests served from an identical in-flight computation.",
                self.coalesced_total.load(Ordering::Relaxed),
            ),
            (
                "dg_coalesce_leaders_total",
                "Requests that led a coalesced computation.",
                self.coalesce_leaders_total.load(Ordering::Relaxed),
            ),
            (
                "dg_panics_total",
                "Handler panics converted to 500s.",
                self.panics_total.load(Ordering::Relaxed),
            ),
            (
                "dg_bad_requests_total",
                "Requests rejected by the HTTP parser.",
                self.bad_requests_total.load(Ordering::Relaxed),
            ),
            (
                "dg_resp_cache_hits_total",
                "Requests answered from the response cache without recompute.",
                self.resp_cache_hits_total.load(Ordering::Relaxed),
            ),
            (
                "dg_disk_cache_hits_total",
                "Disk-tier content-cache hits (all kinds).",
                disk_hits,
            ),
            (
                "dg_disk_cache_misses_total",
                "Disk-tier content-cache misses (all kinds).",
                disk_misses,
            ),
            (
                "dg_disk_cache_stores_total",
                "Disk-tier content-cache stores (all kinds).",
                disk_stores,
            ),
            (
                "dg_inflight_requests",
                "Requests currently in a worker.",
                self.inflight.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            let kind = if name == "dg_inflight_requests" {
                "gauge"
            } else {
                "counter"
            };
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_quantiles_bound_samples() {
        let h = Histogram::default();
        for us in [1u64, 3, 7, 100, 1000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 101_111);
        let cum = h.cumulative();
        let mut prev = 0;
        for (_, c) in &cum {
            assert!(*c >= prev);
            prev = *c;
        }
        assert_eq!(cum.last().map(|(_, c)| *c), Some(6));
        // p50 of the set is 7 µs → bucket bound 8; p99 covers the max.
        assert_eq!(h.quantile_upper_us(0.5), 8);
        assert!(h.quantile_upper_us(0.99) >= 100_000);
        assert_eq!(Histogram::default().quantile_upper_us(0.5), 0);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let h = Histogram::default();
        h.record(u64::MAX / 2);
        assert_eq!(h.quantile_upper_us(1.0), u64::MAX);
    }

    #[test]
    fn quantile_edge_cases_never_report_empty_overflow() {
        // q = 0 must report the first non-empty bucket, not bucket zero.
        let h = Histogram::default();
        h.record(100); // bucket bound 128
        h.record(100);
        assert_eq!(h.quantile_upper_us(0.0), 128);
        // An exact-boundary rank (q = 1 → rank == count) lands on the
        // last non-empty bucket, never the +Inf bound.
        assert_eq!(h.quantile_upper_us(1.0), 128);
        // q outside [0, 1] clamps instead of overshooting the ranks.
        assert_eq!(h.quantile_upper_us(-1.0), 128);
        assert_eq!(h.quantile_upper_us(2.0), 128);
    }

    #[test]
    fn quantile_survives_count_outrunning_buckets() {
        // record() bumps the bucket and then the count; a reader between
        // two racing recorders can observe count > Σ buckets. The estimate
        // must degrade to the highest non-empty bucket, not +Inf.
        let h = Histogram::default();
        h.record(1000); // bucket bound 1024
        h.count.fetch_add(3, Ordering::Relaxed);
        assert_eq!(h.quantile_upper_us(0.99), 1024);
        assert_eq!(h.quantile_upper_us(1.0), 1024);
    }

    #[test]
    fn render_names_every_counter() {
        let m = Metrics::default();
        m.record(Route::Droop, 200, 42);
        m.record(Route::Droop, 400, 1);
        m.record(Route::Sweep, 503, 5);
        m.shed_total.fetch_add(3, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("dg_requests_total{route=\"droop\",class=\"2xx\"} 1"));
        assert!(text.contains("dg_requests_total{route=\"droop\",class=\"4xx\"} 1"));
        assert!(text.contains("dg_requests_total{route=\"sweep\",class=\"5xx\"} 1"));
        assert!(text.contains("dg_shed_total 3"));
        assert!(text.contains("dg_request_latency_us_count{route=\"droop\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn monotonic_clock_advances() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }
}

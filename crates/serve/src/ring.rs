//! Consistent-hash ring for routing content keys to serve shards.
//!
//! `dg-router` places every shard on a ring at `replicas` pseudo-random
//! points (virtual nodes) derived from the shard index via the same
//! FNV-1a [`ContentKey`](darkgates::pdn::cache::ContentKey) fold the
//! substrate caches use. A request's content key routes to the first
//! ring point at or clockwise-after the key, skipping shards the health
//! checker has ejected. Two properties matter here:
//!
//! * **Affinity** — identical requests land on the same shard, so the
//!   per-shard coalescer, response cache, and substrate caches see every
//!   repeat of a key instead of `1/N` of them.
//! * **Minimal disruption** — when a shard dies, only the arcs it owned
//!   move (to the next shard clockwise); every other key keeps its shard
//!   and therefore its warm caches.

use darkgates::pdn::cache::ContentKey;

/// Default virtual nodes per shard; enough to balance a handful of
/// shards to within a few percent without making lookup tables large.
pub const DEFAULT_REPLICAS: usize = 64;

/// An immutable consistent-hash ring over `shards` shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, shard index)` sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring with `replicas` virtual nodes per shard (floors of 1
    /// apply to both arguments so the ring is never empty).
    pub fn new(shards: usize, replicas: usize) -> Self {
        let shards = shards.max(1);
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(shards * replicas);
        for shard in 0..shards {
            for replica in 0..replicas {
                let position = ContentKey::new()
                    .bytes(b"dg-router/vnode")
                    .word(shard as u64)
                    .word(replica as u64)
                    .finish();
                points.push((position, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Routes `key` to the owning live shard: the first ring point at or
    /// clockwise-after `key` whose shard passes `alive`, wrapping around.
    /// Returns `None` when every shard is dead.
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start =
            self.points.partition_point(|&(position, _)| position < key) % self.points.len();
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .map(|&(_, shard)| shard)
            .find(|&shard| alive(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(i: u64) -> u64 {
        ContentKey::new().bytes(b"test-key").word(i).finish()
    }

    #[test]
    fn routing_is_deterministic_and_balanced() {
        let ring = HashRing::new(3, DEFAULT_REPLICAS);
        let mut counts = [0usize; 3];
        for i in 0..9_000 {
            let shard = ring.route(key_of(i), |_| true).expect("live shard");
            let again = ring.route(key_of(i), |_| true).expect("live shard");
            assert_eq!(shard, again, "routing must be deterministic");
            counts[shard] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (1_200..=6_000).contains(&count),
                "shard {shard} owns a wildly unbalanced arc: {counts:?}"
            );
        }
    }

    #[test]
    fn killing_a_shard_only_remaps_its_own_keys() {
        let ring = HashRing::new(3, DEFAULT_REPLICAS);
        let mut moved = 0usize;
        for i in 0..3_000 {
            let before = ring.route(key_of(i), |_| true).expect("live shard");
            let after = ring
                .route(key_of(i), |shard| shard != 1)
                .expect("live shard");
            assert_ne!(after, 1, "dead shard must never be chosen");
            if before != 1 {
                assert_eq!(before, after, "surviving shards keep their keys");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "shard 1 must have owned some keys");
    }

    #[test]
    fn all_dead_routes_to_none_and_single_shard_takes_everything() {
        let ring = HashRing::new(2, 8);
        assert_eq!(ring.route(42, |_| false), None);
        for i in 0..100 {
            assert_eq!(ring.route(key_of(i), |shard| shard == 1), Some(1));
        }
    }
}

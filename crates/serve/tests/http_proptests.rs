//! Property tests for the hand-rolled HTTP parser: framing must be
//! invariant under arbitrary byte-boundary splits, header-name case, and
//! hostile `Content-Length` values.

use dg_serve::http::{HttpError, ParserLimits, Request, RequestParser};
use proptest::prelude::*;

/// Parses `raw` delivered in the chunks produced by splitting at every
/// position in `cuts` (sorted, deduped).
fn parse_split(raw: &[u8], cuts: &[usize]) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(ParserLimits::default());
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (raw.len() + 1)).collect();
    bounds.push(0);
    bounds.push(raw.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut last = None;
    for pair in bounds.windows(2) {
        if let [a, b] = pair {
            last = parser.feed(&raw[*a..*b])?;
        }
    }
    Ok(last)
}

fn whole(raw: &[u8]) -> Result<Option<Request>, HttpError> {
    RequestParser::new(ParserLimits::default()).feed(raw)
}

/// A well-formed POST with a body of `len` bytes and an arbitrarily cased
/// Content-Length header name.
fn framed_post(path_seed: u8, casing: u8, len: usize) -> Vec<u8> {
    let name: String = "Content-Length"
        .chars()
        .enumerate()
        .map(|(i, c)| {
            if casing >> (i % 8) & 1 == 1 {
                c.to_ascii_uppercase()
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect();
    let mut raw =
        format!("POST /v1/p{path_seed} HTTP/1.1\r\nHost: t\r\n{name}: {len}\r\n\r\n").into_bytes();
    raw.resize(raw.len() + len, b'x');
    raw
}

/// Maps seed bytes in `0..26` to an uppercase ASCII word (candidate method).
fn upper_word(seed: &[u8]) -> String {
    seed.iter().map(|&b| char::from(b'A' + b)).collect()
}

/// Maps seed bytes in `0..36` to a `/`-prefixed lowercase-alnum path.
fn lower_path(seed: &[u8]) -> String {
    std::iter::once('/')
        .chain(seed.iter().map(|&b| {
            if b < 26 {
                char::from(b'a' + b)
            } else {
                char::from(b'0' + (b - 26))
            }
        }))
        .collect()
}

proptest! {
    /// Splitting the byte stream at every combination of positions never
    /// changes the parse: same request, same body, same errors.
    #[test]
    fn split_at_every_byte_is_invariant(
        path_seed in 0u8..50,
        casing in 0u8..=255,
        len in 0usize..200,
        cuts in prop::collection::vec(0usize..400, 0..6),
    ) {
        let raw = framed_post(path_seed, casing, len);
        let reference = whole(&raw);
        let split = parse_split(&raw, &cuts);
        prop_assert_eq!(&reference, &split);
        let req = reference.expect("well-formed").expect("complete");
        prop_assert_eq!(req.body.len(), len);
        prop_assert_eq!(req.method, "POST");
    }

    /// Exhaustive single-split sweep: one cut at *every* byte boundary.
    #[test]
    fn every_single_split_point_parses_identically(
        casing in 0u8..=255,
        len in 0usize..60,
    ) {
        let raw = framed_post(1, casing, len);
        let reference = whole(&raw);
        for cut in 0..=raw.len() {
            let split = parse_split(&raw, &[cut]);
            prop_assert_eq!(&reference, &split, "cut at {}", cut);
        }
    }

    /// Header-name case never affects semantics (RFC 9110).
    #[test]
    fn header_case_is_insensitive(casing_a in 0u8..=255, casing_b in 0u8..=255, len in 0usize..50) {
        let a = whole(&framed_post(2, casing_a, len));
        let b = whole(&framed_post(2, casing_b, len));
        prop_assert_eq!(a, b);
    }

    /// A missing Content-Length means an empty body, whatever trails the
    /// head stays buffered, and the parse still completes.
    #[test]
    fn missing_content_length_means_empty_body(trailing in 0usize..100) {
        let mut raw = b"POST /v1/droop HTTP/1.1\r\nHost: t\r\n\r\n".to_vec();
        raw.resize(raw.len() + trailing, b'y');
        let req = whole(&raw).expect("valid").expect("complete");
        prop_assert!(req.body.is_empty());
    }

    /// Duplicate Content-Length headers are always rejected with 400,
    /// whether the values agree or not, at any split point.
    #[test]
    fn duplicate_content_length_always_rejected(
        a in 0usize..100,
        b in 0usize..100,
        cut in 0usize..80,
    ) {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\n"
        )
        .into_bytes();
        let whole_err = whole(&raw).expect_err("duplicate must be rejected");
        prop_assert_eq!(whole_err.clone(), HttpError::DuplicateContentLength);
        prop_assert_eq!(whole_err.status().0, 400);
        let split_err = parse_split(&raw, &[cut]).expect_err("split parse agrees");
        prop_assert_eq!(split_err, HttpError::DuplicateContentLength);
    }

    /// Any declared length beyond the cap is rejected with 413 before a
    /// single body byte arrives, for any split of the head.
    #[test]
    fn body_too_large_rejected_before_body_bytes(
        excess in 1usize..1_000_000,
        cut in 0usize..60,
    ) {
        let declared = dg_serve::http::DEFAULT_MAX_BODY_BYTES + excess;
        let raw = format!(
            "POST /v1/droop HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
        )
        .into_bytes();
        let err = parse_split(&raw, &[cut]).expect_err("oversized body");
        prop_assert_eq!(err.status().0, 413);
        prop_assert!(matches!(err, HttpError::BodyTooLarge { declared: d, .. } if d == declared));
    }

    /// Junk that is not HTTP at all never parses into a request and never
    /// panics, however it is split.
    #[test]
    fn arbitrary_junk_never_panics(
        junk in prop::collection::vec(0u8..=255, 0..300),
        cuts in prop::collection::vec(0usize..300, 0..4),
    ) {
        // Either an error or "still incomplete" — both are acceptable;
        // completing as a request requires actual HTTP framing.
        let _ = parse_split(&junk, &cuts);
    }

    /// Regression for the request-line fall-through bug: a request line
    /// with fewer than three space-separated parts (no HTTP version, bare
    /// method, trailing space) must always be rejected with 400 — it must
    /// never parse into empty method/target strings.
    #[test]
    fn request_line_missing_version_is_always_400(
        method_seed in prop::collection::vec(0u8..26, 1..=8usize),
        path_seed in prop::collection::vec(0u8..36, 0..=12usize),
        trailing_space in prop::bool::ANY,
        cut in 0usize..40,
    ) {
        let method = upper_word(&method_seed);
        let path = lower_path(&path_seed);
        let line = if trailing_space {
            format!("{method} {path} ")
        } else {
            format!("{method} {path}")
        };
        let raw = format!("{line}\r\nHost: t\r\n\r\n").into_bytes();
        let err = parse_split(&raw, &[cut]).expect_err("no version must be rejected");
        prop_assert_eq!(err.clone(), HttpError::BadRequestLine);
        prop_assert_eq!(err.status().0, 400);
    }

    /// Control bytes and DEL in the target are always rejected, wherever
    /// they sit in the path.
    #[test]
    fn control_bytes_in_target_are_always_400(
        prefix_seed in prop::collection::vec(0u8..26, 0..=6usize),
        suffix_seed in prop::collection::vec(0u8..26, 0..=6usize),
        ctl in prop::sample::select(vec![0x01u8, 0x08, 0x0B, 0x0C, 0x1F, 0x7F]),
    ) {
        let prefix: String = prefix_seed.iter().map(|&b| char::from(b'a' + b)).collect();
        let suffix: String = suffix_seed.iter().map(|&b| char::from(b'a' + b)).collect();
        let mut raw = format!("GET /{prefix}").into_bytes();
        raw.push(ctl);
        raw.extend_from_slice(suffix.as_bytes());
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = whole(&raw).expect_err("control byte in target");
        prop_assert_eq!(err, HttpError::BadRequestLine);
    }

    /// Well-formed request lines always parse, and the parsed method and
    /// target round-trip exactly. Targets draw from the full visible-ASCII
    /// range (0x21..=0x7E) minus the space separator.
    #[test]
    fn well_formed_request_lines_round_trip(
        method_seed in prop::collection::vec(0u8..26, 1..=7usize),
        path_seed in prop::collection::vec(0x21u8..=0x7E, 0..=20usize),
    ) {
        let method = upper_word(&method_seed);
        let path: String = std::iter::once('/')
            .chain(path_seed.iter().filter(|&&b| b != b' ').map(|&b| char::from(b)))
            .collect();
        let raw = format!("{method} {path} HTTP/1.1\r\n\r\n").into_bytes();
        let req = whole(&raw).expect("well-formed").expect("complete");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.target, path);
    }
}

#[test]
fn pipelined_requests_survive_splits() {
    let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    for cut in 0..=raw.len() {
        let mut parser = RequestParser::new(ParserLimits::default());
        let mut got = Vec::new();
        for chunk in [&raw[..cut], &raw[cut..]] {
            let mut bytes = chunk;
            while let Some(req) = parser.feed(bytes).expect("valid") {
                bytes = b"";
                got.push(req.target.clone());
            }
        }
        assert_eq!(got, ["/a", "/b"], "cut at {cut}");
    }
}

//! End-to-end tests for the streaming `/v1/droop_sweep` route: chunked
//! NDJSON framing on the wire, progress waves ahead of the result line,
//! rejection statuses, and the bit-identity contract — every lane served
//! over HTTP must equal a direct `didt::droop_sweep` library call down to
//! the f64 bit pattern, because the JSON renderer emits shortest-roundtrip
//! floats in both directions.

use darkgates::pdn::didt;
use darkgates::pdn::skylake::{PdnVariant, SkylakePdn};
use darkgates::pdn::transient::TransientSim;
use darkgates::pdn::units::{Amps, Seconds, Volts};
use dg_serve::client::http_request;
use dg_serve::http::decode_chunked;
use dg_serve::json::{self, Json};
use dg_serve::routes::delta_grid;
use dg_serve::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn start() -> ServerHandle {
    Server::start(ServerConfig {
        workers: 2,
        queue_depth: 16,
        read_timeout_ms: 5_000,
        ..ServerConfig::default()
    })
    .expect("bind on 127.0.0.1:0")
}

/// An 11-point grid: not a multiple of either SIMD width (11 = 2x4+3 =
/// 8+3), so the batched kernel runs a full vector plus remainder lanes —
/// exactly the shape where a sloppy remainder path would diverge.
const SMALL_GRID: &str = r#"{"variant":"gated","source_v":1.0,"quiescent_a":6,
    "slew_ns":3,"delta":{"start_a":4,"stop_a":44,"points":11}}"#;

/// The droop population the library computes for [`SMALL_GRID`], in mV.
fn expected_lanes() -> Vec<f64> {
    let pdn = SkylakePdn::build(PdnVariant::Gated);
    let sim = TransientSim::droop_capture(Volts::new(1.0));
    let deltas: Vec<Amps> = delta_grid(4.0, 44.0, 11)
        .into_iter()
        .map(Amps::new)
        .collect();
    didt::droop_sweep(
        &pdn.ladder,
        &sim,
        Amps::new(6.0),
        &deltas,
        Seconds::from_ns(3.0),
    )
    .iter()
    .map(|v| v.as_mv())
    .collect()
}

/// Extracts `droop_mv` from a parsed NDJSON line (progress lines carry it
/// at the top level, the result line nests it under `result`).
fn droop_lanes(v: &Json) -> Vec<f64> {
    let arr = v
        .get("droop_mv")
        .or_else(|| v.get("result").and_then(|r| r.get("droop_mv")))
        .and_then(Json::as_arr)
        .expect("droop_mv array");
    arr.iter().map(|n| n.as_f64().expect("lane")).collect()
}

fn assert_bits_equal(served: &[f64], direct: &[f64]) {
    assert_eq!(served.len(), direct.len(), "lane count");
    for (lane, (s, d)) in served.iter().zip(direct).enumerate() {
        assert_eq!(
            s.to_bits(),
            d.to_bits(),
            "lane {lane}: served {s} vs library {d}"
        );
    }
}

#[test]
fn droop_sweep_streams_chunked_ndjson_and_lanes_are_bit_identical() {
    let handle = start();
    let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let raw = format!(
        "POST /v1/droop_sweep HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        SMALL_GRID.len(),
        SMALL_GRID
    );
    s.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    s.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8_lossy(&bytes).into_owned();

    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let head_end = text.find("\r\n\r\n").expect("head terminator") + 4;
    let head = &text[..head_end];
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    assert!(head.contains("application/x-ndjson"), "{head}");
    assert!(
        !head.to_ascii_lowercase().contains("content-length"),
        "a chunked head must not also declare a length: {head}"
    );

    let (payload, _) = decode_chunked(bytes.get(head_end..).unwrap_or_default())
        .expect("complete chunked body with terminal chunk");
    let payload = String::from_utf8(payload).expect("utf-8 NDJSON");
    let lines: Vec<&str> = payload.lines().collect();
    assert!(
        lines.len() >= 2,
        "an 11-lane sweep must stream at least one progress wave: {payload}"
    );

    // Progress waves carry running lane counts and, concatenated, the
    // whole population in lane order.
    let mut streamed: Vec<f64> = Vec::new();
    for line in &lines[..lines.len() - 1] {
        let v = json::parse(line).expect("progress JSON");
        assert_eq!(v.get("total").and_then(Json::as_u64), Some(11), "{line}");
        assert!(
            v.get("completed").and_then(Json::as_u64).is_some(),
            "{line}"
        );
        streamed.extend(droop_lanes(&v));
    }
    let result = json::parse(lines.last().expect("result line")).expect("result JSON");
    assert_eq!(result.get("ok").and_then(Json::as_bool), Some(true));
    let result_lanes = droop_lanes(&result);
    let direct = expected_lanes();
    assert_bits_equal(&result_lanes, &direct);
    assert_bits_equal(&streamed, &direct);

    let r = result.get("result").expect("result object");
    assert_eq!(r.get("n_lanes").and_then(Json::as_u64), Some(11));
    let worst = r
        .get("worst_droop_mv")
        .and_then(Json::as_f64)
        .expect("worst");
    let max = direct.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(worst.to_bits(), max.to_bits(), "worst lane");
    assert!(handle.shutdown().clean);
}

#[test]
fn droop_sweep_replay_is_byte_identical_and_served_from_the_cache() {
    let handle = start();
    let addr = handle.local_addr();
    let grid = r#"{"variant":"bypassed","delta":{"start_a":10,"stop_a":30,"points":3}}"#;
    let first = http_request(addr, "POST", "/v1/droop_sweep", Some(grid)).expect("first");
    assert_eq!(first.status, 200, "{}", first.body);
    let hits_before = handle
        .metrics()
        .resp_cache_hits_total
        .load(Ordering::Relaxed);
    // The same grid modulo key order and explicit defaults normalizes to
    // the same cache key, so this replays the first run's exact bytes.
    let reshaped = r#"{"delta":{"points":3,"stop_a":30,"start_a":10},
        "slew_ns":0,"quiescent_a":10,"source_v":1.0,"variant":"bypassed"}"#;
    let second = http_request(addr, "POST", "/v1/droop_sweep", Some(reshaped)).expect("second");
    assert_eq!(second.status, 200);
    assert_eq!(
        second.body.lines().count(),
        1,
        "a cache replay streams only the result line: {}",
        second.body
    );
    assert_eq!(
        first.body.lines().last(),
        second.body.lines().last(),
        "cache replay must be byte-identical to the computed result"
    );
    assert!(
        handle
            .metrics()
            .resp_cache_hits_total
            .load(Ordering::Relaxed)
            > hits_before,
        "the replay must come from the response cache"
    );
    assert!(handle.shutdown().clean);
}

#[test]
fn droop_sweep_rejects_bad_grids_with_plain_framing() {
    let handle = start();
    let addr = handle.local_addr();

    let bad =
        http_request(addr, "POST", "/v1/droop_sweep", Some("{not a grid")).expect("malformed");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(
        bad.header("content-length").is_some(),
        "rejections are not streamed"
    );

    let oversized = http_request(
        addr,
        "POST",
        "/v1/droop_sweep",
        Some(r#"{"delta":{"start_a":1,"stop_a":50,"points":8193}}"#),
    )
    .expect("oversized");
    assert_eq!(oversized.status, 400, "{}", oversized.body);
    assert!(oversized.body.contains("8192"), "{}", oversized.body);

    let unknown = http_request(
        addr,
        "POST",
        "/v1/droop_sweep",
        Some(r#"{"variant":"wormhole","delta":{"points":2}}"#),
    )
    .expect("unknown variant");
    assert_eq!(unknown.status, 400, "{}", unknown.body);

    // GET on the route is a 405, not a stream; the server still serves
    // ordinary traffic afterwards.
    let wrong_method = http_request(addr, "GET", "/v1/droop_sweep", None).expect("method");
    assert_eq!(wrong_method.status, 405);
    let health = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(handle.metrics().panics_total.load(Ordering::Relaxed), 0);
    assert!(handle.shutdown().clean);
}

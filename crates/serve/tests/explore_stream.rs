//! End-to-end tests for the streaming `/v1/explore` route: chunked
//! NDJSON framing on the wire, progress lines ahead of the result line,
//! rejection statuses, and the byte-identity contract — the result line
//! served over HTTP, replayed from the response cache, and computed by a
//! direct `dg_explore` library call must all match byte for byte.

use dg_serve::client::http_request;
use dg_serve::http::decode_chunked;
use dg_serve::json::{obj, Json};
use dg_serve::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn start() -> ServerHandle {
    Server::start(ServerConfig {
        workers: 2,
        queue_depth: 16,
        read_timeout_ms: 5_000,
        ..ServerConfig::default()
    })
    .expect("bind on 127.0.0.1:0")
}

/// A 64-point spec with the smallest progress cadence, so the stream
/// carries several progress lines before the result.
const SMALL_SPEC: &str = r#"{"tech_nodes":[45,22],"tdp_w":[35,45,65,91],
    "big_perf":[10,20],"small_perf":[1,2],"fraction_parallelism":[0.9],
    "batch":16}"#;

/// What the library renders for `spec`: the exact body `/v1/explore`
/// must serve as its result line.
fn expected_result_body(spec_text: &str) -> String {
    let spec = dg_explore::ExploreSpec::from_text(spec_text).expect("valid spec");
    let result = dg_explore::run(&spec).expect("sweep runs");
    obj(vec![("ok", Json::Bool(true)), ("result", result.to_json())]).render()
}

#[test]
fn explore_streams_chunked_ndjson_progress_then_result() {
    let handle = start();
    let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let raw = format!(
        "POST /v1/explore HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        SMALL_SPEC.len(),
        SMALL_SPEC
    );
    s.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    s.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8_lossy(&bytes).into_owned();

    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let head_end = text.find("\r\n\r\n").expect("head terminator") + 4;
    let head = &text[..head_end];
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    assert!(head.contains("application/x-ndjson"), "{head}");
    assert!(
        !head.to_ascii_lowercase().contains("content-length"),
        "a chunked head must not also declare a length: {head}"
    );

    let (payload, _) = decode_chunked(bytes.get(head_end..).unwrap_or_default())
        .expect("complete chunked body with terminal chunk");
    let payload = String::from_utf8(payload).expect("utf-8 NDJSON");
    let lines: Vec<&str> = payload.lines().collect();
    assert!(
        lines.len() >= 3,
        "64 points at batch 16 must stream progress before the result: {payload}"
    );
    for line in &lines[..lines.len() - 1] {
        assert!(
            line.contains("\"completed\"") && line.contains("\"total\":64"),
            "progress line malformed: {line}"
        );
    }
    let result_line = lines.last().expect("result line");
    assert_eq!(
        *result_line,
        expected_result_body(SMALL_SPEC),
        "the streamed result must equal the direct library rendering"
    );
    assert!(handle.shutdown().clean);
}

#[test]
fn explore_replay_is_byte_identical_and_served_from_the_cache() {
    let handle = start();
    let addr = handle.local_addr();
    let first = http_request(addr, "POST", "/v1/explore", Some(SMALL_SPEC)).expect("first");
    assert_eq!(first.status, 200, "{}", first.body);
    let hits_before = handle
        .metrics()
        .resp_cache_hits_total
        .load(Ordering::Relaxed);
    // Same spec modulo formatting and explicit defaults: the normalized
    // spec keys the cache, so this replays the first run's exact bytes.
    let reshaped = r#"{"batch":16,"fraction_parallelism":[0.9],"small_perf":[1,2],
        "big_perf":[10,20],"tdp_w":[35,45,65,91],"tech_nodes":[45,22],"seed":0}"#;
    let second = http_request(addr, "POST", "/v1/explore", Some(reshaped)).expect("second");
    assert_eq!(second.status, 200);
    // A replay streams no progress (the work already happened): its whole
    // payload is the result line, byte-identical to the first run's.
    assert_eq!(
        second.body.lines().count(),
        1,
        "a cache replay streams only the result line: {}",
        second.body
    );
    assert_eq!(
        first.body.lines().last(),
        second.body.lines().last(),
        "cache replay must be byte-identical to the computed result"
    );
    assert!(
        handle
            .metrics()
            .resp_cache_hits_total
            .load(Ordering::Relaxed)
            > hits_before,
        "the replay must come from the response cache"
    );
    // The de-chunked body is progress lines + result line; the result
    // line must match the library byte for byte.
    let result_line = first.body.lines().last().expect("result line");
    assert_eq!(result_line, expected_result_body(SMALL_SPEC));
    assert!(handle.shutdown().clean);
}

#[test]
fn explore_rejects_malformed_and_oversized_specs_with_plain_framing() {
    let handle = start();
    let addr = handle.local_addr();

    let bad = http_request(addr, "POST", "/v1/explore", Some("{not a spec")).expect("malformed");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(
        bad.header("content-length").is_some(),
        "rejections are not streamed"
    );

    let unknown =
        http_request(addr, "POST", "/v1/explore", Some(r#"{"typo_axis":[1]}"#)).expect("unknown");
    assert_eq!(unknown.status, 400, "{}", unknown.body);
    assert!(unknown.body.contains("typo_axis"), "{}", unknown.body);

    // 6 nodes x 4 TDP x 4 big x 4 small x 32 F x 2 fuse = 24576 > 20000.
    let fractions: Vec<String> = (0..32)
        .map(|i| format!("{:.6}", f64::from(i) / 32.0))
        .collect();
    let oversized = format!("{{\"fraction_parallelism\":[{}]}}", fractions.join(","));
    let too_big = http_request(addr, "POST", "/v1/explore", Some(&oversized)).expect("oversized");
    assert_eq!(too_big.status, 413, "{}", too_big.body);
    assert!(too_big.body.contains("24576"), "{}", too_big.body);

    // GET on the route is a 405, not a stream.
    let wrong_method = http_request(addr, "GET", "/v1/explore", None).expect("method");
    assert_eq!(wrong_method.status, 405);

    // The server still serves ordinary traffic afterwards.
    let health = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(handle.metrics().panics_total.load(Ordering::Relaxed), 0);
    assert!(handle.shutdown().clean);
}

#[test]
fn explore_completes_a_ten_thousand_point_sweep_over_http() {
    // The checked-in Charm-class sweep (14,400 configs, chunked through
    // `par_map`) must stream progress and finish with a result line that
    // matches the library rendering byte for byte — the acceptance bar
    // for serving real design-space sweeps, not just toy grids.
    let spec = include_str!("../../explore/specs/charm_full.json");
    let handle = start();
    let reply =
        http_request(handle.local_addr(), "POST", "/v1/explore", Some(spec)).expect("large sweep");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let lines: Vec<&str> = reply.body.lines().collect();
    assert!(
        lines.len() >= 2,
        "a 14,400-point sweep at batch 512 must stream progress: {} lines",
        lines.len()
    );
    for line in &lines[..lines.len() - 1] {
        assert!(
            line.contains("\"total\":14400"),
            "progress malformed: {line}"
        );
    }
    let result_line = lines.last().expect("result line");
    assert!(
        result_line.contains("\"total_points\":14400"),
        "{result_line}"
    );
    assert_eq!(
        *result_line,
        expected_result_body(spec),
        "HTTP and library renderings must agree on the large sweep"
    );
    assert!(handle.shutdown().clean);
}

#[test]
fn concurrent_identical_explores_coalesce_and_agree_byte_for_byte() {
    let handle = start();
    let addr = handle.local_addr();
    let metrics = handle.metrics();
    // A spec nothing else requests (distinct seed) so the run is cold.
    let spec = r#"{"seed":9,"tech_nodes":[45,22,16],"tdp_w":[35,91],
        "big_perf":[10,30],"small_perf":[2],"fraction_parallelism":[0.99],"batch":16}"#;
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let reply = http_request(addr, "POST", "/v1/explore", Some(spec)).expect("reply");
                assert_eq!(reply.status, 200, "{}", reply.body);
                reply.body.lines().last().expect("result line").to_owned()
            })
        })
        .collect();
    let results: Vec<String> = threads
        .into_iter()
        .map(|t| t.join().expect("client"))
        .collect();
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "all clients must see identical results");
    }
    let leaders = metrics.coalesce_leaders_total.load(Ordering::Relaxed);
    let followers = metrics.coalesced_total.load(Ordering::Relaxed);
    let hits = metrics.resp_cache_hits_total.load(Ordering::Relaxed);
    assert!(
        leaders + followers + hits >= 4,
        "every request is a leader, follower, or cache hit ({leaders}/{followers}/{hits})"
    );
    assert!(handle.shutdown().clean);
}

//! In-process end-to-end smoke: a real server on a real socket, the real
//! mixed burst (including malformed and oversized probes), forced
//! overload, coalescing under concurrency, metrics, and a clean drain.
//!
//! This is the library-level twin of the CI `dg-load --smoke --spawn`
//! step: same assertions, but against `Server::start` in-process, so a
//! regression is caught by `cargo test` without building binaries.

use dg_serve::client::{http_request, run_mix, run_mix_with, MixKind, RunOptions};
use dg_serve::http::ParserLimits;
use dg_serve::json::{self, Json};
use dg_serve::{Server, ServerConfig};
use std::sync::atomic::Ordering;

fn start(config: ServerConfig) -> dg_serve::ServerHandle {
    Server::start(config).expect("bind on 127.0.0.1:0")
}

fn small() -> ServerConfig {
    // Deliberately starved (8 burst clients against capacity 8 = 2 in
    // service + 6 queued) so overload stays reachable, but not so tight
    // that admission races dominate now that the explicit-SIMD kernel
    // answers transient routes in milliseconds even without optimization.
    ServerConfig {
        workers: 2,
        queue_depth: 6,
        read_timeout_ms: 500,
        enable_debug_routes: true,
        ..ServerConfig::default()
    }
}

#[test]
fn mixed_burst_has_no_5xx_other_than_503_and_drains_cleanly() {
    let handle = start(small());
    let addr = handle.local_addr();

    let report = run_mix(addr, 200, 42, 8);
    assert_eq!(report.requests, 200);
    assert_eq!(report.other_5xx, 0, "no 5xx other than 503: {report:?}");
    assert_eq!(report.transport_errors, 0, "{report:?}");
    assert_eq!(report.expectation_failures, 0, "{report:?}");
    assert!(report.ok_2xx > 100, "most of the mix succeeds: {report:?}");
    assert!(
        report.err_4xx > 0,
        "the mix's malformed/oversized probes must have been answered 4xx"
    );

    let metrics = handle.metrics();
    assert!(metrics.bad_requests_total.load(Ordering::Relaxed) > 0);
    assert_eq!(metrics.panics_total.load(Ordering::Relaxed), 0);

    let text = http_request(addr, "GET", "/metrics", None)
        .expect("metrics")
        .body;
    assert!(text.contains("dg_requests_total{route=\"droop\",class=\"2xx\"}"));
    assert!(text.contains("dg_request_latency_us_bucket"));
    assert!(text.contains("dg_bad_requests_total"));

    let drained = handle.shutdown();
    assert!(drained.clean, "graceful drain must be clean");
    // Shed connections are answered by the accept loop and malformed
    // framing is answered before a request parses, so the worker-served
    // count covers (at least) every 2xx the burst saw.
    assert!(
        drained.requests_served >= report.ok_2xx as usize,
        "served {} < ok_2xx {}",
        drained.requests_served,
        report.ok_2xx
    );
}

#[test]
fn served_droop_matches_direct_library_call() {
    use darkgates::pdn::skylake::{PdnVariant, SkylakePdn};
    use darkgates::pdn::transient::{LoadStep, TransientSim};
    use darkgates::pdn::units::{Amps, Seconds, Volts};

    let handle = start(small());
    let reply = http_request(
        handle.local_addr(),
        "POST",
        "/v1/droop",
        Some(r#"{"variant":"gated","from_a":12,"to_a":55,"source_v":1.05,"slew_ns":5}"#),
    )
    .expect("request");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let served = json::parse(&reply.body)
        .expect("valid JSON")
        .get("result")
        .and_then(|r| r.get("droop_mv"))
        .and_then(Json::as_f64)
        .expect("droop_mv");

    let pdn = SkylakePdn::build(PdnVariant::Gated);
    let direct = TransientSim::droop_capture(Volts::new(1.05))
        .run(
            &pdn.ladder,
            LoadStep {
                from: Amps::new(12.0),
                to: Amps::new(55.0),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(5.0),
            },
        )
        .droop()
        .as_mv();
    assert!(
        (served - direct).abs() < 1e-9,
        "served {served} vs direct {direct}"
    );
    assert!(handle.shutdown().clean);
}

#[test]
fn forced_overload_sheds_with_503_and_retry_after_only() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..small()
    });
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                http_request(addr, "POST", "/v1/debug/sleep", Some(r#"{"ms":400}"#)).map(|r| {
                    (
                        r.status,
                        r.header("retry-after").map(str::to_owned),
                        r.header("connection").map(str::to_owned),
                    )
                })
            })
        })
        .collect();
    let mut shed = 0;
    for t in threads {
        let (status, retry_after, connection) =
            t.join().expect("client thread").expect("transport");
        match status {
            200 => {}
            503 => {
                shed += 1;
                assert!(retry_after.is_some(), "503 must carry Retry-After");
                assert_eq!(
                    connection.as_deref(),
                    Some("close"),
                    "503 must carry Connection: close"
                );
            }
            other => panic!("overload must answer 200 or 503, got {other}"),
        }
    }
    assert!(
        shed >= 1,
        "with 1 worker + queue depth 1, 8 concurrent slow requests must shed"
    );
    assert_eq!(handle.metrics().shed_total.load(Ordering::Relaxed), shed);
    assert!(handle.shutdown().clean);
}

#[test]
fn shed_requests_recover_under_a_followup_burst() {
    // Regression for the shedding path: a burst that forces 503s must not
    // poison the server — an immediately following burst of valid traffic
    // has to come back entirely 2xx.
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..small()
    });
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                http_request(addr, "POST", "/v1/debug/sleep", Some(r#"{"ms":300}"#))
                    .expect("transport")
                    .status
            })
        })
        .collect();
    let mut shed = 0;
    for t in threads {
        match t.join().expect("client thread") {
            200 => {}
            503 => shed += 1,
            other => panic!("overload must answer 200 or 503, got {other}"),
        }
    }
    assert!(shed >= 1, "the setup burst must actually shed");

    // Recovery: the same server, serial valid-only keep-alive traffic.
    // (One request in flight never fills even a depth-1 queue, so any
    // shed here means the burst left the admission path wedged.)
    let report = run_mix_with(
        addr,
        &RunOptions {
            n: 100,
            seed: 7,
            concurrency: 1,
            kind: MixKind::Valid,
            keep_alive: true,
        },
    );
    assert_eq!(report.requests, 100);
    assert_eq!(
        report.ok_2xx, 100,
        "post-shed valid traffic must be all-2xx: {report:?}"
    );
    assert_eq!(report.transport_errors, 0, "{report:?}");
    assert!(handle.shutdown().clean);
}

#[test]
fn keep_alive_valid_mix_is_error_free_end_to_end() {
    let handle = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..small()
    });
    let report = run_mix_with(
        handle.local_addr(),
        &RunOptions {
            n: 200,
            seed: 42,
            concurrency: 8,
            kind: MixKind::Valid,
            keep_alive: true,
        },
    );
    assert_eq!(report.requests, 200);
    assert_eq!(report.ok_2xx, 200, "{report:?}");
    assert_eq!(report.err_4xx, 0, "{report:?}");
    assert_eq!(report.transport_errors, 0, "{report:?}");
    assert!(report.p50_us() > 0 && report.p99_us() >= report.p50_us());
    let drained = handle.shutdown();
    assert!(drained.clean);
}

#[test]
fn concurrent_identical_sweeps_coalesce_to_one_leader() {
    let handle = start(ServerConfig {
        workers: 6,
        queue_depth: 32,
        ..small()
    });
    let addr = handle.local_addr();
    let metrics = handle.metrics();
    // Six concurrent identical sweeps of a shape nothing else computes
    // (cold substrate cache, expensive enough to overlap). The overlap
    // window is scheduling-dependent, so allow a few attempts — each with
    // a fresh content key — before declaring coalescing broken.
    let mut coalesced = false;
    for attempt in 0..5 {
        let body = format!(
            "{{\"variant\":\"gated\",\"points\":19999,\"decimate\":1000,\"start_hz\":{}}}",
            12_345 + attempt
        );
        let before_leaders = metrics.coalesce_leaders_total.load(Ordering::Relaxed);
        let before_followers = metrics.coalesced_total.load(Ordering::Relaxed);
        let before_hits = metrics.resp_cache_hits_total.load(Ordering::Relaxed);
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let body = body.clone();
                std::thread::spawn(move || {
                    http_request(addr, "POST", "/v1/sweep", Some(&body))
                        .expect("sweep")
                        .status
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("client"), 200);
        }
        let leaders = metrics.coalesce_leaders_total.load(Ordering::Relaxed) - before_leaders;
        let followers = metrics.coalesced_total.load(Ordering::Relaxed) - before_followers;
        let cache_hits = metrics.resp_cache_hits_total.load(Ordering::Relaxed) - before_hits;
        assert_eq!(
            leaders + followers + cache_hits,
            6,
            "every request is a leader, a coalesced follower, or a response-cache hit"
        );
        assert!(leaders >= 1);
        if followers >= 1 {
            coalesced = true;
            break;
        }
    }
    assert!(
        coalesced,
        "no attempt produced a coalesced follower for identical concurrent sweeps"
    );
    assert!(handle.shutdown().clean);
}

#[test]
fn claims_endpoint_grades_all_twelve() {
    let handle = start(small());
    let reply = http_request(handle.local_addr(), "GET", "/v1/claims", None).expect("claims");
    assert_eq!(reply.status, 200);
    let v = json::parse(&reply.body).expect("valid JSON");
    let result = v.get("result").expect("result");
    assert_eq!(result.get("total").and_then(Json::as_u64), Some(12));
    assert_eq!(result.get("passed").and_then(Json::as_u64), Some(12));
    assert!(handle.shutdown().clean);
}

#[test]
fn oversized_and_malformed_requests_do_not_kill_the_connection_handling() {
    let handle = start(ServerConfig {
        limits: ParserLimits {
            max_body_bytes: 256,
            ..ParserLimits::default()
        },
        ..small()
    });
    let addr = handle.local_addr();
    let reply = dg_serve::client::raw_request(
        addr,
        b"POST /v1/droop HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n",
    )
    .expect("reply");
    assert_eq!(reply.status, 413);
    let reply = dg_serve::client::raw_request(addr, b"complete garbage\r\n\r\n").expect("reply");
    assert_eq!(reply.status, 400);
    // The server is still fine afterwards.
    let reply = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(reply.status, 200);
    assert!(handle.shutdown().clean);
}

//! Property-based tests for workload-model invariants.

use dg_cstates::power::{GatingConfig, IdlePowerModel};
use dg_cstates::states::PackageCstate;
use dg_power::units::Seconds;
use dg_workloads::spec::{suite, SpecBenchmark, SpecSuite};
use dg_workloads::synth::SyntheticWorkloadGen;
use dg_workloads::trace::bursty;
use proptest::prelude::*;

proptest! {
    /// Speedup is monotone in frequency and bounded by the frequency ratio.
    #[test]
    fn speedup_monotone_and_bounded(
        s in 0.0..=1.0f64,
        f1 in 1e9..5e9f64,
        f2 in 1e9..5e9f64,
    ) {
        let b = SpecBenchmark { name: "prop", suite: SpecSuite::Int, scalability: s };
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let ref_f = 3e9;
        prop_assert!(b.speedup(hi, ref_f) >= b.speedup(lo, ref_f) - 1e-12);
        // Speedup never exceeds the raw frequency ratio.
        let up = b.speedup(hi, lo);
        prop_assert!(up <= hi / lo + 1e-12);
        prop_assert!(up >= 1.0 - 1e-12);
    }

    /// Limit behaviours: a fully scalable workload speeds up exactly with
    /// frequency; a fully memory-bound one not at all; identity at equal
    /// frequency. (Note the model's scalability factor is anchored at the
    /// reference frequency, so speedups do NOT compose across different
    /// anchors — that is a property of the definition, not a bug.)
    #[test]
    fn speedup_limits(
        s in 0.0..=1.0f64,
        f in 1e9..5e9f64,
        fref in 1e9..5e9f64,
    ) {
        let b = SpecBenchmark { name: "prop", suite: SpecSuite::Fp, scalability: s };
        prop_assert!((b.speedup(fref, fref) - 1.0).abs() < 1e-12);
        let scalable = SpecBenchmark { name: "s1", suite: SpecSuite::Fp, scalability: 1.0 };
        prop_assert!((scalable.speedup(f, fref) - f / fref).abs() < 1e-9 * (f / fref));
        let bound = SpecBenchmark { name: "s0", suite: SpecSuite::Fp, scalability: 0.0 };
        prop_assert!((bound.speedup(f, fref) - 1.0).abs() < 1e-12);
    }

    /// Every suite benchmark has a Cdyn in the physical band.
    #[test]
    fn suite_cdyn_bounded(idx in 0..29usize) {
        let b = &suite()[idx];
        let nf = b.cdyn().as_nf();
        prop_assert!((0.9..1.7).contains(&nf), "{}: {nf}", b.name);
    }

    /// Synthetic energy traces always satisfy the residency algebra and
    /// yield an average power bracketed by their phase powers.
    #[test]
    fn synthetic_energy_traces_valid(seed in 0..2000u64) {
        let mut g = SyntheticWorkloadGen::new(seed);
        let wl = g.energy_trace();
        prop_assert!(wl.weights_sum_to_one());
        let model = IdlePowerModel::new();
        for bypassed in [false, true] {
            let cfg = GatingConfig::skylake(bypassed, 4);
            let deep = wl.average_power(&model, &cfg, PackageCstate::C8);
            let shallow = wl.average_power(&model, &cfg, PackageCstate::C6);
            prop_assert!(deep <= shallow, "deeper ceiling must not cost power");
        }
    }

    /// Bursty traces conserve total time and alternate phases.
    #[test]
    fn bursty_traces_conserve_time(
        seed in 0..500u64,
        total in 1.0..60.0f64,
        mean_busy in 0.01..1.0f64,
        mean_idle in 0.01..1.0f64,
    ) {
        let t = bursty(
            seed,
            Seconds::new(total),
            Seconds::new(mean_busy),
            Seconds::new(mean_idle),
            2,
        );
        prop_assert!((t.total_duration().value() - total).abs() < 1e-6);
        prop_assert!(t.busy_fraction() >= 0.0 && t.busy_fraction() <= 1.0);
        for p in &t.phases {
            prop_assert!(p.duration.value() >= 0.0);
        }
    }
}

//! Phase traces: bursty busy/idle activity patterns.
//!
//! Client devices alternate compute bursts with idle gaps (the pattern
//! behind the paper's energy-efficiency workloads and connected-standby
//! style usages). A [`PhaseTrace`] is a timed sequence of busy and idle
//! phases that the SoC simulator can replay through the firmware.

use dg_power::dynamic::CdynProfile;
use dg_power::units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens during one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TracePhaseKind {
    /// `active_cores` run at the given per-core dynamic capacitance.
    Busy {
        /// Number of busy cores.
        active_cores: usize,
        /// Per-core dynamic capacitance in nanofarads.
        cdyn_nf: f64,
    },
    /// All engines idle; the platform may enter a package C-state.
    Idle,
}

/// One timed phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePhase {
    /// The activity.
    pub kind: TracePhaseKind,
    /// Phase length.
    pub duration: Seconds,
}

impl TracePhase {
    /// The Cdyn profile of a busy phase; `None` for idle phases (which
    /// draw no dynamic power) or for a non-positive/non-finite `cdyn_nf`.
    pub fn cdyn(&self) -> Option<CdynProfile> {
        match self.kind {
            TracePhaseKind::Busy { cdyn_nf, .. } => CdynProfile::from_nf(cdyn_nf).ok(),
            TracePhaseKind::Idle => None,
        }
    }
}

/// A named sequence of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTrace {
    /// Trace name.
    pub name: String,
    /// The phases, in playback order.
    pub phases: Vec<TracePhase>,
}

impl PhaseTrace {
    /// Total trace length.
    pub fn total_duration(&self) -> Seconds {
        Seconds::new(self.phases.iter().map(|p| p.duration.value()).sum())
    }

    /// Fraction of the trace spent busy.
    pub fn busy_fraction(&self) -> f64 {
        let total = self.total_duration().value();
        if total <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .phases
            .iter()
            .filter(|p| matches!(p.kind, TracePhaseKind::Busy { .. }))
            .map(|p| p.duration.value())
            .sum();
        busy / total
    }

    /// The idle-phase durations, in order.
    pub fn idle_durations(&self) -> Vec<Seconds> {
        self.phases
            .iter()
            .filter(|p| p.kind == TracePhaseKind::Idle)
            .map(|p| p.duration)
            .collect()
    }
}

/// Exponentially-distributed sample with mean `mean` (inverse-CDF method;
/// `rand` without `rand_distr`).
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

/// Generates a bursty on/off trace: busy bursts and idle gaps with
/// exponentially-distributed lengths.
///
/// # Panics
///
/// Panics if any duration parameter is non-positive or `active_cores` is
/// zero.
pub fn bursty(
    seed: u64,
    total: Seconds,
    mean_busy: Seconds,
    mean_idle: Seconds,
    active_cores: usize,
) -> PhaseTrace {
    assert!(total.value() > 0.0, "total must be positive");
    assert!(
        mean_busy.value() > 0.0 && mean_idle.value() > 0.0,
        "phase means must be positive"
    );
    assert!(active_cores > 0, "need at least one busy core");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phases = Vec::new();
    let mut t = 0.0;
    let mut busy = true;
    while t < total.value() {
        let mean = if busy {
            mean_busy.value()
        } else {
            mean_idle.value()
        };
        let dur = exponential(&mut rng, mean).min(total.value() - t);
        phases.push(TracePhase {
            kind: if busy {
                TracePhaseKind::Busy {
                    active_cores,
                    cdyn_nf: rng.gen_range(1.0..1.8),
                }
            } else {
                TracePhaseKind::Idle
            },
            duration: Seconds::new(dur),
        });
        t += dur;
        busy = !busy;
    }
    PhaseTrace {
        name: format!("bursty(seed={seed})"),
        phases,
    }
}

/// An RMT-shaped trace: ~1 % short active bursts on one core, ~99 % long
/// idle gaps (paper Sec. 6).
pub fn rmt_trace(seed: u64, total: Seconds) -> PhaseTrace {
    let mut t = bursty(seed, total, Seconds::from_ms(30.0), Seconds::new(3.0), 1);
    t.name = "rmt-trace".to_owned();
    t
}

/// A video-playback-like trace: periodic frame-decode bursts (~4 ms busy
/// every 33 ms, one core plus fixed media Cdyn).
pub fn video_playback(total: Seconds) -> PhaseTrace {
    let frame = 1.0 / 30.0;
    let busy = 0.004;
    let mut phases = Vec::new();
    let mut t = 0.0;
    while t < total.value() {
        phases.push(TracePhase {
            kind: TracePhaseKind::Busy {
                active_cores: 1,
                cdyn_nf: 1.2,
            },
            duration: Seconds::new(busy),
        });
        phases.push(TracePhase {
            kind: TracePhaseKind::Idle,
            duration: Seconds::new(frame - busy),
        });
        t += frame;
    }
    PhaseTrace {
        name: "video-playback".to_owned(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_is_reproducible() {
        let a = bursty(
            7,
            Seconds::new(10.0),
            Seconds::new(0.1),
            Seconds::new(0.4),
            2,
        );
        let b = bursty(
            7,
            Seconds::new(10.0),
            Seconds::new(0.1),
            Seconds::new(0.4),
            2,
        );
        assert_eq!(a, b);
        let c = bursty(
            8,
            Seconds::new(10.0),
            Seconds::new(0.1),
            Seconds::new(0.4),
            2,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn durations_sum_to_total() {
        let t = bursty(
            1,
            Seconds::new(20.0),
            Seconds::new(0.2),
            Seconds::new(0.5),
            4,
        );
        assert!((t.total_duration().value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn busy_fraction_tracks_means() {
        // mean busy 0.1 s vs mean idle 0.9 s → ~10 % busy.
        let t = bursty(
            42,
            Seconds::new(500.0),
            Seconds::new(0.1),
            Seconds::new(0.9),
            1,
        );
        let f = t.busy_fraction();
        assert!((0.05..0.20).contains(&f), "busy fraction {f}");
    }

    #[test]
    fn rmt_trace_is_mostly_idle() {
        let t = rmt_trace(3, Seconds::new(600.0));
        let f = t.busy_fraction();
        assert!(f < 0.05, "busy fraction {f}");
        assert!(!t.idle_durations().is_empty());
    }

    #[test]
    fn video_playback_alternates_at_30fps() {
        let t = video_playback(Seconds::new(1.0));
        assert!(t.phases.len() >= 58);
        let f = t.busy_fraction();
        assert!((0.10..0.14).contains(&f), "busy fraction {f}");
    }

    #[test]
    fn busy_phase_cdyn_accessor() {
        let t = bursty(
            5,
            Seconds::new(5.0),
            Seconds::new(0.1),
            Seconds::new(0.1),
            2,
        );
        let busy = t
            .phases
            .iter()
            .find(|p| matches!(p.kind, TracePhaseKind::Busy { .. }))
            .unwrap();
        assert!(busy.cdyn().unwrap().as_nf() >= 1.0);
    }

    #[test]
    fn idle_phase_has_no_cdyn() {
        let idle = TracePhase {
            kind: TracePhaseKind::Idle,
            duration: Seconds::new(1.0),
        };
        assert!(idle.cdyn().is_none());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_total_panics() {
        bursty(0, Seconds::ZERO, Seconds::new(0.1), Seconds::new(0.1), 1);
    }
}

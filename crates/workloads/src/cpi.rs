//! CPI-stack performance model.
//!
//! The abstract scalability factor of [`crate::spec`] has a
//! microarchitectural origin: runtime splits into a *core* part (cycles
//! that scale with frequency) and a *memory* part (DRAM latency in
//! nanoseconds, fixed in wall-clock time). This module models it
//! explicitly:
//!
//! ```text
//! time/instr = CPI_core / f   +   MPKI/1000 · blocking · t_DRAM
//! ```
//!
//! where `MPKI` is the LLC misses per kilo-instruction and `blocking` the
//! fraction of miss latency the out-of-order window cannot hide. The
//! frequency scalability at a reference frequency then *emerges*:
//! `s(f_ref) = t_core / (t_core + t_mem)` — and conversely a benchmark's
//! published scalability pins its memory time. Both directions are
//! provided, so the abstract suite and the CPI view stay consistent.

use crate::spec::SpecBenchmark;
use serde::{Deserialize, Serialize};

/// Effective DRAM access time seen by a blocked core, seconds
/// (row activation + transfer + queueing, ~70 ns for DDR4-2133).
pub const DRAM_LATENCY_S: f64 = 70e-9;

/// A benchmark's CPI-stack characterization.
///
/// # Examples
///
/// ```
/// use dg_workloads::cpi::CpiModel;
/// use dg_workloads::spec::by_name;
///
/// let mcf = by_name("429.mcf").expect("mcf is in the suite");
/// let stack = CpiModel::from_benchmark(&mcf, 0.9, 4.2e9);
/// // The derived stack reproduces the table's scalability...
/// assert!((stack.scalability_at(4.2e9) - mcf.scalability).abs() < 1e-9);
/// // ...and mcf's effective CPI is dominated by memory stalls.
/// assert!(stack.effective_cpi(4.2e9) > 3.0 * 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiModel {
    /// Core cycles per instruction when never missing (pipeline quality).
    pub cpi_core: f64,
    /// Effective *blocking* LLC misses per kilo-instruction: real MPKI
    /// scaled by the fraction of miss latency that memory-level
    /// parallelism cannot hide.
    pub blocking_mpki: f64,
}

impl CpiModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `cpi_core` is not strictly positive or `blocking_mpki`
    /// is negative.
    pub fn new(cpi_core: f64, blocking_mpki: f64) -> Self {
        assert!(
            cpi_core > 0.0 && cpi_core.is_finite(),
            "invalid core CPI {cpi_core}"
        );
        assert!(
            blocking_mpki >= 0.0 && blocking_mpki.is_finite(),
            "invalid MPKI {blocking_mpki}"
        );
        CpiModel {
            cpi_core,
            blocking_mpki,
        }
    }

    /// Derives the CPI stack that reproduces `benchmark`'s scalability at
    /// `f_ref_hz`, assuming the given core CPI: the memory time is pinned
    /// by `s = t_core/(t_core + t_mem)`.
    ///
    /// # Panics
    ///
    /// Panics if the reference frequency is not strictly positive.
    pub fn from_benchmark(benchmark: &SpecBenchmark, cpi_core: f64, f_ref_hz: f64) -> Self {
        assert!(f_ref_hz > 0.0, "reference frequency must be positive");
        let s = benchmark.scalability;
        let t_core = cpi_core / f_ref_hz;
        let t_mem = if s >= 1.0 {
            0.0
        } else {
            t_core * (1.0 - s) / s.max(1e-9)
        };
        let blocking_mpki = t_mem / DRAM_LATENCY_S * 1000.0;
        CpiModel::new(cpi_core, blocking_mpki)
    }

    /// Wall-clock time per instruction at core frequency `f_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn time_per_instruction(&self, f_hz: f64) -> f64 {
        assert!(f_hz > 0.0, "frequency must be positive");
        self.cpi_core / f_hz + self.blocking_mpki / 1000.0 * DRAM_LATENCY_S
    }

    /// Effective (wall-clock) CPI at `f_hz`: core CPI plus memory cycles,
    /// which *grow* with frequency — the mechanism behind sub-linear
    /// scaling.
    pub fn effective_cpi(&self, f_hz: f64) -> f64 {
        self.time_per_instruction(f_hz) * f_hz
    }

    /// Instructions per second at `f_hz`.
    pub fn ips(&self, f_hz: f64) -> f64 {
        1.0 / self.time_per_instruction(f_hz)
    }

    /// The frequency scalability this stack exhibits at `f_ref_hz`
    /// (the inverse of [`from_benchmark`]).
    ///
    /// [`from_benchmark`]: CpiModel::from_benchmark
    pub fn scalability_at(&self, f_ref_hz: f64) -> f64 {
        let t_core = self.cpi_core / f_ref_hz;
        let t_mem = self.blocking_mpki / 1000.0 * DRAM_LATENCY_S;
        t_core / (t_core + t_mem)
    }

    /// Relative performance between two frequencies (the CPI-stack
    /// equivalent of [`SpecBenchmark::speedup`]).
    pub fn speedup(&self, f_hz: f64, f_ref_hz: f64) -> f64 {
        self.time_per_instruction(f_ref_hz) / self.time_per_instruction(f_hz)
    }
}

/// Derives CPI stacks for the whole SPEC suite (core CPI 0.7 for fp-heavy
/// codes, 0.9 for int codes — superscalar sustained rates).
pub fn suite_cpi_models(f_ref_hz: f64) -> Vec<(SpecBenchmark, CpiModel)> {
    crate::spec::suite()
        .into_iter()
        .map(|b| {
            let cpi_core = match b.suite {
                crate::spec::SpecSuite::Fp => 0.70,
                crate::spec::SpecSuite::Int => 0.90,
            };
            let m = CpiModel::from_benchmark(&b, cpi_core, f_ref_hz);
            (b, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_name;

    const F_REF: f64 = 4.2e9;

    #[test]
    fn round_trip_scalability() {
        for (b, m) in suite_cpi_models(F_REF) {
            let derived = m.scalability_at(F_REF);
            assert!(
                (derived - b.scalability).abs() < 1e-9,
                "{}: derived {derived} vs table {}",
                b.name,
                b.scalability
            );
        }
    }

    #[test]
    fn cpi_and_abstract_speedups_agree() {
        // The CPI stack and the abstract scalability model are the same
        // model in different coordinates: speedups must match exactly.
        for (b, m) in suite_cpi_models(F_REF) {
            for f in [3.6e9, 4.0e9, 4.6e9] {
                let via_cpi = m.speedup(f, F_REF);
                let via_s = b.speedup(f, F_REF);
                assert!(
                    (via_cpi - via_s).abs() < 1e-9,
                    "{}: cpi {via_cpi} vs abstract {via_s}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn memory_bound_codes_have_high_mpki() {
        let models = suite_cpi_models(F_REF);
        let find = |name: &str| {
            models
                .iter()
                .find(|(b, _)| b.name == name)
                .map(|(_, m)| *m)
                .unwrap()
        };
        let bwaves = find("410.bwaves");
        let gamess = find("416.gamess");
        assert!(
            bwaves.blocking_mpki > 10.0 * gamess.blocking_mpki,
            "bwaves {} vs gamess {}",
            bwaves.blocking_mpki,
            gamess.blocking_mpki
        );
        // Blocking MPKI magnitudes are physically plausible (< 40).
        for (b, m) in &models {
            assert!(
                m.blocking_mpki < 40.0,
                "{}: blocking MPKI {}",
                b.name,
                m.blocking_mpki
            );
        }
    }

    #[test]
    fn effective_cpi_grows_with_frequency() {
        let b = by_name("429.mcf").unwrap();
        let m = CpiModel::from_benchmark(&b, 0.9, F_REF);
        let low = m.effective_cpi(2.0e9);
        let high = m.effective_cpi(4.6e9);
        assert!(
            high > low,
            "memory cycles must grow with f: {low} -> {high}"
        );
        // A pure-compute stack has frequency-independent CPI.
        let pure = CpiModel::new(1.0, 0.0);
        assert!((pure.effective_cpi(2.0e9) - pure.effective_cpi(4.6e9)).abs() < 1e-12);
    }

    #[test]
    fn ips_monotone_in_frequency() {
        let m = CpiModel::new(0.8, 3.0);
        assert!(m.ips(4.0e9) > m.ips(2.0e9));
        // But sub-linear: doubling f does not double IPS.
        let ratio = m.ips(4.0e9) / m.ips(2.0e9);
        assert!(ratio < 2.0 && ratio > 1.0);
    }

    #[test]
    fn fully_scalable_benchmark_has_zero_memory_time() {
        let b = SpecBenchmark {
            name: "synthetic",
            suite: crate::spec::SpecSuite::Int,
            scalability: 1.0,
        };
        let m = CpiModel::from_benchmark(&b, 1.0, F_REF);
        assert_eq!(m.blocking_mpki, 0.0);
        assert!((m.speedup(8.4e9, F_REF) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid core CPI")]
    fn zero_cpi_panics() {
        CpiModel::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        CpiModel::new(1.0, 1.0).time_per_instruction(0.0);
    }
}

//! Seeded synthetic workload generation.
//!
//! Produces randomized-but-reproducible workloads for stress and property
//! testing: SPEC-like benchmarks with arbitrary scalability, and energy
//! traces with randomized residency splits.

use crate::energy::{EnergyWorkload, Phase, PhaseKind};
use crate::spec::{SpecBenchmark, SpecSuite};
use dg_cstates::states::PackageCstate;
use dg_power::units::Watts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator of synthetic workloads.
#[derive(Debug)]
pub struct SyntheticWorkloadGen {
    rng: StdRng,
    counter: usize,
}

impl SyntheticWorkloadGen {
    /// Creates a generator from a seed (same seed ⇒ same sequence).
    pub fn new(seed: u64) -> Self {
        SyntheticWorkloadGen {
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generates a SPEC-like benchmark with random scalability.
    ///
    /// The name is leaked into a `'static` string so the benchmark can be
    /// used anywhere a table entry can; generators are intended for
    /// test-scoped use.
    pub fn spec_benchmark(&mut self) -> SpecBenchmark {
        self.counter += 1;
        let scalability = self.rng.gen_range(0.0..=1.0);
        let suite = if self.rng.gen_bool(0.5) {
            SpecSuite::Int
        } else {
            SpecSuite::Fp
        };
        let name: &'static str =
            Box::leak(format!("9{:02}.synthetic", self.counter).into_boxed_str());
        SpecBenchmark {
            name,
            suite,
            scalability,
        }
    }

    /// Generates an RMT-like energy workload with a random idle/active
    /// split (idle residency uniform in `[0.90, 0.999]`).
    pub fn energy_trace(&mut self) -> EnergyWorkload {
        let idle = self.rng.gen_range(0.90..=0.999);
        let busy_power = Watts::new(self.rng.gen_range(2.0..10.0));
        let idle_cores = self.rng.gen_range(0..4usize);
        EnergyWorkload {
            name: "synthetic-energy",
            phases: vec![
                Phase {
                    kind: PhaseKind::Idle {
                        requested: PackageCstate::C10,
                    },
                    weight: idle,
                },
                Phase {
                    kind: PhaseKind::Active {
                        busy_power,
                        idle_cores,
                    },
                    weight: 1.0 - idle,
                },
            ],
            limit: Watts::new(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SyntheticWorkloadGen::new(42);
        let mut b = SyntheticWorkloadGen::new(42);
        for _ in 0..5 {
            let wa = a.spec_benchmark();
            let wb = b.spec_benchmark();
            assert_eq!(wa.scalability, wb.scalability);
            assert_eq!(wa.suite, wb.suite);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SyntheticWorkloadGen::new(1);
        let mut b = SyntheticWorkloadGen::new(2);
        let diverged =
            (0..10).any(|_| a.spec_benchmark().scalability != b.spec_benchmark().scalability);
        assert!(diverged);
    }

    #[test]
    fn generated_benchmarks_are_valid() {
        let mut g = SyntheticWorkloadGen::new(7);
        for _ in 0..50 {
            let b = g.spec_benchmark();
            assert!((0.0..=1.0).contains(&b.scalability));
            assert!(b.cdyn().as_nf() > 0.0);
            assert!((b.speedup(4.4e9, 4.2e9) - 1.0).abs() < 0.06);
        }
    }

    #[test]
    fn generated_energy_traces_are_valid() {
        let mut g = SyntheticWorkloadGen::new(9);
        for _ in 0..20 {
            let w = g.energy_trace();
            assert!(w.weights_sum_to_one());
            assert!(w.phases.len() == 2);
        }
    }
}

//! Energy-efficiency workloads: ENERGY STAR and Intel Ready Mode (RMT).
//!
//! Both are *residency* workloads (paper Sec. 6): the system cycles through
//! power modes and the metric is the residency-weighted average power, which
//! must stay under a program limit.
//!
//! * **ENERGY STAR** (desktop, v8.0-style structure): weighted mix of
//!   off / sleep / long-idle / short-idle modes. Long idle reaches the
//!   platform's deepest package C-state; short idle keeps the display on and
//!   wakes frequently, so the package stays shallow and idle cores matter.
//! * **RMT**: ~99 % of time fully idle at the deepest package C-state,
//!   ~1 % active servicing network wakes on one core.
//!
//! Mode weights and phase powers are calibration constants of this
//! reproduction (the official TEC formula weights are not reproduced
//! verbatim); they are chosen so the paper's Fig. 10 relations hold and are
//! documented in DESIGN.md / EXPERIMENTS.md.

use dg_cstates::power::{GatingConfig, IdlePowerModel};
use dg_cstates::residency::ResidencyTracker;
use dg_cstates::states::PackageCstate;
use dg_power::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Average-power limit (watts) an ENERGY STAR desktop must meet in this
/// model.
pub const ENERGY_STAR_LIMIT_W: f64 = 1.0;

/// Average-power limit (watts) for the Ready Mode idle platform.
pub const RMT_LIMIT_W: f64 = 1.0;

/// One phase of an energy workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// System off (S5): fixed platform power.
    Off {
        /// Platform power while off.
        power: Watts,
    },
    /// Suspend-to-RAM (S3): fixed platform power.
    Sleep {
        /// Platform power while asleep.
        power: Watts,
    },
    /// Package idle at the deepest C-state the platform supports, capped at
    /// `requested`.
    Idle {
        /// The deepest package state this phase tries to reach.
        requested: PackageCstate,
    },
    /// Package active (C0): `busy_power` of real work plus the idle-core
    /// leakage adder for `idle_cores` cores.
    Active {
        /// Power of the busy components (cores doing work, uncore).
        busy_power: Watts,
        /// Cores sitting idle while the package is active.
        idle_cores: usize,
    },
}

/// A weighted phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// What happens during the phase.
    pub kind: PhaseKind,
    /// Fraction of total time spent in this phase.
    pub weight: f64,
}

/// A residency-style energy workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyWorkload {
    /// Workload name.
    pub name: &'static str,
    /// The weighted phases; weights must sum to 1.
    pub phases: Vec<Phase>,
    /// The program's average-power limit.
    pub limit: Watts,
}

impl EnergyWorkload {
    /// Validates that phase weights sum to 1 (±1e-9).
    pub fn weights_sum_to_one(&self) -> bool {
        let sum: f64 = self.phases.iter().map(|p| p.weight).sum();
        (sum - 1.0).abs() < 1e-9
    }

    /// Residency-weighted average platform power when the platform's
    /// deepest reachable package state is `deepest` under `config`.
    ///
    /// Idle phases that request deeper than `deepest` are clamped to it
    /// (a pre-DarkGates desktop clamps C8 requests at C7).
    pub fn average_power(
        &self,
        model: &IdlePowerModel,
        config: &GatingConfig,
        deepest: PackageCstate,
    ) -> Watts {
        let mut tracker = ResidencyTracker::new();
        // Off/sleep phases are outside the package C-state model; account
        // for them as fixed-power "active" records (the tracker only needs
        // energy × time).
        for phase in &self.phases {
            let secs = Seconds::new(phase.weight * 100.0);
            match phase.kind {
                PhaseKind::Off { power } | PhaseKind::Sleep { power } => {
                    tracker.record_active(power, secs);
                }
                PhaseKind::Idle { requested } => {
                    tracker.record_idle(requested.min(deepest), secs);
                }
                PhaseKind::Active {
                    busy_power,
                    idle_cores,
                } => {
                    let p = model.active_package_power(busy_power, idle_cores, config);
                    tracker.record_active(p, secs);
                }
            }
        }
        tracker.average_power(model, config)
    }

    /// `true` when the configuration meets the program's limit.
    pub fn meets_limit(
        &self,
        model: &IdlePowerModel,
        config: &GatingConfig,
        deepest: PackageCstate,
    ) -> bool {
        self.average_power(model, config, deepest) <= self.limit
    }

    /// ENERGY STAR-style *typical energy consumption* (TEC) in kWh/year:
    /// the residency-weighted average power sustained for a year
    /// (`8760 h`), which is how the program's compliance tables are
    /// denominated.
    pub fn tec_kwh_per_year(
        &self,
        model: &IdlePowerModel,
        config: &GatingConfig,
        deepest: PackageCstate,
    ) -> f64 {
        self.average_power(model, config, deepest).value() * HOURS_PER_YEAR / 1000.0
    }

    /// The program limit expressed as TEC (kWh/year).
    pub fn tec_limit_kwh(&self) -> f64 {
        self.limit.value() * HOURS_PER_YEAR / 1000.0
    }
}

/// Hours in a (365-day) year, the TEC normalization constant.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// The ENERGY STAR desktop workload: 25 % off, 30 % sleep, 40 % long idle
/// (deepest package state), 5 % short idle (display on, frequent wakes,
/// package effectively active with all cores idle) — calibrated weights,
/// see module docs.
pub fn energy_star() -> EnergyWorkload {
    EnergyWorkload {
        name: "ENERGY STAR",
        phases: vec![
            Phase {
                kind: PhaseKind::Off {
                    power: Watts::new(0.2),
                },
                weight: 0.25,
            },
            Phase {
                kind: PhaseKind::Sleep {
                    power: Watts::new(0.4),
                },
                weight: 0.30,
            },
            Phase {
                // Long idle: display blanked, platform reaches its deepest
                // package state.
                kind: PhaseKind::Idle {
                    requested: PackageCstate::C10,
                },
                weight: 0.39,
            },
            Phase {
                // Short idle: display on, media/network timers keep the
                // package shallow; all four cores idle.
                kind: PhaseKind::Active {
                    busy_power: Watts::new(3.0),
                    idle_cores: 4,
                },
                weight: 0.06,
            },
        ],
        limit: Watts::new(ENERGY_STAR_LIMIT_W),
    }
}

/// A mobile video-conferencing workload (paper Sec. 4.3's battery-life
/// benchmark family): camera/codec keep one core plus fixed-function
/// media busy most of the time, with brief dips into shallow package
/// idle between frames.
pub fn video_conferencing() -> EnergyWorkload {
    EnergyWorkload {
        name: "video conferencing",
        phases: vec![
            Phase {
                kind: PhaseKind::Active {
                    busy_power: Watts::new(6.5),
                    idle_cores: 3,
                },
                weight: 0.70,
            },
            Phase {
                kind: PhaseKind::Idle {
                    requested: PackageCstate::C2,
                },
                weight: 0.30,
            },
        ],
        limit: Watts::new(8.0),
    }
}

/// A mobile web-browsing workload: short render bursts, long shallow-to-
/// medium idles while the user reads.
pub fn web_browsing() -> EnergyWorkload {
    EnergyWorkload {
        name: "web browsing",
        phases: vec![
            Phase {
                kind: PhaseKind::Active {
                    busy_power: Watts::new(8.0),
                    idle_cores: 2,
                },
                weight: 0.12,
            },
            Phase {
                kind: PhaseKind::Idle {
                    requested: PackageCstate::C6,
                },
                weight: 0.38,
            },
            Phase {
                kind: PhaseKind::Idle {
                    requested: PackageCstate::C10,
                },
                weight: 0.50,
            },
        ],
        limit: Watts::new(3.0),
    }
}

/// The Intel Ready Mode (RMT) workload: ~99 % fully idle at the deepest
/// package state, ~1 % active on one core servicing network wake-ups
/// (paper Sec. 6: "~99 % of the time, the platform is idle ... consumes few
/// hundreds of milliwatts; the remaining ~1 % ... a few watts").
pub fn ready_mode() -> EnergyWorkload {
    EnergyWorkload {
        name: "Ready Mode (RMT)",
        phases: vec![
            Phase {
                kind: PhaseKind::Idle {
                    requested: PackageCstate::C10,
                },
                weight: 0.99,
            },
            Phase {
                kind: PhaseKind::Active {
                    busy_power: Watts::new(5.0),
                    idle_cores: 3,
                },
                weight: 0.01,
            },
        ],
        limit: Watts::new(RMT_LIMIT_W),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IdlePowerModel {
        IdlePowerModel::new()
    }

    #[test]
    fn weights_sum_to_one() {
        assert!(energy_star().weights_sum_to_one());
        assert!(ready_mode().weights_sum_to_one());
    }

    #[test]
    fn rmt_fig10_relations() {
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        let rmt = ready_mode();

        let dg_c7 = rmt.average_power(&m, &bypassed, PackageCstate::C7);
        let dg_c8 = rmt.average_power(&m, &bypassed, PackageCstate::C8);
        let base_c7 = rmt.average_power(&m, &gated, PackageCstate::C7);

        // Observation 1: C8 cuts DarkGates average power by roughly 68 %.
        let reduction = 1.0 - dg_c8 / dg_c7;
        assert!(
            (0.58..0.75).contains(&reduction),
            "RMT reduction {reduction} (C7 {dg_c7}, C8 {dg_c8})"
        );
        // Observation 2: DarkGates at C7 misses the limit; C8 meets it.
        assert!(!rmt.meets_limit(&m, &bypassed, PackageCstate::C7));
        assert!(rmt.meets_limit(&m, &bypassed, PackageCstate::C8));
        // Observation 3: the gated baseline at C7 is (slightly) below
        // DarkGates at C8.
        assert!(
            base_c7 < dg_c8,
            "baseline C7 {base_c7} should undercut DarkGates C8 {dg_c8}"
        );
    }

    #[test]
    fn energy_star_fig10_relations() {
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        let es = energy_star();

        let dg_c7 = es.average_power(&m, &bypassed, PackageCstate::C7);
        let dg_c8 = es.average_power(&m, &bypassed, PackageCstate::C8);
        let base_c7 = es.average_power(&m, &gated, PackageCstate::C7);

        let reduction = 1.0 - dg_c8 / dg_c7;
        assert!(
            (0.25..0.42).contains(&reduction),
            "ENERGY STAR reduction {reduction} (C7 {dg_c7}, C8 {dg_c8})"
        );
        assert!(!es.meets_limit(&m, &bypassed, PackageCstate::C7));
        assert!(es.meets_limit(&m, &bypassed, PackageCstate::C8));
        assert!(base_c7 < dg_c8);
    }

    #[test]
    fn idle_requests_clamped_by_platform() {
        let m = model();
        let bypassed = GatingConfig::skylake(true, 4);
        let rmt = ready_mode();
        // Clamping at C7 vs C8 must change the result (the request is C10).
        let at_c7 = rmt.average_power(&m, &bypassed, PackageCstate::C7);
        let at_c8 = rmt.average_power(&m, &bypassed, PackageCstate::C8);
        let at_c10 = rmt.average_power(&m, &bypassed, PackageCstate::C10);
        assert!(at_c7 > at_c8);
        assert!(at_c8 >= at_c10);
    }

    #[test]
    fn mobile_workloads_favor_the_gated_package() {
        // The reason mobile parts keep their gates (Sec. 4.3): battery
        // benchmarks spend much of their time with cores idle at active or
        // shallow-idle rails, where un-gated leakage hurts.
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        for wl in [video_conferencing(), web_browsing()] {
            assert!(wl.weights_sum_to_one(), "{}", wl.name);
            let p_gated = wl.average_power(&m, &gated, PackageCstate::C10);
            let p_byp = wl.average_power(&m, &bypassed, PackageCstate::C10);
            assert!(
                p_byp.value() > 1.15 * p_gated.value(),
                "{}: bypassed {p_byp} vs gated {p_gated}",
                wl.name
            );
            // The mobile (gated, C10) configuration meets its battery
            // budget.
            assert!(wl.meets_limit(&m, &gated, PackageCstate::C10));
        }
    }

    #[test]
    fn tec_is_consistent_with_average_power() {
        let m = model();
        let bypassed = GatingConfig::skylake(true, 4);
        let es = energy_star();
        let avg = es.average_power(&m, &bypassed, PackageCstate::C8).value();
        let tec = es.tec_kwh_per_year(&m, &bypassed, PackageCstate::C8);
        assert!((tec - avg * 8.760).abs() < 1e-9, "tec {tec} vs avg {avg}");
        // The compliant configuration sits under the TEC limit too.
        assert!(tec < es.tec_limit_kwh());
        // 1 W for a year is 8.76 kWh.
        assert!((es.tec_limit_kwh() - 8.76).abs() < 1e-9);
    }

    #[test]
    fn rmt_idle_power_is_hundreds_of_milliwatts() {
        // Sanity against the paper's description of Ready Mode platforms.
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let avg = ready_mode().average_power(&m, &gated, PackageCstate::C7);
        assert!(
            (0.3..0.9).contains(&avg.value()),
            "baseline RMT average {avg}"
        );
    }
}

//! SPEC CPU2006-style benchmark suite model.
//!
//! The paper's CPU evaluation (Sec. 7.1) runs SPEC CPU2006 and observes
//! that each benchmark's gain from a higher core clock is proportional to
//! its *performance scalability* with frequency (footnote 14): a workload
//! whose runtime is `s/f + (1−s)/f_ref` gains `s·Δf/f` from a small clock
//! bump, nothing from the memory-bound remainder.
//!
//! We keep the 29 real benchmark names and assign each a scalability factor
//! calibrated from its published compute/memory character (compute-bound
//! codes like `416.gamess` and `444.namd` near 0.85+, memory-bound codes
//! like `410.bwaves` and `433.milc` below 0.1). The suite mean is ≈0.52,
//! which reproduces the paper's ≈4.6 % average gain at a ≈9.5 % frequency
//! uplift.

use dg_power::dynamic::CdynProfile;
use serde::{Deserialize, Serialize};

/// Which half of SPEC CPU2006 a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecSuite {
    /// SPECint (integer).
    Int,
    /// SPECfp (floating point).
    Fp,
}

/// Run mode (paper Sec. 3): `base` runs one copy on one core; `rate` runs
/// one copy per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecMode {
    /// Single-copy, single-core.
    Base,
    /// One copy per core (throughput).
    Rate,
}

impl SpecMode {
    /// Number of active cores in this mode on an `n`-core part.
    pub fn active_cores(self, n: usize) -> usize {
        match self {
            SpecMode::Base => 1,
            SpecMode::Rate => n,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SpecMode::Base => "base",
            SpecMode::Rate => "rate",
        }
    }
}

/// One SPEC CPU2006 benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecBenchmark {
    /// Official benchmark name (e.g. `"444.namd"`).
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: SpecSuite,
    /// Frequency scalability `s ∈ [0, 1]`.
    pub scalability: f64,
}

impl SpecBenchmark {
    /// Relative performance at frequency `f_hz` versus `f_ref_hz`:
    /// `1 / (s·(f_ref/f) + (1−s))`.
    ///
    /// Equal frequencies give exactly 1.0; a perfectly scalable workload
    /// (`s = 1`) gives `f/f_ref`.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is not strictly positive.
    pub fn speedup(&self, f_hz: f64, f_ref_hz: f64) -> f64 {
        assert!(f_hz > 0.0 && f_ref_hz > 0.0, "frequencies must be positive");
        let s = self.scalability;
        1.0 / (s * (f_ref_hz / f_hz) + (1.0 - s))
    }

    /// Per-copy relative performance in rate mode with shared-memory
    /// contention: with `copies` copies running, the memory-bound fraction
    /// of the runtime stretches by `1 + k·(copies − 1)` (shared LLC/DRAM
    /// bandwidth), so frequency gains dilute.
    ///
    /// The headline evaluation harness (`dg-soc::run_spec`) deliberately
    /// uses the *uncontended* model: the paper's measured rate gains at
    /// 91 W exceed its base gains, which implies bandwidth was not the
    /// binding constraint on the suite mean, and our fused-ceiling
    /// calibration absorbs the average contention. This method exposes the
    /// contended model for sensitivity studies (see the
    /// `ablation_rate_contention` bench).
    ///
    /// # Panics
    ///
    /// Panics if the frequencies are non-positive or `copies` is zero.
    pub fn rate_speedup(&self, f_hz: f64, f_ref_hz: f64, copies: usize) -> f64 {
        assert!(f_hz > 0.0 && f_ref_hz > 0.0, "frequencies must be positive");
        assert!(copies >= 1, "rate mode needs at least one copy");
        let s = self.scalability;
        let stretch = 1.0 + RATE_CONTENTION_PER_COPY * (copies - 1) as f64;
        let ref_time = s + (1.0 - s) * stretch;
        let time = s * (f_ref_hz / f_hz) + (1.0 - s) * stretch;
        ref_time / time
    }

    /// The dynamic-capacitance profile this benchmark exercises per core.
    ///
    /// Compute-bound codes switch more logic per cycle; memory-bound codes
    /// spend cycles stalled. Calibration: `C_dyn = 0.95 + 0.65·s` nF,
    /// spanning the `core_memory_bound`..`core_typical`+ band.
    pub fn cdyn(&self) -> CdynProfile {
        CdynProfile::from_nf(0.95 + 0.65 * self.scalability)
            // Unreachable for the suite's calibrated factors (s ∈ [0, 1]);
            // an out-of-range hand-built entry falls back to typical.
            .unwrap_or_else(|_| CdynProfile::core_typical())
    }
}

/// Memory-bandwidth contention stretch per additional rate-mode copy
/// (fraction of the memory-bound time added per extra copy).
pub const RATE_CONTENTION_PER_COPY: f64 = 0.06;

/// The full 29-benchmark suite with calibrated scalability factors.
pub fn suite() -> Vec<SpecBenchmark> {
    fn b(name: &'static str, suite: SpecSuite, scalability: f64) -> SpecBenchmark {
        SpecBenchmark {
            name,
            suite,
            scalability,
        }
    }
    use SpecSuite::{Fp, Int};
    vec![
        // SPECint 2006 (12)
        b("400.perlbench", Int, 0.72),
        b("401.bzip2", Int, 0.65),
        b("403.gcc", Int, 0.58),
        b("429.mcf", Int, 0.22),
        b("445.gobmk", Int, 0.75),
        b("456.hmmer", Int, 0.83),
        b("458.sjeng", Int, 0.80),
        b("462.libquantum", Int, 0.12),
        b("464.h264ref", Int, 0.78),
        b("471.omnetpp", Int, 0.33),
        b("473.astar", Int, 0.48),
        b("483.xalancbmk", Int, 0.50),
        // SPECfp 2006 (17)
        b("410.bwaves", Fp, 0.06),
        b("416.gamess", Fp, 0.87),
        b("433.milc", Fp, 0.08),
        b("434.zeusmp", Fp, 0.50),
        b("435.gromacs", Fp, 0.76),
        b("436.cactusADM", Fp, 0.38),
        b("437.leslie3d", Fp, 0.25),
        b("444.namd", Fp, 0.86),
        b("447.dealII", Fp, 0.70),
        b("450.soplex", Fp, 0.40),
        b("453.povray", Fp, 0.85),
        b("454.calculix", Fp, 0.72),
        b("459.GemsFDTD", Fp, 0.18),
        b("465.tonto", Fp, 0.68),
        b("470.lbm", Fp, 0.10),
        b("481.wrf", Fp, 0.45),
        b("482.sphinx3", Fp, 0.55),
    ]
}

/// Looks up a benchmark by its official name.
pub fn by_name(name: &str) -> Option<SpecBenchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// The integer subset.
pub fn int_benchmarks() -> Vec<SpecBenchmark> {
    suite()
        .into_iter()
        .filter(|b| b.suite == SpecSuite::Int)
        .collect()
}

/// The floating-point subset.
pub fn fp_benchmarks() -> Vec<SpecBenchmark> {
    suite()
        .into_iter()
        .filter(|b| b.suite == SpecSuite::Fp)
        .collect()
}

/// Arithmetic-mean scalability of the whole suite.
pub fn mean_scalability() -> f64 {
    let s = suite();
    s.iter().map(|b| b.scalability).sum::<f64>() / s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_29_benchmarks_12_int_17_fp() {
        assert_eq!(suite().len(), 29);
        assert_eq!(int_benchmarks().len(), 12);
        assert_eq!(fp_benchmarks().len(), 17);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = suite().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn scalabilities_in_unit_interval() {
        for b in suite() {
            assert!(
                (0.0..=1.0).contains(&b.scalability),
                "{}: {}",
                b.name,
                b.scalability
            );
        }
    }

    #[test]
    fn mean_scalability_calibrated() {
        let m = mean_scalability();
        assert!((0.48..0.56).contains(&m), "mean scalability {m}");
    }

    #[test]
    fn paper_extremes_present() {
        // Fig. 7's extremes: gamess/namd highly scalable, bwaves/milc not.
        assert!(by_name("416.gamess").unwrap().scalability > 0.8);
        assert!(by_name("444.namd").unwrap().scalability > 0.8);
        assert!(by_name("410.bwaves").unwrap().scalability < 0.1);
        assert!(by_name("433.milc").unwrap().scalability < 0.1);
        assert!(by_name("no.such").is_none());
    }

    #[test]
    fn speedup_identity_at_equal_frequency() {
        for b in suite() {
            assert!((b.speedup(4.2e9, 4.2e9) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn speedup_linear_for_fully_scalable() {
        let b = SpecBenchmark {
            name: "synthetic",
            suite: SpecSuite::Int,
            scalability: 1.0,
        };
        assert!((b.speedup(4.62e9, 4.2e9) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn speedup_null_for_memory_bound() {
        let b = SpecBenchmark {
            name: "synthetic",
            suite: SpecSuite::Fp,
            scalability: 0.0,
        };
        assert!((b.speedup(5.0e9, 4.2e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_monotone_in_scalability() {
        let f = 4.6e9;
        let fr = 4.2e9;
        let sorted = {
            let mut v = suite();
            v.sort_by(|a, b| a.scalability.partial_cmp(&b.scalability).unwrap());
            v
        };
        for w in sorted.windows(2) {
            assert!(w[0].speedup(f, fr) <= w[1].speedup(f, fr));
        }
    }

    #[test]
    fn top_gain_matches_paper_band() {
        // At the paper's ~9.5% frequency uplift, the best benchmark gains
        // ~8% and the suite average ~4.6%.
        let f = 4.6e9;
        let fr = 4.2e9;
        let gains: Vec<f64> = suite().iter().map(|b| b.speedup(f, fr) - 1.0).collect();
        let max = gains.iter().cloned().fold(0.0, f64::max);
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!((0.070..0.090).contains(&max), "max gain {max}");
        assert!((0.040..0.055).contains(&mean), "mean gain {mean}");
    }

    #[test]
    fn rate_contention_dilutes_gains() {
        let b = by_name("403.gcc").unwrap();
        let f = 4.4e9;
        let fr = 4.0e9;
        let solo = b.rate_speedup(f, fr, 1);
        let four = b.rate_speedup(f, fr, 4);
        // One copy matches the uncontended model exactly.
        assert!((solo - b.speedup(f, fr)).abs() < 1e-12);
        // Contention dilutes the frequency gain.
        assert!(four < solo, "four-copy {four} vs solo {solo}");
        assert!(four > 1.0);
        // Fully scalable code is immune to memory contention.
        let cpu = SpecBenchmark {
            name: "synthetic",
            suite: SpecSuite::Int,
            scalability: 1.0,
        };
        assert!((cpu.rate_speedup(f, fr, 4) - f / fr).abs() < 1e-12);
        // Identity at equal frequencies regardless of copies.
        assert!((b.rate_speedup(fr, fr, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdyn_tracks_scalability() {
        let hot = by_name("416.gamess").unwrap().cdyn();
        let cold = by_name("410.bwaves").unwrap().cdyn();
        assert!(hot.as_nf() > cold.as_nf());
        assert!((0.9..1.7).contains(&hot.as_nf()));
    }

    #[test]
    fn mode_active_cores() {
        assert_eq!(SpecMode::Base.active_cores(4), 1);
        assert_eq!(SpecMode::Rate.active_cores(4), 4);
        assert_eq!(SpecMode::Base.label(), "base");
        assert_eq!(SpecMode::Rate.label(), "rate");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_panics() {
        by_name("444.namd").unwrap().speedup(0.0, 4.2e9);
    }
}

//! 3DMark-style graphics workloads.
//!
//! The paper's graphics evaluation (Sec. 7.2): performance is highly
//! scalable with the graphics-engine frequency; the PBM allocates 80–90 %
//! of the compute power budget to the graphics engine while one CPU core
//! runs the driver at the most efficient frequency Pn and the other cores
//! idle (power-gated on the baseline, leaking under DarkGates).

use dg_power::dynamic::CdynProfile;
use serde::{Deserialize, Serialize};

/// A graphics benchmark scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphicsWorkload {
    /// Scene name.
    pub name: &'static str,
    /// FPS scalability with graphics frequency (near 1 for GPU-bound
    /// scenes).
    pub gfx_scalability: f64,
    /// Fraction of the graphics engine's peak dynamic capacitance this
    /// scene exercises.
    pub gfx_intensity: f64,
    /// Number of CPU cores kept busy by the driver/game loop.
    pub driver_cores: usize,
}

impl GraphicsWorkload {
    /// Relative FPS at graphics frequency `f_hz` versus `f_ref_hz`.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is not strictly positive.
    pub fn fps_speedup(&self, f_hz: f64, f_ref_hz: f64) -> f64 {
        assert!(f_hz > 0.0 && f_ref_hz > 0.0, "frequencies must be positive");
        let s = self.gfx_scalability;
        1.0 / (s * (f_ref_hz / f_hz) + (1.0 - s))
    }

    /// Graphics-engine dynamic capacitance exercised by this scene.
    pub fn gfx_cdyn(&self) -> CdynProfile {
        CdynProfile::graphics_full().scaled(self.gfx_intensity)
    }

    /// CPU-side dynamic capacitance of the driver core(s): light, mostly
    /// submission work.
    pub fn driver_cdyn(&self) -> CdynProfile {
        // The constant is valid, so the fallback is unreachable.
        CdynProfile::from_nf(1.1).unwrap_or_else(|_| CdynProfile::core_typical())
    }
}

/// The 3DMark-style scene list used in the evaluation.
pub fn three_dmark_suite() -> Vec<GraphicsWorkload> {
    vec![
        GraphicsWorkload {
            name: "3DMark Ice Storm",
            gfx_scalability: 0.90,
            gfx_intensity: 0.80,
            driver_cores: 1,
        },
        GraphicsWorkload {
            name: "3DMark Cloud Gate",
            gfx_scalability: 0.93,
            gfx_intensity: 0.90,
            driver_cores: 1,
        },
        GraphicsWorkload {
            name: "3DMark Sky Diver",
            gfx_scalability: 0.95,
            gfx_intensity: 0.95,
            driver_cores: 1,
        },
        GraphicsWorkload {
            name: "3DMark Fire Strike",
            gfx_scalability: 0.97,
            gfx_intensity: 1.00,
            driver_cores: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_with_unique_names() {
        let s = three_dmark_suite();
        assert!(s.len() >= 4);
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn scenes_are_gpu_bound() {
        for w in three_dmark_suite() {
            assert!(
                w.gfx_scalability >= 0.9,
                "{}: {}",
                w.name,
                w.gfx_scalability
            );
            assert_eq!(w.driver_cores, 1);
        }
    }

    #[test]
    fn fps_speedup_tracks_gfx_frequency() {
        let w = &three_dmark_suite()[3]; // Fire Strike, s = 0.97
        let up = w.fps_speedup(1.15e9, 1.0e9);
        assert!(up > 1.12, "speedup {up}");
        assert!((w.fps_speedup(1.0e9, 1.0e9) - 1.0).abs() < 1e-12);
        // Lower frequency means fewer FPS.
        assert!(w.fps_speedup(0.9e9, 1.0e9) < 1.0);
    }

    #[test]
    fn gfx_cdyn_scales_with_intensity() {
        let s = three_dmark_suite();
        let light = s[0].gfx_cdyn();
        let heavy = s[3].gfx_cdyn();
        assert!(heavy.as_nf() > light.as_nf());
        // Fire Strike exercises the full graphics Cdyn.
        assert!((heavy.as_nf() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn driver_core_is_light() {
        let w = &three_dmark_suite()[0];
        assert!(w.driver_cdyn().as_nf() < 1.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_panics() {
        three_dmark_suite()[0].fps_speedup(1.0e9, 0.0);
    }
}

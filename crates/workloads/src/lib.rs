//! # dg-workloads — workload models for client-processor evaluation
//!
//! The three workload classes the DarkGates paper evaluates (Sec. 6):
//!
//! * [`spec`] — a SPEC CPU2006-style suite: all 29 benchmarks by name, each
//!   with a calibrated *frequency-scalability* factor (how much of its
//!   runtime scales with core clock vs. being pinned by memory), in `base`
//!   (single-core) and `rate` (all-cores) modes.
//! * [`graphics`] — 3DMark-style graphics workloads: graphics-engine-bound,
//!   one CPU core running the driver at the efficient frequency Pn.
//! * [`energy`] — energy-efficiency workloads: ENERGY STAR mode-weighted
//!   traces and the Intel Ready Mode Technology (RMT) ~99 %-idle trace.
//!
//! [`synth`] adds a seeded random workload generator for stress tests.
//!
//! ## Quick example
//!
//! ```
//! use dg_workloads::spec::{suite, SpecMode};
//!
//! let all = suite();
//! assert_eq!(all.len(), 29);
//! let namd = all.iter().find(|b| b.name == "444.namd").unwrap();
//! // Highly scalable: a 10% frequency gain yields nearly 9% speedup.
//! let gain = namd.speedup(4.62e9, 4.2e9) - 1.0;
//! assert!(gain > 0.07);
//! assert_eq!(SpecMode::Base.active_cores(4), 1);
//! ```

pub mod cpi;
pub mod energy;
pub mod graphics;
pub mod spec;
pub mod synth;
pub mod trace;

pub use cpi::{suite_cpi_models, CpiModel};
pub use energy::{
    energy_star, ready_mode, video_conferencing, web_browsing, EnergyWorkload, Phase, PhaseKind,
};
pub use graphics::{three_dmark_suite, GraphicsWorkload};
pub use spec::{suite, SpecBenchmark, SpecMode, SpecSuite};
pub use synth::SyntheticWorkloadGen;
pub use trace::{bursty, rmt_trace, video_playback, PhaseTrace, TracePhase, TracePhaseKind};

//! Idle governor: package C-state selection with idle-duration prediction
//! and demotion.
//!
//! The OS/firmware does not know how long an idle period will last, so it
//! predicts from recent history (an EWMA, like menu-governor-style
//! policies) and picks the deepest state whose break-even time fits the
//! prediction *and* whose exit latency fits the platform's wake-latency
//! budget. Repeated mispredictions demote to shallower states.

use crate::latency::{break_even_time, LatencyTable};
use crate::power::{GatingConfig, IdlePowerModel};
use crate::states::PackageCstate;
use dg_power::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// EWMA weight given to the newest observation.
const EWMA_ALPHA: f64 = 0.35;

/// Consecutive overestimates before the governor demotes by one state.
const DEMOTION_THRESHOLD: u32 = 2;

/// An idle-duration predictor (EWMA with misprediction tracking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdlePredictor {
    estimate: f64,
    overestimates: u32,
}

impl IdlePredictor {
    /// Starts with an optimistic 1 ms estimate.
    pub fn new() -> Self {
        IdlePredictor {
            estimate: 1e-3,
            overestimates: 0,
        }
    }

    /// The current prediction.
    pub fn predict(&self) -> Seconds {
        Seconds::new(self.estimate)
    }

    /// Records an observed idle duration.
    pub fn record(&mut self, actual: Seconds) {
        let a = actual.value().max(0.0);
        if self.estimate > 2.0 * a {
            self.overestimates += 1;
        } else {
            self.overestimates = 0;
        }
        self.estimate = EWMA_ALPHA * a + (1.0 - EWMA_ALPHA) * self.estimate;
    }

    /// Consecutive gross overestimates (drives demotion).
    pub fn overestimates(&self) -> u32 {
        self.overestimates
    }
}

impl Default for IdlePredictor {
    fn default() -> Self {
        IdlePredictor::new()
    }
}

/// Per-state residency/selection statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Idle entries per package state index (into [`PackageCstate::ALL`]).
    pub selections: [u64; 8],
    /// Demotions applied due to repeated overestimation.
    pub demotions: u64,
}

/// The idle governor.
///
/// # Examples
///
/// ```
/// use dg_cstates::governor::IdleGovernor;
/// use dg_cstates::power::GatingConfig;
/// use dg_cstates::states::PackageCstate;
/// use dg_power::units::Seconds;
///
/// let mut governor = IdleGovernor::new(
///     GatingConfig::skylake(true, 4),
///     PackageCstate::C8,
///     Seconds::from_ms(2.0),
/// );
/// // A long predicted idle selects the deepest supported state.
/// assert_eq!(governor.select_for(Seconds::new(1.0)), PackageCstate::C8);
/// // Feed back the observed duration to train the predictor.
/// governor.record_idle(Seconds::from_ms(500.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleGovernor {
    latency: LatencyTable,
    model: IdlePowerModel,
    config: GatingConfig,
    deepest: PackageCstate,
    /// Wake-latency (QoS) budget: states with longer exit latency are
    /// never selected.
    pub wake_budget: Seconds,
    predictor: IdlePredictor,
    stats: GovernorStats,
}

impl IdleGovernor {
    /// Creates a governor for a platform.
    pub fn new(config: GatingConfig, deepest: PackageCstate, wake_budget: Seconds) -> Self {
        IdleGovernor {
            latency: LatencyTable::skylake(),
            model: IdlePowerModel::new(),
            config,
            deepest,
            wake_budget,
            predictor: IdlePredictor::new(),
            stats: GovernorStats::default(),
        }
    }

    /// The predictor state.
    pub fn predictor(&self) -> &IdlePredictor {
        &self.predictor
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &GovernorStats {
        &self.stats
    }

    /// Picks a package state for the next idle period and records the
    /// selection.
    ///
    /// On gated platforms this is the classic break-even policy with
    /// misprediction demotion. On bypassed (DarkGates) platforms the
    /// shallow states barely save power — the un-gateable cores leak at
    /// the idle VID in everything shallower than C8 — so the governor
    /// switches to direct expected-energy minimization, which is markedly
    /// more C8-aggressive (see the `ablations` bench).
    pub fn select(&mut self) -> PackageCstate {
        let predicted = self.predictor.predict();
        let mut best = if self.config.bypassed {
            self.select_energy_optimal(predicted)
        } else {
            self.select_for(predicted)
        };
        // Demotion: repeated overestimates pull one state shallower
        // (gated platforms only — on bypassed platforms the shallower
        // states cost more than a wasted C8 transition).
        if !self.config.bypassed
            && self.predictor.overestimates() >= DEMOTION_THRESHOLD
            && best > PackageCstate::C2
        {
            // `ALL` lists every variant, so the position is always found.
            let idx = PackageCstate::ALL
                .iter()
                .position(|s| *s == best)
                .unwrap_or(0);
            // `best > C2` above guarantees idx ≥ 1.
            if let Some(&shallower) = PackageCstate::ALL.get(idx.saturating_sub(1)) {
                best = shallower;
                self.stats.demotions += 1;
            }
        }
        let idx = PackageCstate::ALL
            .iter()
            .position(|s| *s == best)
            .unwrap_or(0);
        self.stats.selections[idx] += 1;
        best
    }

    /// Expected energy (joules) of spending `duration` idle in `state`,
    /// charging the round-trip transition at shallow-state power.
    pub fn expected_energy(&self, state: PackageCstate, duration: Seconds) -> f64 {
        let p = self.model.package_idle_power(state, &self.config).value();
        let shallow = self
            .model
            .package_idle_power(PackageCstate::C2, &self.config)
            .value();
        let overhead = self.latency.round_trip(state).value();
        let resident = (duration.value() - overhead).max(0.0);
        p * resident + shallow * overhead.min(duration.value())
    }

    /// Energy-optimal selection: the allowed state minimizing
    /// [`expected_energy`] for the predicted duration.
    ///
    /// [`expected_energy`]: IdleGovernor::expected_energy
    pub fn select_energy_optimal(&self, predicted: Seconds) -> PackageCstate {
        let mut best = PackageCstate::C2;
        let mut best_energy = self.expected_energy(best, predicted);
        for state in PackageCstate::ALL.into_iter().skip(2) {
            if state > self.deepest {
                break;
            }
            if self.latency.exit(state) > self.wake_budget {
                break;
            }
            let e = self.expected_energy(state, predicted);
            if e < best_energy {
                best = state;
                best_energy = e;
            }
        }
        best
    }

    /// Pure selection for a given predicted idle duration (no statistics).
    pub fn select_for(&self, predicted: Seconds) -> PackageCstate {
        let shallow = self
            .model
            .package_idle_power(PackageCstate::C2, &self.config);
        let mut best = PackageCstate::C2;
        for state in PackageCstate::ALL.into_iter().skip(2) {
            if state > self.deepest {
                break;
            }
            if self.latency.exit(state) > self.wake_budget {
                break;
            }
            let deep = self.model.package_idle_power(state, &self.config);
            if let Some(be) = break_even_time(&self.latency, shallow, deep, state) {
                if be <= predicted {
                    best = state;
                }
            }
        }
        best
    }

    /// Reports the actual idle duration once the period ends.
    pub fn record_idle(&mut self, actual: Seconds) {
        self.predictor.record(actual);
    }

    /// Average idle power the governor would achieve for a fixed idle
    /// duration distribution sample (utility for evaluation): selects for
    /// each duration, charges transition losses, returns the mean power.
    pub fn evaluate(&mut self, idle_durations: &[Seconds]) -> Watts {
        if idle_durations.is_empty() {
            return Watts::ZERO;
        }
        let mut energy = 0.0;
        let mut time = 0.0;
        for &dur in idle_durations {
            let state = self.select();
            let p = self.model.package_idle_power(state, &self.config);
            let overhead = self.latency.round_trip(state).value();
            // Transition time burns shallow-state power.
            let shallow = self
                .model
                .package_idle_power(PackageCstate::C2, &self.config)
                .value();
            let resident = (dur.value() - overhead).max(0.0);
            energy += p.value() * resident + shallow * overhead.min(dur.value());
            time += dur.value();
            self.record_idle(dur);
        }
        Watts::new(energy / time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(bypassed: bool, deepest: PackageCstate) -> IdleGovernor {
        IdleGovernor::new(
            GatingConfig::skylake(bypassed, 4),
            deepest,
            Seconds::from_ms(1.0),
        )
    }

    #[test]
    fn long_predictions_pick_deep_states() {
        let g = governor(true, PackageCstate::C8);
        assert_eq!(g.select_for(Seconds::new(1.0)), PackageCstate::C8);
    }

    #[test]
    fn short_predictions_stay_shallow() {
        let g = governor(true, PackageCstate::C8);
        let s = g.select_for(Seconds::from_us(50.0));
        assert!(s <= PackageCstate::C3, "picked {s}");
    }

    #[test]
    fn platform_ceiling_respected() {
        let g = governor(false, PackageCstate::C7);
        assert!(g.select_for(Seconds::new(10.0)) <= PackageCstate::C7);
    }

    #[test]
    fn wake_budget_blocks_slow_states() {
        let mut g = governor(true, PackageCstate::C10);
        g.wake_budget = Seconds::from_us(150.0);
        // C8's 200 µs exit exceeds the budget.
        assert!(g.select_for(Seconds::new(10.0)) <= PackageCstate::C7);
    }

    #[test]
    fn predictor_converges_to_observations() {
        let mut p = IdlePredictor::new();
        for _ in 0..50 {
            p.record(Seconds::new(0.010));
        }
        assert!((p.predict().value() - 0.010).abs() < 0.002);
    }

    #[test]
    fn repeated_overestimates_trigger_demotion() {
        // Demotion applies on gated platforms (bypassed platforms use the
        // energy-optimal policy instead).
        let mut g = governor(false, PackageCstate::C7);
        // Train the predictor long, then feed short idles.
        for _ in 0..10 {
            g.record_idle(Seconds::new(1.0));
        }
        for _ in 0..3 {
            g.record_idle(Seconds::from_us(10.0));
        }
        assert!(g.predictor().overestimates() >= DEMOTION_THRESHOLD);
        let before = g.stats().demotions;
        let s = g.select();
        assert!(g.stats().demotions > before);
        assert!(s < PackageCstate::C7);
    }

    #[test]
    fn bypassed_governor_is_c8_aggressive() {
        // Even for idles below C8's classic break-even time, the
        // energy-optimal policy goes deep (C7+) on a bypassed package,
        // because every shallower state leaks through the un-gated cores;
        // from 1 ms up it commits to C8 outright.
        let g = governor(true, PackageCstate::C8);
        assert!(g.select_energy_optimal(Seconds::from_us(400.0)) >= PackageCstate::C7);
        assert_eq!(
            g.select_energy_optimal(Seconds::from_ms(1.0)),
            PackageCstate::C8
        );
        // On a gated package the same prediction stops short of C8 (its
        // break-even is not met and C7 already removed the core leakage).
        let gg = governor(false, PackageCstate::C8);
        assert!(gg.select_for(Seconds::from_us(400.0)) < PackageCstate::C8);
    }

    #[test]
    fn energy_optimal_matches_always_c8_on_mixed_trace() {
        // The ablation scenario: the adaptive bypassed governor should be
        // within a few percent of the always-C8 static policy.
        let mixed: Vec<Seconds> = (0..60)
            .map(|i| {
                if i % 10 == 0 {
                    Seconds::new(0.8)
                } else {
                    Seconds::from_us(400.0)
                }
            })
            .collect();
        let adaptive = governor(true, PackageCstate::C8).evaluate(&mixed).value();
        // Static always-C8 on the same trace.
        let g = governor(true, PackageCstate::C8);
        let static_c8: f64 = mixed
            .iter()
            .map(|d| g.expected_energy(PackageCstate::C8, *d))
            .sum::<f64>()
            / mixed.iter().map(|d| d.value()).sum::<f64>();
        assert!(
            adaptive <= static_c8 * 1.10,
            "adaptive {adaptive} vs always-C8 {static_c8}"
        );
    }

    #[test]
    fn evaluate_prefers_deep_for_long_idles() {
        let long: Vec<Seconds> = (0..20).map(|_| Seconds::new(0.5)).collect();
        let short: Vec<Seconds> = (0..20).map(|_| Seconds::from_us(200.0)).collect();
        let p_long = governor(true, PackageCstate::C8).evaluate(&long);
        let p_short = governor(true, PackageCstate::C8).evaluate(&short);
        assert!(p_long < p_short, "long {p_long} vs short {p_short}");
        // Long idles on a DarkGates platform land near the C8 floor.
        assert!(p_long.value() < 0.6, "long-idle power {p_long}");
    }

    #[test]
    fn selection_statistics_accumulate() {
        let mut g = governor(true, PackageCstate::C8);
        for _ in 0..5 {
            g.select();
            g.record_idle(Seconds::new(1.0));
        }
        let total: u64 = g.stats().selections.iter().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_evaluation_is_zero() {
        assert_eq!(governor(true, PackageCstate::C8).evaluate(&[]), Watts::ZERO);
    }
}

//! # dg-cstates — idle power states (C-states)
//!
//! Implements the ACPI-style idle-power-state machinery of the DarkGates
//! paper (Sec. 2.1, Table 1): component C-states for threads/cores
//! (CC0–CC7) and graphics (RC0/RC6), the *package* C-state resolution logic
//! that maps a platform's component states onto C0–C10, per-state power
//! models (including the DarkGates un-gated-leakage adjustment that makes
//! package C7 >3× more expensive when power-gates are bypassed), entry/exit
//! latencies with break-even analysis, and residency accounting.
//!
//! ## Quick example
//!
//! ```
//! use dg_cstates::states::{CoreCstate, GraphicsCstate, MemoryState, PackageCstate};
//! use dg_cstates::resolve::{PlatformInputs, resolve};
//!
//! // All cores power-gated, graphics in RC6, DRAM in self-refresh, LLC
//! // flushed, desktop platform that supports up to C8 (the DarkGates
//! // extension):
//! let inputs = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
//!     .graphics(GraphicsCstate::Rc6)
//!     .memory(MemoryState::SelfRefresh)
//!     .llc_flushed(true)
//!     .deepest_allowed(PackageCstate::C8);
//! assert_eq!(resolve(&inputs), PackageCstate::C8);
//! ```

pub mod governor;
pub mod latency;
pub mod power;
pub mod residency;
pub mod resolve;
pub mod states;

pub use governor::{GovernorStats, IdleGovernor, IdlePredictor};
pub use latency::{break_even_time, LatencyTable};
pub use power::{GatingConfig, IdlePowerModel};
pub use residency::ResidencyTracker;
pub use resolve::{resolve, PlatformInputs};
pub use states::{
    core_state_from_threads, CoreCstate, DisplayState, GraphicsCstate, MemoryState, PackageCstate,
    ThreadCstate,
};

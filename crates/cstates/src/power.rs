//! Per-package-C-state power model, with the DarkGates leakage adjustment.
//!
//! The decisive interaction of Sec. 4.3: in package C7 the core VR is still
//! on, so a DarkGates (bypassed) package leaks through every un-gateable
//! core, making C7 >3× more expensive than on the baseline gated package.
//! Package C8 turns the core VR off, recovering the loss — which is why
//! DarkGates desktops must support C8.
//!
//! Calibration constants are exposed so experiments (and the Fig. 10
//! harness) can perturb them.

use crate::states::PackageCstate;
use dg_power::leakage::LeakageModel;
use dg_power::units::{Celsius, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Uncore + IO + DRAM-refresh power at each package state, in watts.
///
/// C0 is the uncore's *idle floor* while the package is active; compute
/// power (cores, graphics) comes from the performance simulator on top.
pub const UNCORE_POWER_W: [(PackageCstate, f64); 8] = [
    (PackageCstate::C0, 3.00),
    (PackageCstate::C2, 2.00),
    (PackageCstate::C3, 1.20),
    (PackageCstate::C6, 0.60),
    (PackageCstate::C7, 0.45),
    (PackageCstate::C8, 0.445),
    (PackageCstate::C9, 0.25),
    (PackageCstate::C10, 0.10),
];

/// Standby overhead of the core VR while it is on (watts).
pub const CORE_VR_ON_OVERHEAD_W: f64 = 0.02;

/// Residual leakage of a power-gated core (watts per core): the gate's
/// off-state leakage.
pub const GATED_CORE_RESIDUAL_W: f64 = 0.002;

/// The idle VID the core VR parks at while the package idles with the VR on.
pub const IDLE_VID: Volts = Volts::new(0.85);

/// Junction temperature while the package idles deeply.
pub const IDLE_TEMP: Celsius = Celsius::new(35.0);

/// Supply voltage seen by idle (but un-gated) cores while the package is
/// active and another core or the graphics engine is running.
pub const ACTIVE_IDLE_VID: Volts = Volts::new(1.00);

/// Junction temperature of idle cores while the package is active.
pub const ACTIVE_IDLE_TEMP: Celsius = Celsius::new(75.0);

/// Whether the package can actually power-gate its cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingConfig {
    /// `true` for a DarkGates (bypassed) package: gates cannot cut power.
    pub bypassed: bool,
    /// Number of CPU cores on the die.
    pub core_count: usize,
    /// Per-core leakage model.
    pub core_leakage: LeakageModel,
}

impl GatingConfig {
    /// A 4-core Skylake-class package.
    ///
    /// # Panics
    ///
    /// Panics if `core_count` is zero.
    pub fn skylake(bypassed: bool, core_count: usize) -> Self {
        assert!(core_count > 0, "need at least one core");
        GatingConfig {
            bypassed,
            core_count,
            core_leakage: LeakageModel::skylake_core(),
        }
    }

    /// Leakage of one idle, *un-gateable* core at the given operating point.
    fn ungated_core_leak(&self, v: Volts, t: Celsius) -> Watts {
        self.core_leakage.power(v, t)
    }
}

/// The calibrated idle power model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IdlePowerModel;

impl IdlePowerModel {
    /// Creates the model.
    pub fn new() -> Self {
        IdlePowerModel
    }

    /// Uncore + IO + DRAM power at `state`.
    pub fn uncore_power(&self, state: PackageCstate) -> Watts {
        let w = UNCORE_POWER_W
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, w)| *w)
            // Unreachable: the constant table covers every package state
            // (a test checks the covering).
            .unwrap_or(0.0);
        Watts::new(w)
    }

    /// Idle power of the CPU cores at package `state`.
    ///
    /// * VR off (C8+): zero regardless of gating.
    /// * VR on, gated package: per-core residual gate leakage.
    /// * VR on, bypassed package: full leakage at the idle VID — the
    ///   DarkGates penalty.
    pub fn cores_idle_power(&self, state: PackageCstate, config: &GatingConfig) -> Watts {
        if state.core_vr_off() {
            return Watts::ZERO;
        }
        let per_core = if config.bypassed {
            config.ungated_core_leak(IDLE_VID, IDLE_TEMP)
        } else {
            Watts::new(GATED_CORE_RESIDUAL_W)
        };
        per_core * config.core_count as f64
    }

    /// Total package power while *fully idle* at package `state`
    /// (uncore + VR overhead + idle-core leakage). Not meaningful for C0.
    pub fn package_idle_power(&self, state: PackageCstate, config: &GatingConfig) -> Watts {
        let vr = if state.core_vr_off() {
            Watts::ZERO
        } else {
            Watts::new(CORE_VR_ON_OVERHEAD_W)
        };
        self.uncore_power(state) + vr + self.cores_idle_power(state, config)
    }

    /// Extra leakage charged while the package is *active* (C0) for
    /// `idle_cores` cores that sit idle at the active rail voltage.
    ///
    /// On a gated package the idle cores are power-gated and this is the
    /// tiny residual; on a bypassed package they leak at full tilt — the
    /// power the PBM must deduct from the compute budget (Sec. 4.2).
    pub fn active_idle_core_leakage(&self, idle_cores: usize, config: &GatingConfig) -> Watts {
        let per_core = if config.bypassed {
            config.ungated_core_leak(ACTIVE_IDLE_VID, ACTIVE_IDLE_TEMP)
        } else {
            Watts::new(GATED_CORE_RESIDUAL_W)
        };
        per_core * idle_cores as f64
    }

    /// Platform power during an active (C0) phase: the workload's own power
    /// plus the idle-core leakage adder.
    pub fn active_package_power(
        &self,
        workload_power: Watts,
        idle_cores: usize,
        config: &GatingConfig,
    ) -> Watts {
        workload_power + self.active_idle_core_leakage(idle_cores, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IdlePowerModel {
        IdlePowerModel::new()
    }

    #[test]
    fn uncore_table_covers_every_package_state() {
        // Backs the unreachable-fallback in `uncore_power`.
        use crate::states::PackageCstate;
        for state in PackageCstate::ALL {
            assert!(
                UNCORE_POWER_W.iter().any(|(s, _)| *s == state),
                "{state:?} missing from UNCORE_POWER_W"
            );
        }
    }

    #[test]
    fn uncore_power_monotone_decreasing_with_depth() {
        let m = model();
        for w in PackageCstate::ALL.windows(2) {
            assert!(
                m.uncore_power(w[1]) <= m.uncore_power(w[0]),
                "{} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn c8_zeroes_core_power_for_both_configs() {
        let m = model();
        for bypassed in [false, true] {
            let cfg = GatingConfig::skylake(bypassed, 4);
            assert_eq!(m.cores_idle_power(PackageCstate::C8, &cfg), Watts::ZERO);
            assert_eq!(m.cores_idle_power(PackageCstate::C10, &cfg), Watts::ZERO);
        }
    }

    #[test]
    fn darkgates_c7_more_than_3x_baseline_c7() {
        // The Sec. 4.3 headline: bypassed package C7 power is >3× the gated
        // package's C7 power.
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        let p_gated = m.package_idle_power(PackageCstate::C7, &gated);
        let p_byp = m.package_idle_power(PackageCstate::C7, &bypassed);
        let ratio = p_byp / p_gated;
        assert!(
            ratio > 3.0,
            "C7 ratio {ratio} (gated {p_gated}, byp {p_byp})"
        );
    }

    #[test]
    fn darkgates_c8_recovers_the_leak() {
        let m = model();
        let bypassed = GatingConfig::skylake(true, 4);
        let p_c7 = m.package_idle_power(PackageCstate::C7, &bypassed);
        let p_c8 = m.package_idle_power(PackageCstate::C8, &bypassed);
        assert!(p_c8.value() < 0.4 * p_c7.value(), "C8 {p_c8} vs C7 {p_c7}");
    }

    #[test]
    fn darkgates_c8_close_to_baseline_c7() {
        // The Fig. 10 third observation hinges on idle C8 (bypassed) being
        // only slightly below idle C7 (gated).
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        let p_base_c7 = m.package_idle_power(PackageCstate::C7, &gated);
        let p_dg_c8 = m.package_idle_power(PackageCstate::C8, &bypassed);
        let diff = (p_base_c7 - p_dg_c8).abs();
        assert!(diff.value() < 0.06, "idle gap {diff} too wide");
    }

    #[test]
    fn active_idle_leakage_large_only_when_bypassed() {
        let m = model();
        let gated = GatingConfig::skylake(false, 4);
        let bypassed = GatingConfig::skylake(true, 4);
        let lg = m.active_idle_core_leakage(3, &gated);
        let lb = m.active_idle_core_leakage(3, &bypassed);
        assert!(lg.value() < 0.1, "gated idle leak {lg}");
        assert!(
            (2.5..5.0).contains(&lb.value()),
            "bypassed idle leak {lb} outside the calibrated band"
        );
        // It must exceed the C7→C8 idle gap by enough to flip Fig. 10's
        // third observation at 1% active residency.
        let p_base_c7 = m.package_idle_power(PackageCstate::C7, &gated);
        let p_dg_c8 = m.package_idle_power(PackageCstate::C8, &bypassed);
        assert!(0.01 * (lb - lg).value() > 0.99 * (p_base_c7 - p_dg_c8).value());
    }

    #[test]
    fn active_package_power_adds_leakage() {
        let m = model();
        let bypassed = GatingConfig::skylake(true, 4);
        let p = m.active_package_power(Watts::new(5.0), 3, &bypassed);
        assert!(p > Watts::new(7.5));
        let gated = GatingConfig::skylake(false, 4);
        let p2 = m.active_package_power(Watts::new(5.0), 3, &gated);
        let expected = 5.0 + 3.0 * GATED_CORE_RESIDUAL_W;
        assert!((p2.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn deeper_is_cheaper_when_fully_idle() {
        let m = model();
        for bypassed in [false, true] {
            let cfg = GatingConfig::skylake(bypassed, 4);
            // From C2 down, package power is non-increasing with depth.
            let idle_states = &PackageCstate::ALL[1..];
            for w in idle_states.windows(2) {
                let a = m.package_idle_power(w[0], &cfg);
                let b = m.package_idle_power(w[1], &cfg);
                assert!(b <= a, "bypassed={bypassed}: {} {a} -> {} {b}", w[0], w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_config_panics() {
        GatingConfig::skylake(true, 0);
    }
}

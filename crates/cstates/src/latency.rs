//! Package C-state entry/exit latencies and break-even analysis.
//!
//! Deeper states save more power but cost more to enter and leave; an idle
//! period only pays off if it exceeds the state's *break-even time*. The PMU
//! uses these numbers to demote requests for idle windows that are too
//! short.

use crate::states::PackageCstate;
use dg_power::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Entry/exit latencies for each package state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    entries: Vec<(PackageCstate, Seconds, Seconds)>,
}

impl LatencyTable {
    /// The calibrated Skylake-class table (microseconds): latencies grow
    /// roughly geometrically with depth; C8 costs about twice C7 because the
    /// core VR must ramp back up.
    pub fn skylake() -> Self {
        let us = Seconds::from_us;
        LatencyTable {
            entries: vec![
                (PackageCstate::C0, us(0.0), us(0.0)),
                (PackageCstate::C2, us(1.0), us(1.0)),
                (PackageCstate::C3, us(20.0), us(30.0)),
                (PackageCstate::C6, us(50.0), us(85.0)),
                (PackageCstate::C7, us(60.0), us(100.0)),
                (PackageCstate::C8, us(120.0), us(200.0)),
                (PackageCstate::C9, us(250.0), us(400.0)),
                (PackageCstate::C10, us(500.0), us(900.0)),
            ],
        }
    }

    /// Entry latency of `state`.
    pub fn entry(&self, state: PackageCstate) -> Seconds {
        self.lookup(state).1
    }

    /// Exit (wake) latency of `state`.
    pub fn exit(&self, state: PackageCstate) -> Seconds {
        self.lookup(state).2
    }

    /// Total transition overhead (entry + exit).
    pub fn round_trip(&self, state: PackageCstate) -> Seconds {
        self.entry(state) + self.exit(state)
    }

    /// The deepest state whose exit latency does not exceed `budget`
    /// (a wake-latency / QoS constraint).
    pub fn deepest_within_exit_budget(&self, budget: Seconds) -> PackageCstate {
        self.entries
            .iter()
            .rev()
            .find(|(_, _, exit)| *exit <= budget)
            .map(|(s, _, _)| *s)
            .unwrap_or(PackageCstate::C0)
    }

    fn lookup(&self, state: PackageCstate) -> (PackageCstate, Seconds, Seconds) {
        self.entries
            .iter()
            .find(|(s, _, _)| *s == state)
            .copied()
            // Unreachable: construction covers every package state.
            .unwrap_or((state, Seconds::ZERO, Seconds::ZERO))
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::skylake()
    }
}

/// Minimum idle duration for which entering `deep` beats staying in
/// `shallow`: the energy spent transitioning (approximated as the shallow
/// power held for the round-trip latency) must be recovered by the power
/// saving.
///
/// Returns `None` if `deep` does not actually save power.
pub fn break_even_time(
    table: &LatencyTable,
    shallow_power: Watts,
    deep_power: Watts,
    deep: PackageCstate,
) -> Option<Seconds> {
    let saving = shallow_power - deep_power;
    if saving.value() <= 0.0 {
        return None;
    }
    let transition_energy = shallow_power.value() * table.round_trip(deep).value();
    Some(Seconds::new(transition_energy / saving.value()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_grow_with_depth() {
        let t = LatencyTable::skylake();
        for w in PackageCstate::ALL.windows(2) {
            assert!(t.exit(w[1]) >= t.exit(w[0]), "{} -> {}", w[0], w[1]);
            assert!(t.entry(w[1]) >= t.entry(w[0]));
        }
    }

    #[test]
    fn c8_exit_costs_more_than_c7() {
        // The VR ramp makes C8 wake-up meaningfully slower (Sec. 4.3: C8 is
        // "deeper (lower power but with higher entry/exit latency)").
        let t = LatencyTable::skylake();
        assert!(t.exit(PackageCstate::C8) >= t.exit(PackageCstate::C7) * 1.5);
    }

    #[test]
    fn round_trip_is_sum() {
        let t = LatencyTable::skylake();
        let s = PackageCstate::C6;
        assert_eq!(t.round_trip(s), t.entry(s) + t.exit(s));
    }

    #[test]
    fn exit_budget_selects_deepest_fitting_state() {
        let t = LatencyTable::skylake();
        assert_eq!(
            t.deepest_within_exit_budget(Seconds::from_us(150.0)),
            PackageCstate::C7
        );
        assert_eq!(
            t.deepest_within_exit_budget(Seconds::from_us(250.0)),
            PackageCstate::C8
        );
        assert_eq!(
            t.deepest_within_exit_budget(Seconds::from_us(0.5)),
            PackageCstate::C0
        );
        assert_eq!(
            t.deepest_within_exit_budget(Seconds::new(1.0)),
            PackageCstate::C10
        );
    }

    #[test]
    fn break_even_positive_and_sensible() {
        let t = LatencyTable::skylake();
        let be = break_even_time(&t, Watts::new(1.5), Watts::new(0.45), PackageCstate::C8).unwrap();
        // 1.5 W × 320 µs / 1.05 W ≈ 457 µs.
        assert!((be.value() - 457e-6).abs() < 10e-6, "break-even {be}");
    }

    #[test]
    fn no_break_even_when_deep_not_cheaper() {
        let t = LatencyTable::skylake();
        assert!(break_even_time(&t, Watts::new(0.4), Watts::new(0.5), PackageCstate::C8).is_none());
        assert!(break_even_time(&t, Watts::new(0.4), Watts::new(0.4), PackageCstate::C8).is_none());
    }

    #[test]
    fn deeper_states_have_longer_break_even() {
        let t = LatencyTable::skylake();
        // Same power saving, deeper state ⇒ longer break-even.
        let be7 = break_even_time(&t, Watts::new(1.0), Watts::new(0.5), PackageCstate::C7).unwrap();
        let be8 = break_even_time(&t, Watts::new(1.0), Watts::new(0.5), PackageCstate::C8).unwrap();
        assert!(be8 > be7);
    }
}

//! C-state enumerations: core, graphics, package, and platform component
//! states.
//!
//! Deeper states are "greater" in the derived ordering, so
//! `CoreCstate::Cc6 > CoreCstate::Cc0` and `PackageCstate::C8 >
//! PackageCstate::C7`. The package states and their entry conditions mirror
//! Table 1 of the paper (Intel Skylake).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hardware-thread C-states (TCi) — the finest level of Table 1.
///
/// With SMT, each hardware thread requests its own idle state; the core's
/// state is bound by its *shallowest* thread (a core can only clock-gate
/// once both threads have).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum ThreadCstate {
    /// Executing instructions.
    #[default]
    Tc0,
    /// Halted (MWAIT shallow).
    Tc1,
    /// Requesting clocks off.
    Tc3,
    /// Requesting power-gating.
    Tc6,
}

impl ThreadCstate {
    /// All states, shallowest first.
    pub const ALL: [ThreadCstate; 4] = [
        ThreadCstate::Tc0,
        ThreadCstate::Tc1,
        ThreadCstate::Tc3,
        ThreadCstate::Tc6,
    ];

    /// The deepest core state this thread request maps to.
    pub fn core_equivalent(self) -> CoreCstate {
        match self {
            ThreadCstate::Tc0 => CoreCstate::Cc0,
            ThreadCstate::Tc1 => CoreCstate::Cc1,
            ThreadCstate::Tc3 => CoreCstate::Cc3,
            ThreadCstate::Tc6 => CoreCstate::Cc6,
        }
    }
}

impl fmt::Display for ThreadCstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadCstate::Tc0 => "TC0",
            ThreadCstate::Tc1 => "TC1",
            ThreadCstate::Tc3 => "TC3",
            ThreadCstate::Tc6 => "TC6",
        })
    }
}

/// Resolves a core's C-state from its hardware threads' requests: the
/// shallowest thread binds. An empty thread list resolves to `Tc0`'s
/// equivalent (the conservative answer: the core stays active).
pub fn core_state_from_threads(threads: &[ThreadCstate]) -> CoreCstate {
    threads
        .iter()
        .copied()
        .min()
        .unwrap_or(ThreadCstate::Tc0)
        .core_equivalent()
}

/// CPU-core component C-states (CCi).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum CoreCstate {
    /// Executing instructions.
    #[default]
    Cc0,
    /// Halted; clocks on, state retained.
    Cc1,
    /// Clocks off.
    Cc3,
    /// Power-gated (state saved to the LLC).
    Cc6,
    /// Power-gated, deeper uncore coordination.
    Cc7,
}

impl CoreCstate {
    /// All states, shallowest first.
    pub const ALL: [CoreCstate; 5] = [
        CoreCstate::Cc0,
        CoreCstate::Cc1,
        CoreCstate::Cc3,
        CoreCstate::Cc6,
        CoreCstate::Cc7,
    ];

    /// `true` when the core is executing instructions.
    pub fn is_executing(self) -> bool {
        self == CoreCstate::Cc0
    }

    /// `true` when the core's clocks are off (CC3 or deeper).
    pub fn clocks_off(self) -> bool {
        self >= CoreCstate::Cc3
    }

    /// `true` when the core's power-gate is closed (CC6 or deeper).
    ///
    /// In a DarkGates (bypassed) package the gate cannot actually cut the
    /// supply — the *request* is still tracked, but the leakage saving does
    /// not materialize (see [`crate::power::IdlePowerModel`]).
    pub fn power_gated(self) -> bool {
        self >= CoreCstate::Cc6
    }
}

impl fmt::Display for CoreCstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreCstate::Cc0 => "CC0",
            CoreCstate::Cc1 => "CC1",
            CoreCstate::Cc3 => "CC3",
            CoreCstate::Cc6 => "CC6",
            CoreCstate::Cc7 => "CC7",
        };
        f.write_str(s)
    }
}

/// Graphics-engine component C-states (RCi).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum GraphicsCstate {
    /// Rendering.
    #[default]
    Rc0,
    /// Power-gated.
    Rc6,
}

impl GraphicsCstate {
    /// `true` when the engine is rendering.
    pub fn is_active(self) -> bool {
        self == GraphicsCstate::Rc0
    }
}

impl fmt::Display for GraphicsCstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphicsCstate::Rc0 => "RC0",
            GraphicsCstate::Rc6 => "RC6",
        })
    }
}

/// Display-pipeline state, which gates the deepest package states.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum DisplayState {
    /// Actively scanned out by the display controller.
    #[default]
    On,
    /// Panel self-refresh (PSR): panel refreshes itself, SoC display off.
    SelfRefresh,
    /// Display off.
    Off,
}

/// External-memory (DRAM) state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum MemoryState {
    /// DRAM actively serving requests.
    #[default]
    Active,
    /// DRAM in self-refresh.
    SelfRefresh,
}

/// Package (system-level) C-states of the Intel Skylake architecture
/// (paper Table 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PackageCstate {
    /// One or more cores or the graphics engine executing.
    #[default]
    C0,
    /// All cores ≥ CC3, graphics in RC6, DRAM active.
    C2,
    /// As C2 with DRAM in self-refresh; LLC may be flushed; most IO/memory
    /// clocks gated.
    C3,
    /// All cores ≥ CC6 (power-gated), graphics RC6; IO/memory clock
    /// generators off.
    C6,
    /// As C6 with some IO/memory voltages gated; **CPU core VR is ON**.
    C7,
    /// As C7 with additional IO/memory gating; **CPU core VR is OFF**.
    /// The DarkGates extension enables this state on desktops (Sec. 4.3).
    C8,
    /// As C8 with all IPs off; most VR voltages reduced; display may be in
    /// panel self-refresh.
    C9,
    /// As C9 with all SoC VRs (except the always-on rail) off; display off.
    C10,
}

impl PackageCstate {
    /// All states, shallowest first.
    pub const ALL: [PackageCstate; 8] = [
        PackageCstate::C0,
        PackageCstate::C2,
        PackageCstate::C3,
        PackageCstate::C6,
        PackageCstate::C7,
        PackageCstate::C8,
        PackageCstate::C9,
        PackageCstate::C10,
    ];

    /// `true` when at least one compute engine is executing.
    pub fn is_active(self) -> bool {
        self == PackageCstate::C0
    }

    /// `true` when the CPU cores' voltage regulator is off in this state
    /// (C8 and deeper; paper Table 1).
    pub fn core_vr_off(self) -> bool {
        self >= PackageCstate::C8
    }

    /// The paper's Table 1 entry-condition summary for this state.
    pub fn entry_conditions(self) -> &'static str {
        match self {
            PackageCstate::C0 => "one or more cores or graphics engine executing instructions",
            PackageCstate::C2 => {
                "all cores in CC3 (clocks off) or deeper and graphics in RC6; DRAM active"
            }
            PackageCstate::C3 => {
                "all cores in CC3 or deeper and graphics in RC6; LLC may be flushed; \
                 DRAM in self-refresh; most IO/memory clocks gated"
            }
            PackageCstate::C6 => {
                "all cores in CC6 (power-gated) or deeper and graphics in RC6; \
                 IO/memory clock generators off"
            }
            PackageCstate::C7 => {
                "same as C6 while some IO/memory voltages are power-gated; CPU core VR is ON"
            }
            PackageCstate::C8 => {
                "same as C7 with additional IO/memory power-gating; CPU core VR is OFF"
            }
            PackageCstate::C9 => {
                "same as C8 while all IPs are off; most VR voltages reduced; \
                 display may be in panel self-refresh"
            }
            PackageCstate::C10 => {
                "same as C9 while all SoC VRs (except always-on) are off; display off"
            }
        }
    }

    /// The deepest package state legacy (pre-DarkGates) desktops support.
    pub fn legacy_desktop_deepest() -> PackageCstate {
        PackageCstate::C7
    }

    /// The deepest package state a DarkGates desktop supports (Sec. 4.3).
    pub fn darkgates_desktop_deepest() -> PackageCstate {
        PackageCstate::C8
    }

    /// The deepest package state mobile platforms support.
    pub fn mobile_deepest() -> PackageCstate {
        PackageCstate::C10
    }
}

impl fmt::Display for PackageCstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PackageCstate::C0 => "C0",
            PackageCstate::C2 => "C2",
            PackageCstate::C3 => "C3",
            PackageCstate::C6 => "C6",
            PackageCstate::C7 => "C7",
            PackageCstate::C8 => "C8",
            PackageCstate::C9 => "C9",
            PackageCstate::C10 => "C10",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_states_bind_the_core() {
        use ThreadCstate::*;
        // Both threads deep: core follows.
        assert_eq!(core_state_from_threads(&[Tc6, Tc6]), CoreCstate::Cc6);
        // One thread active pins the core at CC0.
        assert_eq!(core_state_from_threads(&[Tc0, Tc6]), CoreCstate::Cc0);
        assert_eq!(core_state_from_threads(&[Tc3, Tc6]), CoreCstate::Cc3);
        // Single-threaded core.
        assert_eq!(core_state_from_threads(&[Tc1]), CoreCstate::Cc1);
    }

    #[test]
    fn thread_ordering_and_mapping_monotone() {
        for w in ThreadCstate::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].core_equivalent() <= w[1].core_equivalent());
        }
        assert_eq!(ThreadCstate::Tc6.to_string(), "TC6");
        assert_eq!(ThreadCstate::default(), ThreadCstate::Tc0);
    }

    #[test]
    fn empty_thread_list_resolves_active() {
        // The conservative answer: with no thread requests, the core is
        // treated as executing.
        assert_eq!(core_state_from_threads(&[]), CoreCstate::Cc0);
    }

    #[test]
    fn core_ordering_deepens() {
        assert!(CoreCstate::Cc0 < CoreCstate::Cc1);
        assert!(CoreCstate::Cc1 < CoreCstate::Cc3);
        assert!(CoreCstate::Cc3 < CoreCstate::Cc6);
        assert!(CoreCstate::Cc6 < CoreCstate::Cc7);
    }

    #[test]
    fn core_predicates() {
        assert!(CoreCstate::Cc0.is_executing());
        assert!(!CoreCstate::Cc1.is_executing());
        assert!(!CoreCstate::Cc1.clocks_off());
        assert!(CoreCstate::Cc3.clocks_off());
        assert!(!CoreCstate::Cc3.power_gated());
        assert!(CoreCstate::Cc6.power_gated());
        assert!(CoreCstate::Cc7.power_gated());
    }

    #[test]
    fn package_ordering_matches_depth() {
        let all = PackageCstate::ALL;
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn vr_off_starts_at_c8() {
        assert!(!PackageCstate::C7.core_vr_off());
        assert!(PackageCstate::C8.core_vr_off());
        assert!(PackageCstate::C10.core_vr_off());
    }

    #[test]
    fn table1_descriptions_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in PackageCstate::ALL {
            let d = s.entry_conditions();
            assert!(!d.is_empty());
            assert!(seen.insert(d), "duplicate description for {s}");
        }
        // Spot-check the key VR semantics from Table 1.
        assert!(PackageCstate::C7.entry_conditions().contains("VR is ON"));
        assert!(PackageCstate::C8.entry_conditions().contains("VR is OFF"));
    }

    #[test]
    fn platform_deepest_constants() {
        assert_eq!(PackageCstate::legacy_desktop_deepest(), PackageCstate::C7);
        assert_eq!(
            PackageCstate::darkgates_desktop_deepest(),
            PackageCstate::C8
        );
        assert_eq!(PackageCstate::mobile_deepest(), PackageCstate::C10);
    }

    #[test]
    fn displays() {
        assert_eq!(CoreCstate::Cc6.to_string(), "CC6");
        assert_eq!(GraphicsCstate::Rc6.to_string(), "RC6");
        assert_eq!(PackageCstate::C10.to_string(), "C10");
    }

    #[test]
    fn defaults_are_active() {
        assert_eq!(CoreCstate::default(), CoreCstate::Cc0);
        assert_eq!(GraphicsCstate::default(), GraphicsCstate::Rc0);
        assert_eq!(PackageCstate::default(), PackageCstate::C0);
        assert_eq!(DisplayState::default(), DisplayState::On);
        assert_eq!(MemoryState::default(), MemoryState::Active);
    }
}

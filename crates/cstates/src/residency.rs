//! Residency accounting: how long the package spent in each C-state, and
//! the residency-weighted average power.
//!
//! The energy-efficiency evaluation (paper Sec. 7.3) is a dot product of
//! per-state power with per-state residency: RMT spends ~99 % of its time in
//! the deepest package state and ~1 % active.

use crate::power::{GatingConfig, IdlePowerModel};
use crate::states::PackageCstate;
use dg_power::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates per-state residency and active-phase energy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResidencyTracker {
    idle: BTreeMap<PackageCstate, f64>,
    active_seconds: f64,
    active_joules: f64,
}

impl ResidencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `duration` spent idling at package `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is C0 (use [`record_active`]) or `duration` is
    /// negative.
    ///
    /// [`record_active`]: ResidencyTracker::record_active
    pub fn record_idle(&mut self, state: PackageCstate, duration: Seconds) {
        assert!(
            state != PackageCstate::C0,
            "C0 phases must be recorded with record_active"
        );
        assert!(duration.value() >= 0.0, "negative duration {duration}");
        *self.idle.entry(state).or_insert(0.0) += duration.value();
    }

    /// Records `duration` of active (package C0) time at `power`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or `power` non-finite.
    pub fn record_active(&mut self, power: Watts, duration: Seconds) {
        assert!(duration.value() >= 0.0, "negative duration {duration}");
        assert!(power.is_finite(), "non-finite power");
        self.active_seconds += duration.value();
        self.active_joules += power.value() * duration.value();
    }

    /// Total tracked time (idle + active).
    pub fn total(&self) -> Seconds {
        Seconds::new(self.idle.values().sum::<f64>() + self.active_seconds)
    }

    /// Fraction of the total time spent idling in `state` (0 if nothing
    /// tracked).
    pub fn idle_fraction(&self, state: PackageCstate) -> f64 {
        let total = self.total().value();
        if total <= 0.0 {
            return 0.0;
        }
        self.idle.get(&state).copied().unwrap_or(0.0) / total
    }

    /// Fraction of the total time spent active (package C0).
    pub fn active_fraction(&self) -> f64 {
        let total = self.total().value();
        if total <= 0.0 {
            return 0.0;
        }
        self.active_seconds / total
    }

    /// Residency-weighted average package power under `model`/`config`.
    ///
    /// Active phases contribute the energy recorded with
    /// [`record_active`]; idle phases contribute the model's idle power for
    /// each state.
    ///
    /// Returns zero if nothing has been tracked.
    ///
    /// [`record_active`]: ResidencyTracker::record_active
    pub fn average_power(&self, model: &IdlePowerModel, config: &GatingConfig) -> Watts {
        let total = self.total().value();
        if total <= 0.0 {
            return Watts::ZERO;
        }
        let idle_joules: f64 = self
            .idle
            .iter()
            .map(|(state, secs)| model.package_idle_power(*state, config).value() * secs)
            .sum();
        Watts::new((idle_joules + self.active_joules) / total)
    }

    /// Iterates over `(state, seconds)` idle entries, shallowest first.
    pub fn iter_idle(&self) -> impl Iterator<Item = (PackageCstate, Seconds)> + '_ {
        self.idle.iter().map(|(s, t)| (*s, Seconds::new(*t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut t = ResidencyTracker::new();
        t.record_idle(PackageCstate::C7, Seconds::new(99.0));
        t.record_active(Watts::new(5.0), Seconds::new(1.0));
        assert!((t.total().value() - 100.0).abs() < 1e-12);
        let sum = t.idle_fraction(PackageCstate::C7) + t.active_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((t.active_fraction() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn average_power_is_residency_weighted() {
        let model = IdlePowerModel::new();
        let cfg = GatingConfig::skylake(false, 4);
        let mut t = ResidencyTracker::new();
        t.record_idle(PackageCstate::C7, Seconds::new(99.0));
        t.record_active(Watts::new(5.0), Seconds::new(1.0));
        let p_idle = model.package_idle_power(PackageCstate::C7, &cfg).value();
        let expected = (p_idle * 99.0 + 5.0) / 100.0;
        let avg = t.average_power(&model, &cfg);
        assert!((avg.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let t = ResidencyTracker::new();
        let model = IdlePowerModel::new();
        let cfg = GatingConfig::skylake(true, 4);
        assert_eq!(t.average_power(&model, &cfg), Watts::ZERO);
        assert_eq!(t.total(), Seconds::ZERO);
        assert_eq!(t.active_fraction(), 0.0);
        assert_eq!(t.idle_fraction(PackageCstate::C7), 0.0);
    }

    #[test]
    fn rmt_shape_darkgates_c8_beats_c7() {
        // The Fig. 10 mechanism in miniature: 99 % idle / 1 % active.
        let model = IdlePowerModel::new();
        let bypassed = GatingConfig::skylake(true, 4);
        let active_power = model.active_package_power(Watts::new(5.0), 3, &bypassed);

        let mut at_c7 = ResidencyTracker::new();
        at_c7.record_idle(PackageCstate::C7, Seconds::new(99.0));
        at_c7.record_active(active_power, Seconds::new(1.0));

        let mut at_c8 = ResidencyTracker::new();
        at_c8.record_idle(PackageCstate::C8, Seconds::new(99.0));
        at_c8.record_active(active_power, Seconds::new(1.0));

        let avg_c7 = at_c7.average_power(&model, &bypassed);
        let avg_c8 = at_c8.average_power(&model, &bypassed);
        let reduction = 1.0 - avg_c8 / avg_c7;
        assert!(
            (0.55..0.80).contains(&reduction),
            "RMT-shaped reduction {reduction}"
        );
    }

    #[test]
    fn iter_idle_lists_entries() {
        let mut t = ResidencyTracker::new();
        t.record_idle(PackageCstate::C3, Seconds::new(1.0));
        t.record_idle(PackageCstate::C8, Seconds::new(2.0));
        t.record_idle(PackageCstate::C3, Seconds::new(1.5));
        let entries: Vec<_> = t.iter_idle().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, PackageCstate::C3);
        assert!((entries[0].1.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "record_active")]
    fn recording_c0_as_idle_panics() {
        let mut t = ResidencyTracker::new();
        t.record_idle(PackageCstate::C0, Seconds::new(1.0));
    }
}

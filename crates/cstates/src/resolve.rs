//! Package C-state resolution (the PMU logic behind Table 1).
//!
//! Given the component states of every core, the graphics engine, the
//! display, the memory, and the platform's capability ceiling, compute the
//! deepest package C-state the system may enter.

use crate::states::{CoreCstate, DisplayState, GraphicsCstate, MemoryState, PackageCstate};
use serde::{Deserialize, Serialize};

/// The inputs the PMU examines when choosing a package C-state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformInputs {
    /// Per-core component C-states.
    pub cores: Vec<CoreCstate>,
    /// Graphics-engine state.
    pub graphics: GraphicsCstate,
    /// Display pipeline state.
    pub display: DisplayState,
    /// DRAM state the platform can tolerate right now.
    pub memory: MemoryState,
    /// `true` once the LLC has been flushed (needed for C7+).
    pub llc_flushed: bool,
    /// The deepest package state this platform supports (board wiring,
    /// validation; Sec. 4.3).
    pub deepest_allowed: PackageCstate,
}

impl PlatformInputs {
    /// Starts from `count` cores all in `state`, graphics active, display
    /// on, memory active, LLC unflushed, mobile-class ceiling (C10).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn all_cores(state: CoreCstate, count: usize) -> Self {
        assert!(count > 0, "a platform needs at least one core");
        PlatformInputs {
            cores: vec![state; count],
            graphics: GraphicsCstate::Rc0,
            display: DisplayState::On,
            memory: MemoryState::Active,
            llc_flushed: false,
            deepest_allowed: PackageCstate::mobile_deepest(),
        }
    }

    /// Sets the graphics state (builder style).
    pub fn graphics(mut self, g: GraphicsCstate) -> Self {
        self.graphics = g;
        self
    }

    /// Sets the display state.
    pub fn display(mut self, d: DisplayState) -> Self {
        self.display = d;
        self
    }

    /// Sets the memory state.
    pub fn memory(mut self, m: MemoryState) -> Self {
        self.memory = m;
        self
    }

    /// Sets whether the LLC has been flushed.
    pub fn llc_flushed(mut self, flushed: bool) -> Self {
        self.llc_flushed = flushed;
        self
    }

    /// Sets the platform's deepest supported package state.
    pub fn deepest_allowed(mut self, deepest: PackageCstate) -> Self {
        self.deepest_allowed = deepest;
        self
    }

    /// Sets one core's state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn with_core(mut self, index: usize, state: CoreCstate) -> Self {
        self.cores[index] = state;
        self
    }

    /// The shallowest core state (the binding constraint). An empty core
    /// list resolves to `Cc0` (the conservative answer: package stays
    /// active).
    pub fn shallowest_core(&self) -> CoreCstate {
        self.cores.iter().copied().min().unwrap_or(CoreCstate::Cc0)
    }
}

/// Resolves the deepest package C-state permitted by `inputs`
/// (paper Table 1 semantics).
pub fn resolve(inputs: &PlatformInputs) -> PackageCstate {
    let shallowest = inputs.shallowest_core();

    // C0: anything executing keeps the package active.
    if !shallowest.clocks_off() || inputs.graphics.is_active() {
        return PackageCstate::C0;
    }

    // All cores ≥ CC3 and graphics RC6 from here on.
    let candidate = if !shallowest.power_gated() {
        // Some core is in CC3 (clocks off, not gated): C2 or C3.
        match inputs.memory {
            MemoryState::Active => PackageCstate::C2,
            MemoryState::SelfRefresh => PackageCstate::C3,
        }
    } else {
        // All cores power-gated (CC6+): C6 and deeper become possible.
        if inputs.memory == MemoryState::Active {
            // DRAM still serving traffic pins the package at C2.
            PackageCstate::C2
        } else if !inputs.llc_flushed {
            PackageCstate::C6
        } else {
            // C7 and deeper, gated by the display pipeline.
            match inputs.display {
                DisplayState::On => PackageCstate::C8,
                DisplayState::SelfRefresh => PackageCstate::C9,
                DisplayState::Off => PackageCstate::C10,
            }
        }
    };

    candidate.min(inputs.deepest_allowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executing_core_pins_c0() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
            .with_core(2, CoreCstate::Cc0)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh);
        assert_eq!(resolve(&i), PackageCstate::C0);
    }

    #[test]
    fn halted_core_still_c0() {
        // CC1 keeps clocks on: package stays in C0 per Table 1.
        let i = PlatformInputs::all_cores(CoreCstate::Cc1, 4).graphics(GraphicsCstate::Rc6);
        assert_eq!(resolve(&i), PackageCstate::C0);
    }

    #[test]
    fn active_graphics_pins_c0() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
            .graphics(GraphicsCstate::Rc0)
            .memory(MemoryState::SelfRefresh);
        assert_eq!(resolve(&i), PackageCstate::C0);
    }

    #[test]
    fn clocks_off_with_active_dram_is_c2() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc3, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::Active);
        assert_eq!(resolve(&i), PackageCstate::C2);
    }

    #[test]
    fn clocks_off_with_self_refresh_is_c3() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc3, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh);
        assert_eq!(resolve(&i), PackageCstate::C3);
    }

    #[test]
    fn mixed_cc3_cc6_limited_by_shallowest() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
            .with_core(0, CoreCstate::Cc3)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh);
        assert_eq!(resolve(&i), PackageCstate::C3);
    }

    #[test]
    fn gated_cores_unflushed_llc_is_c6() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(false);
        assert_eq!(resolve(&i), PackageCstate::C6);
    }

    #[test]
    fn gated_cores_active_dram_pins_c2() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc6, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::Active);
        assert_eq!(resolve(&i), PackageCstate::C2);
    }

    #[test]
    fn flushed_llc_display_on_reaches_c8() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc7, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(true);
        assert_eq!(resolve(&i), PackageCstate::C8);
    }

    #[test]
    fn display_psr_reaches_c9_and_off_reaches_c10() {
        let base = PlatformInputs::all_cores(CoreCstate::Cc7, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(true);
        assert_eq!(
            resolve(&base.clone().display(DisplayState::SelfRefresh)),
            PackageCstate::C9
        );
        assert_eq!(
            resolve(&base.display(DisplayState::Off)),
            PackageCstate::C10
        );
    }

    #[test]
    fn legacy_desktop_clamps_at_c7() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc7, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(true)
            .display(DisplayState::Off)
            .deepest_allowed(PackageCstate::legacy_desktop_deepest());
        assert_eq!(resolve(&i), PackageCstate::C7);
    }

    #[test]
    fn darkgates_desktop_clamps_at_c8() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc7, 4)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(true)
            .display(DisplayState::Off)
            .deepest_allowed(PackageCstate::darkgates_desktop_deepest());
        assert_eq!(resolve(&i), PackageCstate::C8);
    }

    #[test]
    fn shallowest_core_is_binding() {
        let i = PlatformInputs::all_cores(CoreCstate::Cc7, 4).with_core(3, CoreCstate::Cc0);
        assert_eq!(i.shallowest_core(), CoreCstate::Cc0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        PlatformInputs::all_cores(CoreCstate::Cc0, 0);
    }
}

//! Property-based tests for the idle governor.

use dg_cstates::governor::IdleGovernor;
use dg_cstates::power::{GatingConfig, IdlePowerModel};
use dg_cstates::states::PackageCstate;
use dg_power::units::Seconds;
use proptest::prelude::*;

fn governor(bypassed: bool) -> IdleGovernor {
    IdleGovernor::new(
        GatingConfig::skylake(bypassed, 4),
        PackageCstate::C8,
        Seconds::from_ms(2.0),
    )
}

proptest! {
    /// The energy-optimal selection is never beaten by ANY fixed state for
    /// the exact predicted duration (it is an argmin by construction, so
    /// this guards the expected-energy bookkeeping).
    #[test]
    fn energy_optimal_is_optimal(dur_us in 10.0..5_000_000.0f64) {
        let g = governor(true);
        let predicted = Seconds::from_us(dur_us);
        let chosen = g.select_energy_optimal(predicted);
        let e_chosen = g.expected_energy(chosen, predicted);
        for state in &PackageCstate::ALL[1..] {
            if *state > PackageCstate::C8 {
                break;
            }
            prop_assert!(
                e_chosen <= g.expected_energy(*state, predicted) + 1e-15,
                "{chosen} ({e_chosen}) beaten by {state}"
            );
        }
    }

    /// Break-even selection is monotone: longer predictions never pick a
    /// shallower state.
    #[test]
    fn selection_monotone_in_prediction(
        d1_us in 10.0..2_000_000.0f64,
        d2_us in 10.0..2_000_000.0f64,
        bypassed in prop::bool::ANY,
    ) {
        let g = governor(bypassed);
        let (lo, hi) = if d1_us <= d2_us { (d1_us, d2_us) } else { (d2_us, d1_us) };
        let s_lo = g.select_for(Seconds::from_us(lo));
        let s_hi = g.select_for(Seconds::from_us(hi));
        prop_assert!(s_hi >= s_lo, "{lo}us -> {s_lo}, {hi}us -> {s_hi}");
    }

    /// Selections always respect the platform ceiling and the wake budget.
    #[test]
    fn selections_respect_constraints(
        dur_us in 10.0..5_000_000.0f64,
        bypassed in prop::bool::ANY,
        wake_budget_us in 50.0..2_000.0f64,
    ) {
        use dg_cstates::latency::LatencyTable;
        let mut g = IdleGovernor::new(
            GatingConfig::skylake(bypassed, 4),
            PackageCstate::C7,
            Seconds::from_us(wake_budget_us),
        );
        g.record_idle(Seconds::from_us(dur_us));
        let s = g.select();
        prop_assert!(s <= PackageCstate::C7);
        let latency = LatencyTable::skylake();
        prop_assert!(
            s == PackageCstate::C2
                || latency.exit(s) <= Seconds::from_us(wake_budget_us)
        );
    }

    /// The predictor's estimate is always bracketed by the extremes of the
    /// observations (plus its initial 1 ms seed).
    #[test]
    fn predictor_bracketed(durs in prop::collection::vec(1e-6..10.0f64, 1..40)) {
        let mut g = governor(false);
        for &d in &durs {
            g.record_idle(Seconds::new(d));
        }
        let est = g.predictor().predict().value();
        let lo = durs.iter().cloned().fold(1e-3_f64, f64::min);
        let hi = durs.iter().cloned().fold(1e-3_f64, f64::max);
        prop_assert!(est >= lo - 1e-12 && est <= hi + 1e-12, "{est} not in [{lo}, {hi}]");
    }

    /// evaluate() produces a power bracketed by the cheapest and most
    /// expensive idle states, for any idle distribution.
    #[test]
    fn evaluate_bracketed(
        durs in prop::collection::vec(100e-6..2.0f64, 1..30),
        bypassed in prop::bool::ANY,
    ) {
        let model = IdlePowerModel::new();
        let cfg = GatingConfig::skylake(bypassed, 4);
        let durations: Vec<Seconds> = durs.iter().map(|d| Seconds::new(*d)).collect();
        let avg = governor(bypassed).evaluate(&durations).value();
        let floor = model
            .package_idle_power(PackageCstate::C8, &cfg)
            .value();
        let ceiling = model
            .package_idle_power(PackageCstate::C2, &cfg)
            .value();
        prop_assert!(avg >= floor - 1e-9, "avg {avg} below floor {floor}");
        prop_assert!(avg <= ceiling + 1e-9, "avg {avg} above ceiling {ceiling}");
    }
}

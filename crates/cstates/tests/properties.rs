//! Property-based tests for C-state invariants.

use dg_cstates::power::{GatingConfig, IdlePowerModel};
use dg_cstates::residency::ResidencyTracker;
use dg_cstates::resolve::{resolve, PlatformInputs};
use dg_cstates::states::{CoreCstate, DisplayState, GraphicsCstate, MemoryState, PackageCstate};
use dg_power::units::{Seconds, Watts};
use proptest::prelude::*;

fn arb_core_state() -> impl Strategy<Value = CoreCstate> {
    prop::sample::select(CoreCstate::ALL.to_vec())
}

fn arb_package_state() -> impl Strategy<Value = PackageCstate> {
    prop::sample::select(PackageCstate::ALL.to_vec())
}

fn arb_inputs() -> impl Strategy<Value = PlatformInputs> {
    (
        prop::collection::vec(arb_core_state(), 1..8),
        prop::bool::ANY,
        0..3u8,
        prop::bool::ANY,
        prop::bool::ANY,
        arb_package_state(),
    )
        .prop_map(|(cores, gfx_active, display, mem_sr, llc, deepest)| {
            let mut inputs = PlatformInputs::all_cores(CoreCstate::Cc0, cores.len());
            inputs.cores = cores;
            inputs.graphics = if gfx_active {
                GraphicsCstate::Rc0
            } else {
                GraphicsCstate::Rc6
            };
            inputs.display = match display {
                0 => DisplayState::On,
                1 => DisplayState::SelfRefresh,
                _ => DisplayState::Off,
            };
            inputs.memory = if mem_sr {
                MemoryState::SelfRefresh
            } else {
                MemoryState::Active
            };
            inputs.llc_flushed = llc;
            inputs.deepest_allowed = deepest;
            inputs
        })
}

proptest! {
    /// Resolution never exceeds the platform's deepest allowed state.
    #[test]
    fn resolution_respects_platform_ceiling(inputs in arb_inputs()) {
        prop_assert!(resolve(&inputs) <= inputs.deepest_allowed);
    }

    /// Resolution is monotone: deepening any single core's state never
    /// makes the package state shallower.
    #[test]
    fn resolution_monotone_in_core_states(inputs in arb_inputs(), idx in 0..8usize) {
        let base = resolve(&inputs);
        let i = idx % inputs.cores.len();
        let mut deeper = inputs.clone();
        deeper.cores[i] = CoreCstate::Cc7;
        if deeper.cores[i] >= inputs.cores[i] {
            prop_assert!(resolve(&deeper) >= base,
                "deepening core {i} took package from {base} to {}", resolve(&deeper));
        }
    }

    /// Any core with clocks on (CC0/CC1) or active graphics forces package
    /// C0; conversely, all-clocks-off plus idle graphics always leaves C0.
    #[test]
    fn clocks_on_forces_c0(inputs in arb_inputs()) {
        let any_shallow = inputs.cores.iter().any(|c| !c.clocks_off())
            || inputs.graphics.is_active();
        if any_shallow {
            prop_assert_eq!(resolve(&inputs), PackageCstate::C0);
        } else {
            // Unless the platform ceiling itself is C0, some idle state is
            // always reachable.
            prop_assert!(
                resolve(&inputs) > PackageCstate::C0
                    || inputs.deepest_allowed == PackageCstate::C0
            );
        }
    }

    /// Active DRAM pins the package at C2 or shallower.
    #[test]
    fn active_dram_blocks_deep_states(inputs in arb_inputs()) {
        if inputs.memory == MemoryState::Active {
            prop_assert!(resolve(&inputs) <= PackageCstate::C2);
        }
    }

    /// Idle package power never increases with depth, for both gating
    /// configurations.
    #[test]
    fn idle_power_monotone_with_depth(bypassed in prop::bool::ANY, cores in 1..8usize) {
        let model = IdlePowerModel::new();
        let cfg = GatingConfig::skylake(bypassed, cores);
        let idle_states = &PackageCstate::ALL[1..];
        for w in idle_states.windows(2) {
            let a = model.package_idle_power(w[0], &cfg);
            let b = model.package_idle_power(w[1], &cfg);
            prop_assert!(b <= a, "{} {a} -> {} {b}", w[0], w[1]);
        }
    }

    /// Bypassed packages never idle cheaper than gated ones (same state).
    #[test]
    fn bypassed_never_cheaper(state_idx in 1..8usize, cores in 1..8usize) {
        let state = PackageCstate::ALL[state_idx];
        let model = IdlePowerModel::new();
        let gated = GatingConfig::skylake(false, cores);
        let bypassed = GatingConfig::skylake(true, cores);
        prop_assert!(
            model.package_idle_power(state, &bypassed)
                >= model.package_idle_power(state, &gated)
        );
    }

    /// Residency fractions always sum to 1 (when anything is recorded) and
    /// average power is bracketed by the min and max state powers.
    #[test]
    fn residency_fractions_and_average(
        idle_secs in prop::collection::vec((1..7usize, 0.0..100.0f64), 1..6),
        active in (0.0..50.0f64, 0.0..10.0f64),
    ) {
        let model = IdlePowerModel::new();
        let cfg = GatingConfig::skylake(true, 4);
        let mut t = ResidencyTracker::new();
        let mut powers = Vec::new();
        for (si, secs) in &idle_secs {
            let state = PackageCstate::ALL[*si];
            t.record_idle(state, Seconds::new(*secs));
            powers.push(model.package_idle_power(state, &cfg).value());
        }
        let (p_active, secs_active) = active;
        t.record_active(Watts::new(p_active), Seconds::new(secs_active));
        powers.push(p_active);

        let total: f64 = idle_secs.iter().map(|(_, s)| *s).sum::<f64>() + secs_active;
        prop_assume!(total > 0.0);
        prop_assert!((t.total().value() - total).abs() < 1e-9);

        let frac_sum: f64 = PackageCstate::ALL[1..]
            .iter()
            .map(|s| t.idle_fraction(*s))
            .sum::<f64>()
            + t.active_fraction();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);

        let avg = t.average_power(&model, &cfg).value();
        let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = powers.iter().cloned().fold(0.0, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} not in [{lo}, {hi}]");
    }
}

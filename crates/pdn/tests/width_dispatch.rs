//! Regression tests for the calibrated kernel-width dispatch
//! ([`dg_pdn::KernelWidth::dispatch`]).
//!
//! PR 9's bench surfaced an AVX-512 pathology: `detect()` picks the x8
//! kernel on capable hosts, but `BENCH_pdn.json` measures it *slower*
//! than x4 there (frequency downclocking). These tests pin the fix from
//! two directions: structurally (dispatch never returns X8, never
//! exceeds capability) and empirically (the dispatched width is never
//! the measured-slowest row of the committed bench payload).

use dg_pdn::KernelWidth;

#[test]
fn dispatch_never_exceeds_capability_and_clamps_x8() {
    let detected = KernelWidth::detect();
    let dispatched = KernelWidth::dispatch();
    assert!(
        dispatched <= detected,
        "dispatch {:?} wider than the CPU supports ({:?})",
        dispatched,
        detected
    );
    assert_ne!(
        dispatched,
        KernelWidth::X8,
        "dispatch must clamp the downclock-prone x8 kernel to x4"
    );
    match detected {
        KernelWidth::X8 => assert_eq!(dispatched, KernelWidth::X4),
        other => assert_eq!(dispatched, other),
    }
}

/// Pulls `(width, speedup)` rows out of the committed BENCH_pdn.json
/// without a JSON dependency: the payload is machine-written by
/// `bench-pdn --json` in a fixed key order, so scanning for the two keys
/// inside each `rows` object is exact.
fn bench_rows(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for obj in text.split("{\"width\":").skip(1) {
        let Some(width) = obj.split('"').nth(1) else {
            continue;
        };
        let Some(tail) = obj.split("\"speedup\":").nth(1) else {
            continue;
        };
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(speedup) = num.parse::<f64>() {
            rows.push((width.to_string(), speedup));
        }
    }
    rows
}

#[test]
fn dispatched_width_is_never_the_measured_slowest() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pdn.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        // A fresh checkout before the first bench run has no payload to
        // cross-check; the structural test above still pins the clamp.
        eprintln!("skipping: {path} not found");
        return;
    };
    let rows = bench_rows(&text);
    assert!(
        rows.len() >= 2,
        "BENCH_pdn.json rows not parseable: {rows:?}"
    );
    let slowest = rows
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(w, _)| w.clone())
        .unwrap_or_default();
    let dispatched = KernelWidth::dispatch().label();
    assert_ne!(
        dispatched, slowest,
        "dispatch picked the measured-slowest kernel width ({slowest}); rows: {rows:?}"
    );
}

//! Property-based equivalence between the batched SoA transient kernel and
//! the scalar reference path.
//!
//! The batch kernel promises *bit-identical* results lane-for-lane: for any
//! ladder, any mix of load steps, and any batch size, `run_batch` must
//! produce exactly what per-lane `run` calls would — including lanes that
//! settle early at different steps and lanes that never settle at all.

use dg_pdn::didt;
use dg_pdn::elements::{CapBank, SeriesBranch};
use dg_pdn::ladder::{Ladder, VrOutputModel};
use dg_pdn::simd::KernelWidth;
use dg_pdn::transient::{LoadStep, TransientResult, TransientSim};
use dg_pdn::units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};
use proptest::prelude::*;

/// One lane's step expressed in plain numbers for proptest generation.
#[derive(Debug, Clone, Copy)]
struct LaneSpec {
    from_a: f64,
    to_a: f64,
    at_us: f64,
    slew_ns: f64,
}

fn lane_spec() -> impl Strategy<Value = LaneSpec> {
    (0.0..60.0f64, 0.0..120.0f64, 0.1..1.0f64, 0.0..50.0f64).prop_map(
        |(from_a, to_a, at_us, slew_ns)| LaneSpec {
            from_a,
            to_a,
            at_us,
            slew_ns,
        },
    )
}

fn build_ladder(r_board: f64, l_board: f64, c_bulk: f64, r_die: f64, c_die: f64) -> Ladder {
    let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
    let mut b = Ladder::builder("prop-batch", vr);
    b.series_with_decap(
        "board",
        SeriesBranch::new(Ohms::from_mohm(r_board), Henries::from_ph(l_board)).unwrap(),
        CapBank::new(
            Farads::from_uf(c_bulk),
            Ohms::from_mohm(5.0),
            Henries::from_nh(2.0),
            3,
        )
        .unwrap(),
    );
    b.series_with_decap(
        "die",
        SeriesBranch::new(Ohms::from_mohm(r_die), Henries::from_ph(5.0)).unwrap(),
        CapBank::new(
            Farads::from_nf(c_die),
            Ohms::from_mohm(1.0),
            Henries::from_ph(1.0),
            1,
        )
        .unwrap(),
    );
    b.build().unwrap()
}

fn assert_lane_bit_identical(
    lane: usize,
    batch: &TransientResult,
    scalar: &TransientResult,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        batch.v_min.value().to_bits(),
        scalar.v_min.value().to_bits(),
        "lane {} v_min",
        lane
    );
    prop_assert_eq!(
        batch.t_min.value().to_bits(),
        scalar.t_min.value().to_bits(),
        "lane {} t_min",
        lane
    );
    prop_assert_eq!(
        batch.v_initial.value().to_bits(),
        scalar.v_initial.value().to_bits(),
        "lane {} v_initial",
        lane
    );
    prop_assert_eq!(
        batch.v_final.value().to_bits(),
        scalar.v_final.value().to_bits(),
        "lane {} v_final",
        lane
    );
    prop_assert_eq!(
        batch.samples.len(),
        scalar.samples.len(),
        "lane {} sample count",
        lane
    );
    for (k, ((tb, vb), (ts, vs))) in batch.samples.iter().zip(&scalar.samples).enumerate() {
        prop_assert_eq!(
            tb.value().to_bits(),
            ts.value().to_bits(),
            "lane {} sample {} time",
            lane,
            k
        );
        prop_assert_eq!(
            vb.value().to_bits(),
            vs.value().to_bits(),
            "lane {} sample {} voltage",
            lane,
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random ladders, random step mixes, and random batch sizes, the
    /// batched kernel reproduces the scalar path bit-for-bit on every lane.
    #[test]
    fn batch_is_bit_identical_to_scalar(
        r_board in 0.05..2.0f64,
        l_board in 1.0..500.0f64,
        c_bulk in 10.0..2000.0f64,
        r_die in 0.01..1.0f64,
        c_die in 10.0..2000.0f64,
        lanes in prop::collection::vec(lane_spec(), 1..7),
        dur_us in 1.5..6.0f64,
        decimate in 1..64usize,
    ) {
        let ladder = build_ladder(r_board, l_board, c_bulk, r_die, c_die);
        let mut sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(dur_us),
        ).unwrap();
        sim.decimate = decimate;
        let steps: Vec<LoadStep> = lanes
            .iter()
            .map(|l| LoadStep {
                from: Amps::new(l.from_a),
                to: Amps::new(l.to_a),
                at: Seconds::from_us(l.at_us),
                slew: Seconds::from_ns(l.slew_ns),
            })
            .collect();
        let batched = sim.run_batch(&ladder, &steps);
        prop_assert_eq!(batched.len(), steps.len());
        for (lane, (batch, step)) in batched.iter().zip(&steps).enumerate() {
            let scalar = sim.run(&ladder, *step);
            assert_lane_bit_identical(lane, batch, &scalar)?;
        }
    }

    /// Lanes with wildly different step magnitudes settle at different
    /// times; mixing a null step (settles almost immediately) with large
    /// steps exercises the early-exit compaction path, and the results
    /// still have to be bit-identical and in input order.
    #[test]
    fn early_exit_lanes_stay_bit_identical(
        big in 40.0..150.0f64,
        small in 0.5..5.0f64,
        slew_ns in 0.0..20.0f64,
    ) {
        let ladder = build_ladder(0.4, 120.0, 500.0, 0.2, 400.0);
        let sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(8.0),
        ).unwrap();
        let quiescent = Amps::new(5.0);
        // Null step (exits first), small step, big step, and a second null
        // so two lanes exit on the same sweep of the compaction loop.
        let deltas = [0.0, small, big, 0.0];
        let steps: Vec<LoadStep> = deltas
            .iter()
            .map(|d| LoadStep {
                from: quiescent,
                to: quiescent + Amps::new(*d),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(slew_ns),
            })
            .collect();
        let batched = sim.run_batch(&ladder, &steps);
        prop_assert_eq!(batched.len(), steps.len());
        for (lane, (batch, step)) in batched.iter().zip(&steps).enumerate() {
            let scalar = sim.run(&ladder, *step);
            assert_lane_bit_identical(lane, batch, &scalar)?;
        }
    }

    /// Remainder lanes: for batch sizes that are *not* multiples of either
    /// SIMD width (1..=11 covers every residue mod 4 and several mod 8),
    /// each forced kernel width must agree bit-for-bit with the forced
    /// scalar kernel — the vector chunks and the per-row scalar remainder
    /// have to be the same arithmetic in the same order.
    #[test]
    fn every_kernel_width_matches_scalar_for_remainder_counts(
        lanes in prop::collection::vec(lane_spec(), 1..12),
        dur_us in 1.5..4.0f64,
    ) {
        let ladder = build_ladder(0.3, 100.0, 400.0, 0.1, 300.0);
        let sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(dur_us),
        ).unwrap();
        let steps: Vec<LoadStep> = lanes
            .iter()
            .map(|l| LoadStep {
                from: Amps::new(l.from_a),
                to: Amps::new(l.to_a),
                at: Seconds::from_us(l.at_us),
                slew: Seconds::from_ns(l.slew_ns),
            })
            .collect();
        let scalar = sim.run_batch_with_width(&ladder, &steps, KernelWidth::Scalar);
        prop_assert_eq!(scalar.len(), steps.len());
        for width in [KernelWidth::X4, KernelWidth::X8] {
            let wide = sim.run_batch_with_width(&ladder, &steps, width);
            prop_assert_eq!(wide.len(), scalar.len());
            for (lane, (w, s)) in wide.iter().zip(&scalar).enumerate() {
                assert_lane_bit_identical(lane, w, s)?;
            }
        }
    }

    /// `didt::droop_sweep` (the engine behind `/v1/droop_sweep`) is
    /// bit-identical to per-lane scalar `run` calls for population sizes
    /// around the sweep's group size — including counts that leave
    /// remainder lanes in the last group and are not multiples of any
    /// SIMD width.
    #[test]
    fn droop_sweep_matches_per_lane_scalar_runs(
        n_small in 1usize..12,
        straddle in prop::bool::ANY,
        quiescent in 1.0..20.0f64,
        slew_ns in 0.0..20.0f64,
    ) {
        // Half the cases stay inside one 32-lane group; the other half
        // straddle the group boundary (29..=39 lanes) so the last group
        // is a remainder narrower than SWEEP_LANES.
        let n_deltas = if straddle { n_small + 28 } else { n_small };
        let ladder = build_ladder(0.4, 120.0, 500.0, 0.2, 400.0);
        let sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(3.0),
        ).unwrap();
        let deltas: Vec<Amps> = (0..n_deltas)
            .map(|i| Amps::new(1.0 + 2.0 * i as f64))
            .collect();
        let quiescent = Amps::new(quiescent);
        let slew = Seconds::from_ns(slew_ns);
        let sweep = didt::droop_sweep(&ladder, &sim, quiescent, &deltas, slew);
        prop_assert_eq!(sweep.len(), deltas.len());
        for (lane, (droop, delta)) in sweep.iter().zip(&deltas).enumerate() {
            let scalar = sim.run(&ladder, LoadStep {
                from: quiescent,
                to: quiescent + *delta,
                at: Seconds::from_us(1.0),
                slew,
            });
            prop_assert_eq!(
                droop.value().to_bits(),
                scalar.droop().value().to_bits(),
                "lane {}",
                lane
            );
        }
    }
}

//! Property-based equivalence between the batched SoA transient kernel and
//! the scalar reference path.
//!
//! The batch kernel promises *bit-identical* results lane-for-lane: for any
//! ladder, any mix of load steps, and any batch size, `run_batch` must
//! produce exactly what per-lane `run` calls would — including lanes that
//! settle early at different steps and lanes that never settle at all.

use dg_pdn::elements::{CapBank, SeriesBranch};
use dg_pdn::ladder::{Ladder, VrOutputModel};
use dg_pdn::transient::{LoadStep, TransientResult, TransientSim};
use dg_pdn::units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};
use proptest::prelude::*;

/// One lane's step expressed in plain numbers for proptest generation.
#[derive(Debug, Clone, Copy)]
struct LaneSpec {
    from_a: f64,
    to_a: f64,
    at_us: f64,
    slew_ns: f64,
}

fn lane_spec() -> impl Strategy<Value = LaneSpec> {
    (0.0..60.0f64, 0.0..120.0f64, 0.1..1.0f64, 0.0..50.0f64).prop_map(
        |(from_a, to_a, at_us, slew_ns)| LaneSpec {
            from_a,
            to_a,
            at_us,
            slew_ns,
        },
    )
}

fn build_ladder(r_board: f64, l_board: f64, c_bulk: f64, r_die: f64, c_die: f64) -> Ladder {
    let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
    let mut b = Ladder::builder("prop-batch", vr);
    b.series_with_decap(
        "board",
        SeriesBranch::new(Ohms::from_mohm(r_board), Henries::from_ph(l_board)).unwrap(),
        CapBank::new(
            Farads::from_uf(c_bulk),
            Ohms::from_mohm(5.0),
            Henries::from_nh(2.0),
            3,
        )
        .unwrap(),
    );
    b.series_with_decap(
        "die",
        SeriesBranch::new(Ohms::from_mohm(r_die), Henries::from_ph(5.0)).unwrap(),
        CapBank::new(
            Farads::from_nf(c_die),
            Ohms::from_mohm(1.0),
            Henries::from_ph(1.0),
            1,
        )
        .unwrap(),
    );
    b.build().unwrap()
}

fn assert_lane_bit_identical(
    lane: usize,
    batch: &TransientResult,
    scalar: &TransientResult,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        batch.v_min.value().to_bits(),
        scalar.v_min.value().to_bits(),
        "lane {} v_min",
        lane
    );
    prop_assert_eq!(
        batch.t_min.value().to_bits(),
        scalar.t_min.value().to_bits(),
        "lane {} t_min",
        lane
    );
    prop_assert_eq!(
        batch.v_initial.value().to_bits(),
        scalar.v_initial.value().to_bits(),
        "lane {} v_initial",
        lane
    );
    prop_assert_eq!(
        batch.v_final.value().to_bits(),
        scalar.v_final.value().to_bits(),
        "lane {} v_final",
        lane
    );
    prop_assert_eq!(
        batch.samples.len(),
        scalar.samples.len(),
        "lane {} sample count",
        lane
    );
    for (k, ((tb, vb), (ts, vs))) in batch.samples.iter().zip(&scalar.samples).enumerate() {
        prop_assert_eq!(
            tb.value().to_bits(),
            ts.value().to_bits(),
            "lane {} sample {} time",
            lane,
            k
        );
        prop_assert_eq!(
            vb.value().to_bits(),
            vs.value().to_bits(),
            "lane {} sample {} voltage",
            lane,
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random ladders, random step mixes, and random batch sizes, the
    /// batched kernel reproduces the scalar path bit-for-bit on every lane.
    #[test]
    fn batch_is_bit_identical_to_scalar(
        r_board in 0.05..2.0f64,
        l_board in 1.0..500.0f64,
        c_bulk in 10.0..2000.0f64,
        r_die in 0.01..1.0f64,
        c_die in 10.0..2000.0f64,
        lanes in prop::collection::vec(lane_spec(), 1..7),
        dur_us in 1.5..6.0f64,
        decimate in 1..64usize,
    ) {
        let ladder = build_ladder(r_board, l_board, c_bulk, r_die, c_die);
        let mut sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(dur_us),
        ).unwrap();
        sim.decimate = decimate;
        let steps: Vec<LoadStep> = lanes
            .iter()
            .map(|l| LoadStep {
                from: Amps::new(l.from_a),
                to: Amps::new(l.to_a),
                at: Seconds::from_us(l.at_us),
                slew: Seconds::from_ns(l.slew_ns),
            })
            .collect();
        let batched = sim.run_batch(&ladder, &steps);
        prop_assert_eq!(batched.len(), steps.len());
        for (lane, (batch, step)) in batched.iter().zip(&steps).enumerate() {
            let scalar = sim.run(&ladder, *step);
            assert_lane_bit_identical(lane, batch, &scalar)?;
        }
    }

    /// Lanes with wildly different step magnitudes settle at different
    /// times; mixing a null step (settles almost immediately) with large
    /// steps exercises the early-exit compaction path, and the results
    /// still have to be bit-identical and in input order.
    #[test]
    fn early_exit_lanes_stay_bit_identical(
        big in 40.0..150.0f64,
        small in 0.5..5.0f64,
        slew_ns in 0.0..20.0f64,
    ) {
        let ladder = build_ladder(0.4, 120.0, 500.0, 0.2, 400.0);
        let sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(1.0),
            Seconds::from_us(8.0),
        ).unwrap();
        let quiescent = Amps::new(5.0);
        // Null step (exits first), small step, big step, and a second null
        // so two lanes exit on the same sweep of the compaction loop.
        let deltas = [0.0, small, big, 0.0];
        let steps: Vec<LoadStep> = deltas
            .iter()
            .map(|d| LoadStep {
                from: quiescent,
                to: quiescent + Amps::new(*d),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(slew_ns),
            })
            .collect();
        let batched = sim.run_batch(&ladder, &steps);
        prop_assert_eq!(batched.len(), steps.len());
        for (lane, (batch, step)) in batched.iter().zip(&steps).enumerate() {
            let scalar = sim.run(&ladder, *step);
            assert_lane_bit_identical(lane, batch, &scalar)?;
        }
    }
}

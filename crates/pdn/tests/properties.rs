//! Property-based tests for the PDN crate's electrical invariants.

use dg_pdn::complex::Complex;
use dg_pdn::elements::{CapBank, SeriesBranch};
use dg_pdn::impedance::ImpedanceAnalyzer;
use dg_pdn::ladder::{Ladder, VrOutputModel};
use dg_pdn::loadline::{LoadLine, VirusLevel, VirusLevelTable};
use dg_pdn::units::{Amps, Farads, Henries, Hertz, Ohms, Volts};
use proptest::prelude::*;

proptest! {
    /// Parallel combination satisfies the admittance identity
    /// `1/p = 1/z1 + 1/z2` and preserves passivity (Re ≥ 0). Note that near
    /// an L∥C tank resonance the parallel *magnitude* legitimately exceeds
    /// both operands, so no magnitude bound is asserted.
    #[test]
    fn parallel_satisfies_admittance_identity(
        r1 in 1e-3..10.0f64, x1 in -10.0..10.0f64,
        r2 in 1e-3..10.0f64, x2 in -10.0..10.0f64,
    ) {
        let z1 = Complex::new(r1, x1);
        let z2 = Complex::new(r2, x2);
        let p = z1.parallel(z2);
        let y = z1.recip() + z2.recip();
        let identity_err = (p.recip() - y).abs();
        prop_assert!(identity_err < 1e-6 * (1.0 + y.abs()), "err {identity_err}");
        // Combining passive elements stays passive.
        prop_assert!(p.re >= -1e-12);
        // For purely resistive operands, parallel ≤ min.
        let rp = Complex::real(r1).parallel(Complex::real(r2));
        prop_assert!(rp.abs() <= r1.min(r2) + 1e-12);
    }

    /// Complex division is the inverse of multiplication.
    #[test]
    fn complex_div_mul_round_trip(
        a in -100.0..100.0f64, b in -100.0..100.0f64,
        c in 0.1..100.0f64, d in 0.1..100.0f64,
    ) {
        let z = Complex::new(a, b);
        let w = Complex::new(c, d);
        let q = (z / w) * w;
        prop_assert!((q - z).abs() < 1e-6 * (1.0 + z.abs()));
    }

    /// Ladder impedance is finite and positive at every sane frequency.
    #[test]
    fn ladder_impedance_positive_finite(
        r_board in 0.05..2.0f64,
        l_board in 1.0..500.0f64,
        c_bulk in 10.0..2000.0f64,
        r_die in 0.01..1.0f64,
        c_die in 10.0..2000.0f64,
        freq in 1e3..1e9f64,
    ) {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
        let mut b = Ladder::builder("prop", vr);
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(r_board), Henries::from_ph(l_board)).unwrap(),
            CapBank::new(Farads::from_uf(c_bulk), Ohms::from_mohm(5.0), Henries::from_nh(2.0), 3).unwrap(),
        );
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(r_die), Henries::from_ph(5.0)).unwrap(),
            CapBank::new(Farads::from_nf(c_die), Ohms::from_mohm(1.0), Henries::from_ph(1.0), 1).unwrap(),
        );
        let ladder = b.build().unwrap();
        let z = ladder.impedance_magnitude(Hertz::new(freq));
        prop_assert!(z.value() > 0.0);
        prop_assert!(z.is_finite());
    }

    /// DC resistance equals the sum of the series path regardless of caps.
    #[test]
    fn dc_resistance_is_path_sum(
        r1 in 0.0..5.0f64,
        r2 in 0.0..5.0f64,
        ll in 0.5..3.0f64,
    ) {
        let vr = VrOutputModel::new(Ohms::from_mohm(ll), Hertz::new(300e3)).unwrap();
        let mut b = Ladder::builder("prop", vr);
        b.series("a", SeriesBranch::resistive(Ohms::from_mohm(r1)).unwrap());
        b.series("b", SeriesBranch::resistive(Ohms::from_mohm(r2)).unwrap());
        let ladder = b.build().unwrap();
        prop_assert!((ladder.dc_resistance().as_mohm() - (ll + r1 + r2)).abs() < 1e-9);
    }

    /// Adding a purely resistive series stage can only raise impedance
    /// at low frequency (below any resonance interaction).
    #[test]
    fn extra_series_resistance_raises_low_frequency_impedance(
        extra in 0.1..5.0f64,
    ) {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
        let base = {
            let mut b = Ladder::builder("base", vr);
            b.series("route", SeriesBranch::resistive(Ohms::from_mohm(0.5)).unwrap());
            b.build().unwrap()
        };
        let more = {
            let mut b = Ladder::builder("more", vr);
            b.series("route", SeriesBranch::resistive(Ohms::from_mohm(0.5)).unwrap());
            b.series("gate", SeriesBranch::resistive(Ohms::from_mohm(extra)).unwrap());
            b.build().unwrap()
        };
        let f = Hertz::new(10e3);
        prop_assert!(more.impedance_magnitude(f) > base.impedance_magnitude(f));
    }

    /// Load-line round trip: required_vcc(load_voltage(v, i), i) == v.
    #[test]
    fn loadline_round_trip(
        r in 0.5..5.0f64,
        v in 0.5..1.5f64,
        i in 0.0..150.0f64,
    ) {
        let ll = LoadLine::new(Ohms::from_mohm(r)).unwrap();
        let vload = ll.load_voltage(Volts::new(v), Amps::new(i));
        let back = ll.required_vcc(vload, Amps::new(i));
        prop_assert!((back.value() - v).abs() < 1e-12);
        // Guardband is non-negative and monotone in current.
        prop_assert!(ll.guardband(Amps::new(i)).value() >= 0.0);
        prop_assert!(ll.guardband(Amps::new(i + 1.0)) > ll.guardband(Amps::new(i)));
    }

    /// Virus-level guardbands are strictly increasing across levels.
    #[test]
    fn virus_guardbands_increase(
        base in 10.0..40.0f64,
        step1 in 5.0..50.0f64,
        step2 in 5.0..50.0f64,
        r in 1.0..3.0f64,
    ) {
        let ll = LoadLine::new(Ohms::from_mohm(r)).unwrap();
        let t = VirusLevelTable::new(
            ll,
            vec![
                VirusLevel::new("l1", Amps::new(base)),
                VirusLevel::new("l2", Amps::new(base + step1)),
                VirusLevel::new("l3", Amps::new(base + step1 + step2)),
            ],
        ).unwrap();
        prop_assert!(t.guardband_at(0) < t.guardband_at(1));
        prop_assert!(t.guardband_at(1) < t.guardband_at(2));
        // level_for is consistent: the chosen level covers the current.
        let probe = Amps::new(base * 0.9);
        let idx = t.level_for(probe).unwrap();
        prop_assert!(t.levels()[idx].icc_virus >= probe);
    }

    /// The impedance profile's peak is an upper bound for `at` queries.
    #[test]
    fn profile_peak_bounds_queries(freq in 1e4..1e9f64) {
        use dg_pdn::skylake::{PdnVariant, SkylakePdn};
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let profile = ImpedanceAnalyzer::default().profile(&pdn.ladder);
        prop_assert!(profile.at(Hertz::new(freq)) <= profile.peak().1);
        prop_assert!(profile.at(Hertz::new(freq)) >= profile.floor());
    }

    /// Cap bank impedance magnitude never falls below its effective ESR.
    #[test]
    fn cap_bank_bounded_by_esr(
        c in 1.0..1000.0f64,
        esr in 0.1..10.0f64,
        count in 1..40usize,
        freq in 1e3..1e9f64,
    ) {
        let bank = CapBank::new(
            Farads::from_uf(c),
            Ohms::from_mohm(esr),
            Henries::from_ph(100.0),
            count,
        ).unwrap();
        let z = bank.impedance(Hertz::new(freq)).abs();
        prop_assert!(z >= bank.effective_esr().value() - 1e-15);
    }
}

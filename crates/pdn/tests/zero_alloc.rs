//! Counting-allocator harness pinning the [`dg_pdn::BatchWorkspace`]
//! zero-allocation contract: once a workspace (and the crate's
//! coefficient/steady-state caches) are warm, repeated
//! `TransientSim::run_batch_in` calls on the same batch shape perform
//! **zero** heap allocations — no state buffers, no lane bookkeeping, no
//! waveform vectors, nothing.
//!
//! The file is its own test binary so its `#[global_allocator]` cannot
//! leak into other test processes, and it holds exactly one `#[test]` so
//! no concurrent test can allocate inside the measurement window.

use dg_pdn::simd::KernelWidth;
use dg_pdn::skylake::{PdnVariant, SkylakePdn};
use dg_pdn::transient::{LoadStep, TransientSim};
use dg_pdn::units::{Amps, Seconds, Volts};
use dg_pdn::BatchWorkspace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Allocations (and growth reallocations) observed while [`COUNTING`] is
/// armed. Frees are not counted: the contract under test is "no heap
/// traffic", and every allocation a steady-state call could make would
/// show up here first.
static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

/// Armed only inside the measurement window, so process start-up, cache
/// warm-up, and libtest bookkeeping are not charged to the kernel.
static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// update is a lock-free atomic increment, so the allocator never
// re-enters itself and upholds `GlobalAlloc`'s contract by inheritance.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching `System` routines.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr` was produced by the matching `System` routines.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_workspace_run_batch_performs_zero_allocations() {
    let pdn = SkylakePdn::build(PdnVariant::Bypassed);
    let sim = TransientSim {
        source: Volts::new(1.0),
        dt: Seconds::from_ns(2.0),
        duration: Seconds::from_us(5.0),
        decimate: 64,
    };
    // A multi-lane batch with lanes that settle at different times, so the
    // measured calls exercise settle detection and swap-compaction too.
    #[allow(clippy::cast_precision_loss)]
    let steps: Vec<LoadStep> = (0..8)
        .map(|k| LoadStep {
            from: Amps::new(5.0),
            to: Amps::new(8.0 + 4.0 * k as f64),
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(10.0),
        })
        .collect();
    let width = KernelWidth::dispatch();
    let mut ws = BatchWorkspace::new();

    // Warm-up: fills the ladder-coefficient and DC steady-state caches and
    // grows every workspace buffer to this batch shape. Capture reference
    // bits so the measured calls can be checked without allocating.
    let expected: Vec<(u64, u64, usize)> = sim
        .run_batch_in(&pdn.ladder, &steps, width, &mut ws)
        .iter()
        .map(|r| {
            (
                r.v_min.value().to_bits(),
                r.v_final.value().to_bits(),
                r.samples.len(),
            )
        })
        .collect();
    let _ = sim.run_batch_in(&pdn.ladder, &steps, width, &mut ws);

    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..16 {
        let out = sim.run_batch_in(&pdn.ladder, &steps, width, &mut ws);
        assert_eq!(out.len(), expected.len());
        for (r, &(v_min, v_final, n_samples)) in out.iter().zip(&expected) {
            assert_eq!(r.v_min.value().to_bits(), v_min);
            assert_eq!(r.v_final.value().to_bits(), v_final);
            assert_eq!(r.samples.len(), n_samples);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);

    let events = ALLOC_EVENTS.load(Ordering::SeqCst);
    assert_eq!(
        events, 0,
        "steady-state run_batch_in with a warm workspace performed {events} heap allocations"
    );
}

//! Numerical validation: the RK4 transient solver against closed-form
//! series-RLC theory.
//!
//! A single-stage ladder (source → R–L branch → C node → load) is the
//! classic series RLC circuit. For a current step ΔI at the node, the
//! voltage deviation obeys a damped second-order response with
//!
//! * natural frequency `ω₀ = 1/√(LC)`,
//! * damping ratio `ζ = (R/2)·√(C/L)`,
//!
//! For a *current* step drawn from the capacitor node, the voltage rings
//! around the new IR level; at light damping the first droop peaks a
//! quarter period after the step (`t_peak ≈ π/(2·ω_d)`) with magnitude
//! `ΔV_peak ≈ ΔI·(R + √(L/C)·exp(−ζ·π/2))`. The simulator must reproduce
//! these to within integration error.

use dg_pdn::elements::{CapBank, SeriesBranch};
use dg_pdn::ladder::{Ladder, VrOutputModel};
use dg_pdn::transient::{LoadStep, TransientSim};
use dg_pdn::units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};

/// Builds a single-section ladder with the VR modeled as an almost-ideal
/// source (tiny load-line, huge bandwidth) so the section dominates.
fn rlc_ladder(r_mohm: f64, l_ph: f64, c_nf: f64) -> Ladder {
    let vr = VrOutputModel::new(Ohms::from_mohm(1e-3), Hertz::from_ghz(100.0)).unwrap();
    let mut b = Ladder::builder("rlc", vr);
    b.series_with_decap(
        "section",
        SeriesBranch::new(Ohms::from_mohm(r_mohm), Henries::from_ph(l_ph)).unwrap(),
        CapBank::new(Farads::from_nf(c_nf), Ohms::ZERO, Henries::ZERO, 1).unwrap(),
    );
    b.build().unwrap()
}

struct Theory {
    zeta: f64,
    omega0: f64,
    r: f64,
    char_imp: f64,
}

fn theory(r_mohm: f64, l_ph: f64, c_nf: f64) -> Theory {
    let r = r_mohm * 1e-3;
    let l = l_ph * 1e-12;
    let c = c_nf * 1e-9;
    Theory {
        zeta: (r / 2.0) * (c / l).sqrt(),
        omega0: 1.0 / (l * c).sqrt(),
        r,
        char_imp: (l / c).sqrt(),
    }
}

fn run_step(ladder: &Ladder, delta_a: f64) -> dg_pdn::transient::TransientResult {
    let sim = TransientSim {
        source: Volts::new(1.0),
        dt: Seconds::from_ns(0.01),
        // Long enough for the lightest-damped case's ringing to fully
        // decay before the final (DC) sample.
        duration: Seconds::from_us(8.0),
        decimate: 8,
    };
    let step = LoadStep::step(Amps::ZERO, Amps::new(delta_a), Seconds::from_us(0.5));
    sim.run(ladder, step)
}

#[test]
fn underdamped_peak_matches_theory() {
    // R = 0.5 mΩ, L = 100 pH, C = 500 nF → ζ ≈ 0.018 (very underdamped).
    let (r, l, c) = (0.5, 100.0, 500.0);
    let th = theory(r, l, c);
    assert!(th.zeta < 0.1, "test expects light damping, ζ = {}", th.zeta);

    let ladder = rlc_ladder(r, l, c);
    let delta = 10.0;
    let result = run_step(&ladder, delta);

    // First droop at a quarter period: IR level plus the decayed
    // characteristic-impedance swing.
    let decay = (-th.zeta * std::f64::consts::FRAC_PI_2).exp();
    let expected = delta * (th.r + th.char_imp * decay);
    let measured = result.droop().value();
    let err = (measured - expected).abs() / expected;
    assert!(
        err < 0.08,
        "droop {measured:.6} V vs theory {expected:.6} V (err {err:.3})"
    );

    // Peak time ≈ π/(2·ω_d) after the step.
    let omega_d = th.omega0 * (1.0 - th.zeta * th.zeta).sqrt();
    let t_peak_theory = std::f64::consts::FRAC_PI_2 / omega_d;
    let t_peak_measured = result.t_min.value() - 0.5e-6;
    assert!(
        (t_peak_measured - t_peak_theory).abs() < 0.2 * t_peak_theory,
        "t_peak {t_peak_measured:.3e} vs theory {t_peak_theory:.3e}"
    );
}

#[test]
fn overdamped_step_has_no_overshoot() {
    // R = 20 mΩ, L = 20 pH, C = 2000 nF → ζ ≈ 3.2 (overdamped).
    let (r, l, c) = (20.0, 20.0, 2000.0);
    let th = theory(r, l, c);
    assert!(th.zeta > 1.0);

    let ladder = rlc_ladder(r, l, c);
    let delta = 10.0;
    let result = run_step(&ladder, delta);

    // No resonant overshoot: the droop settles to exactly the IR drop.
    let ir = delta * (th.r + 1e-6); // section R + the tiny source R
    let measured = result.droop().value();
    assert!(
        (measured - ir).abs() / ir < 0.05,
        "droop {measured:.6} vs IR {ir:.6}"
    );
    // Minimum equals the final value: monotone approach.
    assert!((result.v_min - result.v_final).abs().value() < 1e-4);
}

#[test]
fn dc_shift_is_exact_for_any_damping() {
    for (r, l, c) in [
        (0.5, 100.0, 500.0),
        (2.0, 50.0, 1000.0),
        (5.0, 20.0, 2000.0),
    ] {
        let ladder = rlc_ladder(r, l, c);
        let delta = 20.0;
        let result = run_step(&ladder, delta);
        let expected = delta * (r * 1e-3 + 1e-6);
        let measured = result.dc_shift().value();
        assert!(
            (measured - expected).abs() < 0.02 * expected,
            "R={r}: dc shift {measured:.6} vs {expected:.6}"
        );
    }
}

#[test]
fn impedance_peak_matches_rlc_resonance() {
    // The AC analyzer's resonant peak must sit at f₀ = ω₀/2π for a lightly
    // damped section.
    use dg_pdn::impedance::ImpedanceAnalyzer;
    let (r, l, c) = (0.2, 100.0, 500.0);
    let th = theory(r, l, c);
    let f0 = th.omega0 / (2.0 * std::f64::consts::PI);
    let ladder = rlc_ladder(r, l, c);
    let analyzer =
        ImpedanceAnalyzer::new(Hertz::new(f0 / 30.0), Hertz::new(f0 * 30.0), 1200).unwrap();
    let profile = analyzer.profile(&ladder);
    let (f_peak, _) = profile.peak();
    assert!(
        (f_peak.value() - f0).abs() < 0.1 * f0,
        "peak at {} vs theory {f0}",
        f_peak.value()
    );
}

//! Property-based tests for the PDN extension modules: package domains,
//! di/dt analysis, and the delivery-architecture models.

use dg_pdn::architectures::{delivery_loss, IvrModel, LdoModel, PdnArchitecture};
use dg_pdn::didt::{analyze, DidtEvent};
use dg_pdn::package::{PackageLayout, VoltageDomain};
use dg_pdn::skylake::{PdnVariant, SkylakePdn};
use dg_pdn::units::{Amps, Ohms, Seconds, Volts, Watts};
use proptest::prelude::*;

proptest! {
    /// Shorting any non-empty subset of domains conserves total bumps and
    /// never reduces the merged domain's capacity below the largest
    /// constituent's.
    #[test]
    fn shorting_conserves_bumps(mask in 1u8..31) {
        let layout = PackageLayout::skylake_mobile();
        let names = ["VCU", "VC0G", "VC1G", "VC2G", "VC3G"];
        let selected: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        let before = layout.total_bumps();
        let shorted = layout
            .short_domains("MERGED", |d| selected.contains(&d.name.as_str()))
            .expect("non-empty selection");
        prop_assert_eq!(shorted.total_bumps(), before);
        let merged_cap = shorted.current_capacity("MERGED").unwrap();
        for name in &selected {
            prop_assert!(merged_cap.value() >= layout.current_capacity(name).unwrap().value());
        }
        // Domain count shrinks by (selected - 1).
        prop_assert_eq!(
            shorted.domains().len(),
            layout.domains().len() - selected.len() + 1
        );
    }

    /// Per-bump current scales inversely with bump count.
    #[test]
    fn per_bump_current_inverse_in_bumps(bumps in 1usize..500, current in 0.1..200.0f64) {
        let d = VoltageDomain::new("d", bumps, false).unwrap();
        let layout = PackageLayout::new("p", vec![d], Amps::new(0.75)).unwrap();
        let per = layout.per_bump_current("d", Amps::new(current)).unwrap();
        prop_assert!((per.value() - current / bumps as f64).abs() < 1e-12);
        prop_assert_eq!(
            layout.within_em_limit("d", Amps::new(current)).unwrap(),
            per.value() <= 0.75
        );
    }

}

proptest! {
    // Each case runs two 30 µs transient simulations; keep the case count
    // low so debug-mode test runs stay fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Droop grows monotonically with the event's current step.
    #[test]
    fn droop_monotone_in_step(d1 in 5.0..30.0f64, extra in 1.0..30.0f64) {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let mk = |delta: f64| DidtEvent {
            name: "e".into(),
            delta: Amps::new(delta),
            slew: Seconds::from_ns(5.0),
        };
        let a = analyze(
            &pdn.ladder,
            &[mk(d1), mk(d1 + extra)],
            Volts::new(1.0),
            Volts::new(0.6),
            Amps::new(5.0),
        );
        prop_assert!(a.results[1].droop >= a.results[0].droop);
        prop_assert!(a.worst_droop >= a.results[1].droop);
    }

    /// IVR efficiency stays in (0, 1] and input power is never below the
    /// output for any load point.
    #[test]
    fn ivr_physical(load in 0.001..=1.0f64, out_w in 0.1..80.0f64) {
        let m = IvrModel::fivr();
        let eta = m.efficiency(load);
        prop_assert!(eta > 0.0 && eta <= 1.0);
        let input = m.input_power(Watts::new(out_w), load);
        prop_assert!(input.value() >= out_w);
    }

    /// LDO efficiency equals the voltage ratio for all valid outputs, and
    /// delivery loss is non-negative for every architecture.
    #[test]
    fn architecture_losses_nonnegative(
        out_w in 0.5..60.0f64,
        v_out in 0.65..1.25f64,
        load in 0.05..=1.0f64,
    ) {
        let ldo = LdoModel::skylake_x();
        let eta = ldo.efficiency(Volts::new(v_out));
        prop_assert!((eta - v_out / 1.35).abs() < 1e-12);
        for arch in [PdnArchitecture::Mbvr, PdnArchitecture::Ivr, PdnArchitecture::Ldo] {
            let loss = delivery_loss(arch, Watts::new(out_w), Volts::new(v_out), Ohms::from_mohm(1.6), load);
            prop_assert!(loss.value() >= 0.0, "{arch:?}: {loss}");
            prop_assert!(loss.is_finite());
        }
    }
}

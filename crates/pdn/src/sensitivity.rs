//! Impedance sensitivity analysis.
//!
//! Which PDN element should a designer spend budget on? This module
//! computes the relative sensitivity of the peak impedance (and of the
//! impedance at any chosen frequency) to each element value — the analysis
//! the related work (Engin, TEMC 2010; paper Sec. 8) performs to optimize
//! delivery networks against a target impedance.
//!
//! Sensitivities are logarithmic finite differences:
//! `S = (ΔZ/Z) / (Δp/p)`, evaluated with a small relative perturbation.

use crate::didt::DidtEvent;
use crate::impedance::ImpedanceAnalyzer;
use crate::ladder::Ladder;
use crate::transient::{LoadStep, TransientSim};
use crate::units::{Amps, Hertz, Ohms, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Relative perturbation used for the finite difference.
const REL_DELTA: f64 = 0.01;

/// Which element of a stage is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// The series resistance.
    SeriesR,
    /// The series inductance.
    SeriesL,
    /// The shunt bank's total capacitance.
    ShuntC,
    /// The shunt bank's ESR.
    ShuntEsr,
}

impl ElementKind {
    /// All perturbable kinds.
    pub const ALL: [ElementKind; 4] = [
        ElementKind::SeriesR,
        ElementKind::SeriesL,
        ElementKind::ShuntC,
        ElementKind::ShuntEsr,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ElementKind::SeriesR => "series R",
            ElementKind::SeriesL => "series L",
            ElementKind::ShuntC => "shunt C",
            ElementKind::ShuntEsr => "shunt ESR",
        }
    }
}

/// One sensitivity entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Stage name.
    pub stage: String,
    /// Which element was perturbed.
    pub element: ElementKind,
    /// Logarithmic sensitivity of the peak impedance to this element
    /// (positive: growing the element grows the peak).
    pub peak_sensitivity: f64,
}

/// Scales one element of a stage by `factor`, returning `None` if the
/// stage lacks that element (e.g. no shunt bank) or the element is zero
/// (a log-sensitivity to a zero value is undefined).
fn scaled(ladder: &Ladder, stage: &str, kind: ElementKind, factor: f64) -> Option<Ladder> {
    let original = ladder.stage(stage)?;
    match kind {
        ElementKind::SeriesR if original.series.resistance.value() == 0.0 => return None,
        ElementKind::SeriesL if original.series.inductance.value() == 0.0 => return None,
        ElementKind::ShuntC | ElementKind::ShuntEsr => match &original.shunt {
            None => return None,
            Some(bank) if kind == ElementKind::ShuntEsr && bank.esr.value() == 0.0 => return None,
            Some(_) => {}
        },
        _ => {}
    }
    ladder.with_mapped_stage(stage, |s| match kind {
        ElementKind::SeriesR => s.series.resistance = s.series.resistance * factor,
        ElementKind::SeriesL => s.series.inductance = s.series.inductance * factor,
        ElementKind::ShuntC => {
            if let Some(bank) = &mut s.shunt {
                bank.capacitance = bank.capacitance * factor;
            }
        }
        ElementKind::ShuntEsr => {
            if let Some(bank) = &mut s.shunt {
                bank.esr = bank.esr * factor;
            }
        }
    })
}

/// Computes the peak-impedance sensitivity of every element of every
/// stage, sorted by descending magnitude.
pub fn peak_sensitivities(ladder: &Ladder, analyzer: &ImpedanceAnalyzer) -> Vec<Sensitivity> {
    let base_peak = analyzer.profile(ladder).peak().1.value();
    let mut out = Vec::new();
    for stage in ladder.stages() {
        for kind in ElementKind::ALL {
            let Some(perturbed) = scaled(ladder, &stage.name, kind, 1.0 + REL_DELTA) else {
                continue;
            };
            let new_peak = analyzer.profile(&perturbed).peak().1.value();
            let s = ((new_peak - base_peak) / base_peak) / REL_DELTA;
            out.push(Sensitivity {
                stage: stage.name.clone(),
                element: kind,
                peak_sensitivity: s,
            });
        }
    }
    out.sort_by(|a, b| {
        b.peak_sensitivity
            .abs()
            .total_cmp(&a.peak_sensitivity.abs())
    });
    out
}

/// Droop sensitivities of one di/dt event: how strongly the worst droop
/// responds to the event's step magnitude and ramp time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroopSensitivity {
    /// Event name.
    pub event: String,
    /// Worst droop of the unperturbed event.
    pub base_droop: Volts,
    /// Logarithmic sensitivity of the droop to the step magnitude, or
    /// `None` when it is undefined (zero-delta event or zero base droop).
    pub delta_sensitivity: Option<f64>,
    /// Logarithmic sensitivity of the droop to the ramp time, or `None`
    /// when it is undefined (ideal step or zero base droop).
    pub slew_sensitivity: Option<f64>,
}

/// Logarithmic finite-difference sensitivity, `None` when the base value
/// cannot anchor a relative difference.
fn log_sensitivity(base: f64, perturbed: f64) -> Option<f64> {
    if base == 0.0 {
        return None;
    }
    Some(((perturbed - base) / base) / REL_DELTA)
}

/// Computes the droop sensitivity of every event in `events` on `ladder`,
/// in input order.
///
/// Each event contributes three lanes — unperturbed, step magnitude
/// scaled by `1 + REL_DELTA`, ramp time scaled by `1 + REL_DELTA` — and
/// the whole grid integrates as **one** lockstep
/// [`TransientSim::run_batch`] call, so the ladder's coefficients and DC
/// operating point are derived once and the per-lane results are
/// bit-identical to sequential scalar runs.
pub fn droop_sensitivities(
    ladder: &Ladder,
    sim: &TransientSim,
    quiescent: Amps,
    events: &[DidtEvent],
) -> Vec<DroopSensitivity> {
    let mut steps = Vec::with_capacity(events.len() * 3);
    for event in events {
        let base = LoadStep {
            from: quiescent,
            to: quiescent + event.delta,
            at: Seconds::from_us(1.0),
            slew: event.slew,
        };
        steps.push(base);
        steps.push(LoadStep {
            to: quiescent + event.delta * (1.0 + REL_DELTA),
            ..base
        });
        steps.push(LoadStep {
            slew: event.slew * (1.0 + REL_DELTA),
            ..base
        });
    }
    let runs = sim.run_batch(ladder, &steps);
    events
        .iter()
        .zip(runs.chunks_exact(3))
        .map(|(event, lanes)| {
            let (base, delta_run, slew_run) = match lanes {
                [b, d, s] => (b.droop().value(), d.droop().value(), s.droop().value()),
                // chunks_exact(3) yields exactly 3 lanes; keep the map total.
                _ => (0.0, 0.0, 0.0),
            };
            DroopSensitivity {
                event: event.name.clone(),
                base_droop: Volts::new(base),
                delta_sensitivity: if event.delta.value() == 0.0 {
                    None
                } else {
                    log_sensitivity(base, delta_run)
                },
                slew_sensitivity: if event.slew.value() == 0.0 {
                    None
                } else {
                    log_sensitivity(base, slew_run)
                },
            }
        })
        .collect()
}

/// The target impedance `Z_target = V_ripple / ΔI` (classic PDN design
/// rule): the allowed voltage ripple divided by the worst-case transient
/// current.
pub fn target_impedance(v_ripple: Volts, delta_i: Amps) -> Ohms {
    v_ripple / delta_i
}

/// Frequencies (from the analyzer's sweep) at which the ladder violates a
/// target impedance.
pub fn violations(
    ladder: &Ladder,
    analyzer: &ImpedanceAnalyzer,
    target: Ohms,
) -> Vec<(Hertz, Ohms)> {
    analyzer
        .profile(ladder)
        .points()
        .iter()
        .copied()
        .filter(|(_, z)| *z > target)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skylake::{PdnVariant, SkylakePdn};

    fn analyzer() -> ImpedanceAnalyzer {
        ImpedanceAnalyzer::new(Hertz::new(10e3), Hertz::from_mhz(500.0), 200).unwrap()
    }

    #[test]
    fn sensitivities_are_finite_and_sorted() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let s = peak_sensitivities(&pdn.ladder, &analyzer());
        assert!(!s.is_empty());
        for w in s.windows(2) {
            assert!(w[0].peak_sensitivity.abs() >= w[1].peak_sensitivity.abs());
        }
        for e in &s {
            assert!(e.peak_sensitivity.is_finite());
        }
    }

    #[test]
    fn power_gate_resistance_is_influential_when_gated() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let s = peak_sensitivities(&pdn.ladder, &analyzer());
        let gate = s
            .iter()
            .find(|e| e.stage == "power-gate" && e.element == ElementKind::SeriesR)
            .expect("gate sensitivity present");
        // The peak of the gated profile is the die anti-resonance behind
        // the gate; the gate's resistance *damps* it, so the sensitivity is
        // negative — but substantial either way.
        assert!(
            gate.peak_sensitivity.abs() > 0.02,
            "S = {}",
            gate.peak_sensitivity
        );
        // Meanwhile the mid-band (resistive region) impedance rises with
        // the gate resistance, which is what costs guardband at DC.
        let perturbed = scaled(&pdn.ladder, "power-gate", ElementKind::SeriesR, 1.5)
            .expect("gate stage perturbable");
        let f = Hertz::new(100e3);
        assert!(perturbed.impedance_magnitude(f) > pdn.ladder.impedance_magnitude(f));
    }

    #[test]
    fn growing_die_capacitance_lowers_peak() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let s = peak_sensitivities(&pdn.ladder, &analyzer());
        let die_c = s
            .iter()
            .find(|e| e.stage == "die" && e.element == ElementKind::ShuntC)
            .expect("die capacitance sensitivity present");
        assert!(
            die_c.peak_sensitivity < 0.0,
            "S = {}",
            die_c.peak_sensitivity
        );
    }

    #[test]
    fn target_impedance_rule() {
        let t = target_impedance(Volts::from_mv(50.0), Amps::new(25.0));
        assert!((t.as_mohm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gated_violates_tighter_target_than_bypassed() {
        let gated = SkylakePdn::build(PdnVariant::Gated);
        let bypassed = SkylakePdn::build(PdnVariant::Bypassed);
        let a = analyzer();
        let target = Ohms::from_mohm(4.0);
        let vg = violations(&gated.ladder, &a, target);
        let vb = violations(&bypassed.ladder, &a, target);
        assert!(
            vg.len() > vb.len(),
            "gated {} vs bypassed {}",
            vg.len(),
            vb.len()
        );
    }

    #[test]
    fn zero_valued_elements_are_skipped() {
        // The gated topology's "ungated-domain" stage has a zero-length
        // series branch: perturbing it must be skipped, not divide by zero.
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let s = peak_sensitivities(&pdn.ladder, &analyzer());
        assert!(!s
            .iter()
            .any(|e| e.stage == "ungated-domain" && e.element == ElementKind::SeriesR));
    }

    #[test]
    fn droop_sensitivities_reflect_physics() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(20.0),
            decimate: 128,
        };
        let events = vec![
            DidtEvent {
                name: "burst".to_owned(),
                delta: Amps::new(30.0),
                slew: Seconds::from_ns(5.0),
            },
            DidtEvent {
                name: "ideal".to_owned(),
                delta: Amps::new(20.0),
                slew: Seconds::ZERO,
            },
            DidtEvent {
                name: "null".to_owned(),
                delta: Amps::ZERO,
                slew: Seconds::from_ns(5.0),
            },
        ];
        let s = droop_sensitivities(&pdn.ladder, &sim, Amps::new(5.0), &events);
        assert_eq!(s.len(), events.len());
        // A bigger step droops more: positive magnitude sensitivity.
        let burst = &s[0];
        assert!(burst.base_droop > Volts::ZERO);
        assert!(burst.delta_sensitivity.unwrap_or(0.0) > 0.0);
        // An ideal step has no ramp to perturb.
        assert_eq!(s[1].slew_sensitivity, None);
        assert!(s[1].delta_sensitivity.is_some());
        // A zero-delta event has no droop and no defined sensitivities.
        assert_eq!(s[2].delta_sensitivity, None);
        // And the base droop matches a scalar run bit-for-bit.
        let scalar = sim
            .run(
                &pdn.ladder,
                LoadStep {
                    from: Amps::new(5.0),
                    to: Amps::new(35.0),
                    at: Seconds::from_us(1.0),
                    slew: Seconds::from_ns(5.0),
                },
            )
            .droop();
        assert_eq!(burst.base_droop.value().to_bits(), scalar.value().to_bits());
    }

    #[test]
    fn element_labels() {
        assert_eq!(ElementKind::SeriesR.label(), "series R");
        assert_eq!(ElementKind::ShuntC.label(), "shunt C");
    }
}

//! Batched structure-of-arrays transient kernel.
//!
//! Sweeps integrate hundreds of independent load-step scenarios against the
//! *same* ladder. The scalar kernel in [`crate::transient`] walks one
//! scenario at a time, and its node-recurrence derivative loop carries a
//! loop-carried dependency (`v_prev`) that defeats auto-vectorization. This
//! module steps B scenarios ("lanes") in lockstep instead: state is held in
//! lane-major structure-of-arrays buffers (`buf[k * b + col]` — state
//! variable `k`, lane column `col`), so the inner loop of every derivative
//! evaluation and RK4 combination runs across lanes, which are mutually
//! independent and therefore vectorize cleanly.
//!
//! Lanes that reach the settle band early stop paying derivative cost: a
//! retired column is swapped with the last active column and the active
//! width shrinks (swap-compaction), so the hot loops always run over a
//! dense prefix of live lanes.
//!
//! The batch path is bit-identical to the scalar path lane-for-lane: every
//! floating-point expression is evaluated in the same form and order per
//! lane as in [`TransientSim::run`], lanes never mix arithmetically, and
//! both paths share the memoized [`LadderCoeffs`] and DC steady states.

use crate::ladder::Ladder;
use crate::transient::{
    push_final_sample, LadderCoeffs, LoadStep, TransientResult, TransientSim, SETTLE_ABS_TOL_V,
    SETTLE_REL_TOL, SETTLE_WINDOW_S,
};
use crate::units::{Seconds, Volts};

/// Per-column integration bookkeeping for one live lane. Compacted together
/// with the state columns when a lane retires.
#[derive(Debug, Clone, Copy)]
struct LaneRun {
    /// Index of this lane in the caller's step slice (and in `outs`).
    lane: usize,
    step: LoadStep,
    v_settle_target: f64,
    settle_tol: f64,
    settle_after: f64,
    in_band: usize,
}

/// Per-lane accumulated outputs, indexed by original lane order (never
/// compacted, so results come back in input order).
#[derive(Debug, Clone)]
struct LaneOut {
    samples: Vec<(Seconds, Volts)>,
    v_min: Volts,
    t_min: Seconds,
    v_initial: Volts,
    v_final: Volts,
    t_exit: f64,
}

impl TransientSim {
    /// Runs `steps.len()` independent load-step scenarios against `ladder`
    /// in one lockstep batch, returning one [`TransientResult`] per input
    /// step, in input order.
    ///
    /// Each lane's result is bit-identical to what [`TransientSim::run`]
    /// returns for the same step — including lanes that settle and retire
    /// at different times — so callers may batch freely without perturbing
    /// the repo's determinism contract. An empty slice returns an empty
    /// vector.
    #[must_use]
    pub fn run_batch(&self, ladder: &Ladder, steps: &[LoadStep]) -> Vec<TransientResult> {
        let b = steps.len();
        if b == 0 {
            return Vec::new();
        }
        let coeffs = crate::cache::ladder_coeffs(ladder);
        let n = coeffs.nodes();
        let dt = self.dt.value();
        // Step counts and window sizes are small positive ratios; the
        // casts cannot truncate or lose sign in practice.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n_steps = (self.duration.value() / dt).ceil() as usize;
        let decimate = self.decimate.max(1);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let settle_steps = ((SETTLE_WINDOW_S / dt).ceil() as usize).max(1);
        let source = self.source.value();

        // Lane-major SoA state: row k (state variable) × column (lane).
        let mut state = vec![0.0; 2 * n * b];
        let mut cols: Vec<LaneRun> = Vec::with_capacity(b);
        let mut outs: Vec<LaneOut> = Vec::with_capacity(b);
        for (lane, &step) in steps.iter().enumerate() {
            let init = crate::cache::dc_steady_state(ladder, source, step.from.value(), || {
                coeffs.steady_state(self.source, step.from)
            });
            for (k, &x) in init.iter().enumerate() {
                state[k * b + lane] = x;
            }
            let v_initial = Volts::new(init[2 * n - 1]);
            let v_settle_target = coeffs.die_steady_voltage(self.source, step.to);
            let settle_tol =
                SETTLE_ABS_TOL_V.max(SETTLE_REL_TOL * (v_initial.value() - v_settle_target).abs());
            cols.push(LaneRun {
                lane,
                step,
                v_settle_target,
                settle_tol,
                settle_after: (step.at + step.slew).value(),
                in_band: 0,
            });
            let mut samples = Vec::with_capacity(n_steps / decimate + 2);
            samples.push((Seconds::ZERO, v_initial));
            outs.push(LaneOut {
                samples,
                v_min: v_initial,
                t_min: Seconds::ZERO,
                v_initial,
                v_final: v_initial,
                t_exit: 0.0,
            });
        }

        let mut k1 = vec![0.0; 2 * n * b];
        let mut k2 = vec![0.0; 2 * n * b];
        let mut k3 = vec![0.0; 2 * n * b];
        let mut k4 = vec![0.0; 2 * n * b];
        let mut tmp = vec![0.0; 2 * n * b];
        let mut i_now = vec![0.0; b];
        let mut i_mid = vec![0.0; b];
        let mut i_end = vec![0.0; b];
        let mut exits: Vec<usize> = Vec::with_capacity(b);

        let mut active = b;
        for s in 0..n_steps {
            if active == 0 {
                break;
            }
            #[allow(clippy::cast_precision_loss)]
            let t = s as f64 * dt;
            for (col, run) in cols.iter().enumerate().take(active) {
                i_mid[col] = run.step.current_at(Seconds::new(t + 0.5 * dt)).value();
                i_now[col] = run.step.current_at(Seconds::new(t)).value();
                i_end[col] = run.step.current_at(Seconds::new(t + dt)).value();
            }

            derivative_batch(&coeffs, source, &state, &i_now, &mut k1, b, active);
            axpy_batch(&state, &k1, 0.5 * dt, &mut tmp, b, active);
            derivative_batch(&coeffs, source, &tmp, &i_mid, &mut k2, b, active);
            axpy_batch(&state, &k2, 0.5 * dt, &mut tmp, b, active);
            derivative_batch(&coeffs, source, &tmp, &i_mid, &mut k3, b, active);
            axpy_batch(&state, &k3, dt, &mut tmp, b, active);
            derivative_batch(&coeffs, source, &tmp, &i_end, &mut k4, b, active);

            if active == b {
                // Full-width fast path: every column is live, so the
                // row-by-row `take(active)` masking collapses into one flat
                // loop over the whole SoA buffer. The per-element expression
                // is unchanged, so lanes stay bit-identical to the scalar
                // path.
                for ((((st, &a), &bv), &c), &d) in
                    state.iter_mut().zip(&k1).zip(&k2).zip(&k3).zip(&k4)
                {
                    *st += dt / 6.0 * (a + 2.0 * bv + 2.0 * c + d);
                }
            } else {
                for ((((srow, arow), brow), crow), drow) in state
                    .chunks_exact_mut(b)
                    .zip(k1.chunks_exact(b))
                    .zip(k2.chunks_exact(b))
                    .zip(k3.chunks_exact(b))
                    .zip(k4.chunks_exact(b))
                {
                    for ((((st, &a), &bv), &c), &d) in srow
                        .iter_mut()
                        .zip(arow)
                        .zip(brow)
                        .zip(crow)
                        .zip(drow)
                        .take(active)
                    {
                        *st += dt / 6.0 * (a + 2.0 * bv + 2.0 * c + d);
                    }
                }
            }

            let t_now = Seconds::new(t + dt);
            exits.clear();
            for (col, run) in cols.iter_mut().enumerate().take(active) {
                let out = &mut outs[run.lane];
                let v_die = Volts::new(state[(2 * n - 1) * b + col]);
                out.t_exit = t_now.value();
                if v_die < out.v_min {
                    out.v_min = v_die;
                    out.t_min = t_now;
                }
                if s % decimate == 0 {
                    out.samples.push((t_now, v_die));
                }
                if t_now.value() >= run.settle_after {
                    if (v_die.value() - run.v_settle_target).abs() <= run.settle_tol {
                        run.in_band += 1;
                        if run.in_band >= settle_steps {
                            exits.push(col);
                        }
                    } else {
                        run.in_band = 0;
                    }
                }
            }
            // Retire settled lanes: record final state, then swap the last
            // active column into the vacated slot. Descending column order
            // guarantees every swapped-in column survived this step.
            for &col in exits.iter().rev() {
                let lane = cols[col].lane;
                let out = &mut outs[lane];
                out.v_final = Volts::new(state[(2 * n - 1) * b + col]);
                push_final_sample(&mut out.samples, out.t_exit, out.v_final);
                let last = active - 1;
                if col != last {
                    for row in state.chunks_exact_mut(b) {
                        row.swap(col, last);
                    }
                    cols.swap(col, last);
                }
                active = last;
            }
        }

        // Survivors ran the full window (their t_exit is the last step's
        // timestamp, exactly as in the scalar path).
        for (col, run) in cols.iter().enumerate().take(active) {
            let out = &mut outs[run.lane];
            out.v_final = Volts::new(state[(2 * n - 1) * b + col]);
            push_final_sample(&mut out.samples, out.t_exit, out.v_final);
        }

        outs.into_iter()
            .map(|o| TransientResult {
                samples: o.samples,
                v_min: o.v_min,
                t_min: o.t_min,
                v_initial: o.v_initial,
                v_final: o.v_final,
            })
            .collect()
    }
}

/// Computes `d(state)/dt` for the first `active` lane columns into `out`.
///
/// Row-by-row mirror of [`LadderCoeffs::derivative`]: the forward branch
/// recurrence and the backward node recurrence walk the same coefficient
/// order, but the inner loop runs across lanes — which carry no
/// cross-lane dependency — so it auto-vectorizes where the scalar
/// recurrence cannot. Per lane, every expression is evaluated exactly as
/// in the scalar kernel.
fn derivative_batch(
    coeffs: &LadderCoeffs,
    source: f64,
    state: &[f64],
    i_load: &[f64],
    out: &mut [f64],
    b: usize,
    active: usize,
) {
    let n = coeffs.nodes();
    let (i_rows, v_rows) = state.split_at(n * b);
    let (di_rows, dv_rows) = out.split_at_mut(n * b);

    for k in 0..n {
        let ik = &i_rows[k * b..k * b + active];
        let vk = &v_rows[k * b..k * b + active];
        let dk = &mut di_rows[k * b..k * b + active];
        let rk = coeffs.r[k];
        let inv_lk = coeffs.inv_l[k];
        if k == 0 {
            for ((d, &vc), &ic) in dk.iter_mut().zip(vk).zip(ik) {
                *d = (source - vc - rk * ic) * inv_lk;
            }
        } else {
            let vp = &v_rows[(k - 1) * b..(k - 1) * b + active];
            for (((d, &vpc), &vc), &ic) in dk.iter_mut().zip(vp).zip(vk).zip(ik) {
                *d = (vpc - vc - rk * ic) * inv_lk;
            }
        }
    }
    // Walk backwards so each node sees its downstream neighbour's current;
    // the last node feeds the die load.
    for k in (0..n).rev() {
        let ik = &i_rows[k * b..k * b + active];
        let dvk = &mut dv_rows[k * b..k * b + active];
        let inv_ck = coeffs.inv_c[k];
        if k == n - 1 {
            for ((d, &ic), &il) in dvk.iter_mut().zip(ik).zip(i_load) {
                *d = (ic - il) * inv_ck;
            }
        } else {
            let i_next = &i_rows[(k + 1) * b..(k + 1) * b + active];
            for ((d, &ic), &inc) in dvk.iter_mut().zip(ik).zip(i_next) {
                *d = (ic - inc) * inv_ck;
            }
        }
    }
}

/// `out = x + a * scale` over the first `active` columns of every row —
/// the batched mirror of the scalar kernel's `axpy`.
fn axpy_batch(x: &[f64], a: &[f64], scale: f64, out: &mut [f64], b: usize, active: usize) {
    if active == b {
        // Full-width fast path: no masking needed, one flat vectorizable
        // loop over the whole buffer (same per-element expression).
        for ((o, &xi), &ai) in out.iter_mut().zip(x).zip(a) {
            *o = xi + ai * scale;
        }
        return;
    }
    for ((orow, xrow), arow) in out
        .chunks_exact_mut(b)
        .zip(x.chunks_exact(b))
        .zip(a.chunks_exact(b))
    {
        for ((o, &xi), &ai) in orow.iter_mut().zip(xrow).zip(arow).take(active) {
            *o = xi + ai * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{CapBank, SeriesBranch};
    use crate::ladder::VrOutputModel;
    use crate::units::{Amps, Farads, Henries, Hertz, Ohms};

    fn small_ladder() -> Ladder {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
        let mut b = Ladder::builder("t", vr);
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(0.3), Henries::from_ph(150.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(500.0),
                Ohms::from_mohm(5.0),
                Henries::from_nh(2.0),
                1,
            )
            .unwrap(),
        );
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(0.4), Henries::from_ph(20.0)).unwrap(),
            CapBank::new(
                Farads::from_nf(200.0),
                Ohms::from_mohm(0.3),
                Henries::from_ph(1.0),
                1,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    fn assert_results_bit_identical(a: &TransientResult, b: &TransientResult) {
        assert_eq!(a.v_initial.value().to_bits(), b.v_initial.value().to_bits());
        assert_eq!(a.v_final.value().to_bits(), b.v_final.value().to_bits());
        assert_eq!(a.v_min.value().to_bits(), b.v_min.value().to_bits());
        assert_eq!(a.t_min.value().to_bits(), b.t_min.value().to_bits());
        assert_eq!(a.samples.len(), b.samples.len());
        for ((ta, va), (tb, vb)) in a.samples.iter().zip(&b.samples) {
            assert_eq!(ta.value().to_bits(), tb.value().to_bits());
            assert_eq!(va.value().to_bits(), vb.value().to_bits());
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        let sim = TransientSim::droop_capture(Volts::new(1.0));
        assert!(sim.run_batch(&small_ladder(), &[]).is_empty());
    }

    #[test]
    fn batch_matches_scalar_lane_for_lane() {
        let ladder = small_ladder();
        let sim = TransientSim {
            source: Volts::new(1.05),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(20.0),
            decimate: 64,
        };
        // Deltas chosen so lanes settle at different times (small steps
        // settle fast, large ones ring longer), exercising mid-run
        // swap-compaction.
        let steps: Vec<LoadStep> = [2.0, 45.0, 0.0, 18.0, 30.0]
            .iter()
            .map(|&delta| LoadStep {
                from: Amps::new(5.0),
                to: Amps::new(5.0 + delta),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(10.0),
            })
            .collect();
        let batch = sim.run_batch(&ladder, &steps);
        assert_eq!(batch.len(), steps.len());
        for (step, got) in steps.iter().zip(&batch) {
            let scalar = sim.run(&ladder, *step);
            assert_results_bit_identical(&scalar, got);
        }
    }

    #[test]
    fn single_lane_batch_matches_scalar() {
        let ladder = small_ladder();
        let sim = TransientSim::droop_capture(Volts::new(1.0));
        let step = LoadStep::step(Amps::new(1.0), Amps::new(40.0), Seconds::from_us(1.0));
        let batch = sim.run_batch(&ladder, &[step]);
        assert_eq!(batch.len(), 1);
        assert_results_bit_identical(&sim.run(&ladder, step), &batch[0]);
    }

    #[test]
    fn final_sample_timestamps_are_unique() {
        let ladder = small_ladder();
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(30.0),
            decimate: 1,
        };
        let step = LoadStep {
            from: Amps::new(5.0),
            to: Amps::new(25.0),
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(10.0),
        };
        for r in sim.run_batch(&ladder, &[step]) {
            for pair in r.samples.windows(2) {
                assert!(
                    pair[0].0.value().to_bits() != pair[1].0.value().to_bits(),
                    "duplicate sample timestamp {}",
                    pair[0].0.value()
                );
            }
        }
    }
}

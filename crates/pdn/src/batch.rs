//! Batched structure-of-arrays transient kernel with explicit-SIMD lanes.
//!
//! Sweeps integrate hundreds of independent load-step scenarios against the
//! *same* ladder. This module steps B scenarios ("lanes") in lockstep:
//! state is held in lane-major structure-of-arrays buffers
//! (`buf[k * b + col]` — state variable `k`, lane column `col`), so the
//! inner loop of every derivative evaluation and RK4 combination runs
//! across lanes, which are mutually independent.
//!
//! Since PR 9 those inner loops are written against the explicit
//! [`crate::simd::Lanes`] wrapper instead of relying on auto-vectorization:
//! [`TransientSim::run_batch`] picks a [`KernelWidth`] once per batch (the
//! *calibrated* [`KernelWidth::dispatch`] choice — x4 on AVX-512 hosts,
//! where downclocking makes x8 measurably slower) and hands the whole
//! integration loop to a width-specific entry point compiled under the
//! matching `target_feature`.
//! Columns beyond the last full vector run the scalar `f64` implementation
//! of the same generic code. Because every lane operation is a pure
//! per-element IEEE-754 expression in the same form and order as the
//! scalar kernel — lanes never mix, nothing fuses into FMA — every lane is
//! bit-identical to the scalar path at every width.
//!
//! Lanes that reach the settle band early stop paying derivative cost: a
//! retired column is swapped with the last active column and the active
//! width shrinks (swap-compaction), so the hot loops always run over a
//! dense prefix of live lanes.
//!
//! This is also the *only* kernel: [`TransientSim::run`] is a thin wrapper
//! over a 1-lane batch, so there is exactly one integration loop to
//! optimize and test.

use crate::ladder::Ladder;
use crate::simd::{F64x4, F64x8, KernelWidth, Lanes};
use crate::transient::{
    push_final_sample, LadderCoeffs, LoadStep, TransientResult, TransientSim, SETTLE_ABS_TOL_V,
    SETTLE_REL_TOL, SETTLE_WINDOW_S,
};
use crate::units::{Seconds, Volts};

/// Per-column integration bookkeeping for one live lane. Compacted together
/// with the state columns when a lane retires.
#[derive(Debug, Clone, Copy)]
struct LaneRun {
    /// Index of this lane in the caller's step slice (and in `outs`).
    lane: usize,
    step: LoadStep,
    v_settle_target: f64,
    settle_tol: f64,
    settle_after: f64,
    in_band: usize,
}

/// Reusable scratch for the batched transient kernel: every buffer
/// [`TransientSim::run_batch_in`] touches — the structure-of-arrays state
/// and RK4 stage buffers, the per-lane current samples, the lane
/// bookkeeping, and the result records themselves (including each lane's
/// waveform `Vec`) — held together so a warm workspace makes a
/// steady-state batch run perform **zero heap allocations**.
///
/// Buffers grow monotonically (a bigger batch or ladder enlarges them
/// once; smaller runs reuse the prefix) and waveform vectors are cleared,
/// never dropped, so their capacity survives between calls. The zero-alloc
/// contract is pinned by a counting-allocator harness in
/// `tests/zero_alloc.rs`.
///
/// Ownership rules:
///
/// * A workspace is **not** shared: one `&mut BatchWorkspace` per caller
///   at a time, typically one per worker thread via
///   [`with_thread_workspace`].
/// * Results returned by [`TransientSim::run_batch_in`] are *views into
///   the workspace* — they borrow it and are overwritten by the next
///   batch run through the same workspace. Callers that need owned
///   results clone (which is exactly what the compatibility wrapper
///   [`TransientSim::run_batch`] does).
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    state: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
    i_now: Vec<f64>,
    i_mid: Vec<f64>,
    i_end: Vec<f64>,
    cols: Vec<LaneRun>,
    results: Vec<TransientResult>,
    t_exit: Vec<f64>,
    exits: Vec<usize>,
}

impl BatchWorkspace {
    /// An empty workspace; buffers are sized on first use and grow
    /// monotonically thereafter.
    #[must_use]
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Sizes every buffer for a batch of `b` lanes over `rows` SoA
    /// entries (`2 * nodes * b`), clearing per-run bookkeeping while
    /// preserving capacity. Allocates only when a dimension grows past
    /// anything this workspace has seen.
    fn prepare(&mut self, rows: usize, b: usize) {
        for buf in [
            &mut self.state,
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
        ] {
            if buf.len() < rows {
                buf.resize(rows, 0.0);
            }
        }
        for buf in [&mut self.i_now, &mut self.i_mid, &mut self.i_end] {
            if buf.len() < b {
                buf.resize(b, 0.0);
            }
        }
        if self.t_exit.len() < b {
            self.t_exit.resize(b, 0.0);
        }
        self.cols.clear();
        self.cols.reserve(b);
        self.exits.clear();
        self.exits.reserve(b);
        while self.results.len() < b {
            self.results.push(TransientResult {
                samples: Vec::new(),
                v_min: Volts::ZERO,
                t_min: Seconds::ZERO,
                v_initial: Volts::ZERO,
                v_final: Volts::ZERO,
            });
        }
        for out in self.results.iter_mut().take(b) {
            out.samples.clear();
        }
    }
}

thread_local! {
    /// One warm workspace per thread: engine workers (and the serve
    /// tier's handler threads) reuse it across every batch they
    /// integrate, so steady-state sweeps stop paying heap round-trips.
    static WORKSPACE: std::cell::RefCell<BatchWorkspace> =
        std::cell::RefCell::new(BatchWorkspace::new());
}

/// Runs `f` with the current thread's warm [`BatchWorkspace`].
///
/// Re-entrant calls (an `f` that itself batches through the thread
/// workspace) fall back to a fresh scratch workspace instead of
/// panicking on the nested borrow, so the helper is safe to use from any
/// library code path.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut BatchWorkspace) -> R) -> R {
    WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut BatchWorkspace::new()),
    })
}

/// Everything the width-dispatched integration loop touches, bundled so the
/// `#[target_feature]` entry points stay non-generic while the loop itself
/// is generic over the lane type. All buffers are borrowed from a
/// [`BatchWorkspace`]; the kernel owns no heap memory of its own.
struct Kernel<'a> {
    coeffs: &'a LadderCoeffs,
    source: f64,
    dt: f64,
    b: usize,
    n_steps: usize,
    decimate: usize,
    settle_steps: usize,
    state: &'a mut [f64],
    k1: &'a mut [f64],
    k2: &'a mut [f64],
    k3: &'a mut [f64],
    k4: &'a mut [f64],
    tmp: &'a mut [f64],
    i_now: &'a mut [f64],
    i_mid: &'a mut [f64],
    i_end: &'a mut [f64],
    cols: &'a mut Vec<LaneRun>,
    results: &'a mut [TransientResult],
    t_exit: &'a mut [f64],
    exits: &'a mut Vec<usize>,
}

impl TransientSim {
    /// Runs `steps.len()` independent load-step scenarios against `ladder`
    /// in one lockstep batch, returning one [`TransientResult`] per input
    /// step, in input order.
    ///
    /// The kernel width is chosen once per call via
    /// [`KernelWidth::dispatch`] — the *calibrated* choice, which prefers
    /// x4 over x8 on AVX-512 hosts where frequency downclocking makes the
    /// wider kernel slower (measured in `BENCH_pdn.json`). Each lane's
    /// result is bit-identical at every width — including lanes that
    /// settle and retire at different times — so the width choice can
    /// never perturb the repo's determinism contract. An empty slice
    /// returns an empty vector.
    ///
    /// Heap traffic: this convenience wrapper borrows the calling
    /// thread's warm [`BatchWorkspace`] and clones the results out, so it
    /// still allocates for the returned `Vec`s. Hot paths that can hold a
    /// workspace should call [`TransientSim::run_batch_in`] directly.
    #[must_use]
    pub fn run_batch(&self, ladder: &Ladder, steps: &[LoadStep]) -> Vec<TransientResult> {
        self.run_batch_with_width(ladder, steps, KernelWidth::dispatch())
    }

    /// [`TransientSim::run_batch`] with an explicit kernel width.
    ///
    /// A request wider than the running CPU supports falls back to the
    /// *portable* compilation of the same generic kernel (no AVX codegen),
    /// so the wide data path — vector chunks plus scalar remainder — can be
    /// exercised and benchmarked on any machine. Results are bit-identical
    /// to [`KernelWidth::Scalar`] in every case.
    #[must_use]
    pub fn run_batch_with_width(
        &self,
        ladder: &Ladder,
        steps: &[LoadStep],
        width: KernelWidth,
    ) -> Vec<TransientResult> {
        with_thread_workspace(|ws| self.run_batch_in(ladder, steps, width, ws).to_vec())
    }

    /// The allocation-free core of [`TransientSim::run_batch`]: integrates
    /// `steps.len()` lanes into `ws` and returns the per-lane results as a
    /// view into the workspace (input order, one entry per step).
    ///
    /// After `ws` has warmed up on a given batch shape — same or larger
    /// ladder and lane count, warm coefficient/steady-state caches — a
    /// call performs **zero heap allocations**: every state buffer, the
    /// lane bookkeeping, and each result's waveform `Vec` are reused in
    /// place. The returned slice borrows `ws` and is overwritten by the
    /// next batch run through the same workspace.
    ///
    /// Results are bit-identical to [`TransientSim::run_batch`] at every
    /// width; the wrappers are thin clones of this path.
    #[must_use]
    pub fn run_batch_in<'w>(
        &self,
        ladder: &Ladder,
        steps: &[LoadStep],
        width: KernelWidth,
        ws: &'w mut BatchWorkspace,
    ) -> &'w [TransientResult] {
        let b = steps.len();
        if b == 0 {
            return &[];
        }
        let coeffs = crate::cache::ladder_coeffs(ladder);
        let n = coeffs.nodes();
        let dt = self.dt.value();
        // Step counts and window sizes are small positive ratios; the
        // casts cannot truncate or lose sign in practice.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n_steps = (self.duration.value() / dt).ceil() as usize;
        let decimate = self.decimate.max(1);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let settle_steps = ((SETTLE_WINDOW_S / dt).ceil() as usize).max(1);
        let source = self.source.value();

        let rows = 2 * n * b;
        ws.prepare(rows, b);

        // Lane-major SoA state: row k (state variable) × column (lane).
        for (lane, &step) in steps.iter().enumerate() {
            let init = crate::cache::dc_steady_state(ladder, source, step.from.value(), || {
                coeffs.steady_state(self.source, step.from)
            });
            for (k, &x) in init.iter().enumerate() {
                ws.state[k * b + lane] = x;
            }
            let v_initial = Volts::new(init[2 * n - 1]);
            // The settle target is the die entry of the post-step DC
            // solution — the same solve `dc_steady_state` already caches,
            // so a warm sweep reads it back alloc-free instead of paying a
            // fresh `steady_state` vector per lane per call. Bit-identical
            // to `coeffs.die_steady_voltage(self.source, step.to)`.
            let target = crate::cache::dc_steady_state(ladder, source, step.to.value(), || {
                coeffs.steady_state(self.source, step.to)
            });
            let v_settle_target = target.get(2 * n - 1).copied().unwrap_or(source);
            let settle_tol =
                SETTLE_ABS_TOL_V.max(SETTLE_REL_TOL * (v_initial.value() - v_settle_target).abs());
            ws.cols.push(LaneRun {
                lane,
                step,
                v_settle_target,
                settle_tol,
                settle_after: (step.at + step.slew).value(),
                in_band: 0,
            });
            let out = &mut ws.results[lane];
            out.samples.reserve(n_steps / decimate + 2);
            out.samples.push((Seconds::ZERO, v_initial));
            out.v_min = v_initial;
            out.t_min = Seconds::ZERO;
            out.v_initial = v_initial;
            out.v_final = v_initial;
            ws.t_exit[lane] = 0.0;
        }

        let mut kernel = Kernel {
            coeffs: &coeffs,
            source,
            dt,
            b,
            n_steps,
            decimate,
            settle_steps,
            state: &mut ws.state[..rows],
            k1: &mut ws.k1[..rows],
            k2: &mut ws.k2[..rows],
            k3: &mut ws.k3[..rows],
            k4: &mut ws.k4[..rows],
            tmp: &mut ws.tmp[..rows],
            i_now: &mut ws.i_now[..b],
            i_mid: &mut ws.i_mid[..b],
            i_end: &mut ws.i_end[..b],
            cols: &mut ws.cols,
            results: &mut ws.results[..b],
            t_exit: &mut ws.t_exit[..b],
            exits: &mut ws.exits,
        };
        match width {
            KernelWidth::Scalar => kernel.integrate::<f64>(),
            KernelWidth::X4 => integrate_x4(&mut kernel),
            KernelWidth::X8 => integrate_x8(&mut kernel),
        }

        &ws.results[..b]
    }
}

/// Runs the 4-lane kernel — under AVX2 codegen when the CPU has it, else
/// the portable compilation of the same generic code (so the 4-lane data
/// path is exercisable anywhere).
#[cfg(target_arch = "x86_64")]
fn integrate_x4(kernel: &mut Kernel<'_>) {
    #[target_feature(enable = "avx2")]
    fn inner(kernel: &mut Kernel<'_>) {
        kernel.integrate::<F64x4>();
    }
    if KernelWidth::detect() >= KernelWidth::X4 {
        // SAFETY: `detect()` returns X4 or wider only when the running CPU
        // reports AVX2, so the feature-gated entry point is sound here.
        unsafe { inner(kernel) }
    } else {
        kernel.integrate::<F64x4>();
    }
}

/// Portable 4-lane kernel for non-x86-64 targets (same generic code, no
/// feature-gated codegen).
#[cfg(not(target_arch = "x86_64"))]
fn integrate_x4(kernel: &mut Kernel<'_>) {
    kernel.integrate::<F64x4>();
}

/// Runs the 8-lane kernel — under AVX-512F codegen when the CPU has it,
/// else the portable compilation of the same generic code.
#[cfg(target_arch = "x86_64")]
fn integrate_x8(kernel: &mut Kernel<'_>) {
    #[target_feature(enable = "avx512f")]
    fn inner(kernel: &mut Kernel<'_>) {
        kernel.integrate::<F64x8>();
    }
    if KernelWidth::detect() >= KernelWidth::X8 {
        // SAFETY: `detect()` returns X8 only when the running CPU reports
        // AVX-512F, so the feature-gated entry point is sound here.
        unsafe { inner(kernel) }
    } else {
        kernel.integrate::<F64x8>();
    }
}

/// Portable 8-lane kernel for non-x86-64 targets.
#[cfg(not(target_arch = "x86_64"))]
fn integrate_x8(kernel: &mut Kernel<'_>) {
    kernel.integrate::<F64x8>();
}

impl Kernel<'_> {
    /// The whole integration loop — RK4 stages, settle detection, and
    /// swap-compaction — generic over the lane type. `#[inline(always)]`
    /// so each width-specific entry point gets its own codegen under its
    /// own target features.
    #[inline(always)]
    fn integrate<L: Lanes>(&mut self) {
        let b = self.b;
        let n = self.coeffs.nodes();
        let dt = self.dt;
        let source = self.source;
        let mut active = b;
        for s in 0..self.n_steps {
            if active == 0 {
                break;
            }
            #[allow(clippy::cast_precision_loss)]
            let t = s as f64 * dt;
            for (col, run) in self.cols.iter().enumerate().take(active) {
                self.i_mid[col] = run.step.current_at(Seconds::new(t + 0.5 * dt)).value();
                self.i_now[col] = run.step.current_at(Seconds::new(t)).value();
                self.i_end[col] = run.step.current_at(Seconds::new(t + dt)).value();
            }

            derivative_rows::<L>(
                self.coeffs,
                source,
                self.state,
                self.i_now,
                self.k1,
                b,
                active,
            );
            axpy_rows::<L>(self.state, self.k1, 0.5 * dt, self.tmp, b, active);
            derivative_rows::<L>(
                self.coeffs,
                source,
                self.tmp,
                self.i_mid,
                self.k2,
                b,
                active,
            );
            axpy_rows::<L>(self.state, self.k2, 0.5 * dt, self.tmp, b, active);
            derivative_rows::<L>(
                self.coeffs,
                source,
                self.tmp,
                self.i_mid,
                self.k3,
                b,
                active,
            );
            axpy_rows::<L>(self.state, self.k3, dt, self.tmp, b, active);
            derivative_rows::<L>(
                self.coeffs,
                source,
                self.tmp,
                self.i_end,
                self.k4,
                b,
                active,
            );

            rk4_combine_rows::<L>(
                self.state, self.k1, self.k2, self.k3, self.k4, dt, b, active,
            );

            let t_now = Seconds::new(t + dt);
            self.exits.clear();
            for (col, run) in self.cols.iter_mut().enumerate().take(active) {
                let out = &mut self.results[run.lane];
                let v_die = Volts::new(self.state[(2 * n - 1) * b + col]);
                self.t_exit[run.lane] = t_now.value();
                if v_die < out.v_min {
                    out.v_min = v_die;
                    out.t_min = t_now;
                }
                if s % self.decimate == 0 {
                    out.samples.push((t_now, v_die));
                }
                if t_now.value() >= run.settle_after {
                    if (v_die.value() - run.v_settle_target).abs() <= run.settle_tol {
                        run.in_band += 1;
                        if run.in_band >= self.settle_steps {
                            self.exits.push(col);
                        }
                    } else {
                        run.in_band = 0;
                    }
                }
            }
            // Retire settled lanes: record final state, then swap the last
            // active column into the vacated slot. Descending column order
            // guarantees every swapped-in column survived this step.
            for &col in self.exits.iter().rev() {
                let lane = self.cols[col].lane;
                let out = &mut self.results[lane];
                out.v_final = Volts::new(self.state[(2 * n - 1) * b + col]);
                push_final_sample(&mut out.samples, self.t_exit[lane], out.v_final);
                let last = active - 1;
                if col != last {
                    for row in self.state.chunks_exact_mut(b) {
                        row.swap(col, last);
                    }
                    self.cols.swap(col, last);
                }
                active = last;
            }
        }

        // Survivors ran the full window (their t_exit is the last step's
        // timestamp, exactly as before early-exit retirement).
        for (col, run) in self.cols.iter().enumerate().take(active) {
            let out = &mut self.results[run.lane];
            out.v_final = Volts::new(self.state[(2 * n - 1) * b + col]);
            push_final_sample(&mut out.samples, self.t_exit[run.lane], out.v_final);
        }
    }
}

/// Computes `d(state)/dt` for the first `active` lane columns into `out`.
///
/// Row-by-row mirror of [`LadderCoeffs::derivative`]: the forward branch
/// recurrence and the backward node recurrence walk the same coefficient
/// order, but the inner loop runs across lanes — which carry no cross-lane
/// dependency — in explicit `L::WIDTH`-wide vectors plus a scalar
/// remainder. Per lane, every expression is evaluated exactly as in the
/// scalar kernel.
#[inline(always)]
fn derivative_rows<L: Lanes>(
    coeffs: &LadderCoeffs,
    source: f64,
    state: &[f64],
    i_load: &[f64],
    out: &mut [f64],
    b: usize,
    active: usize,
) {
    let n = coeffs.nodes();
    let (i_rows, v_rows) = state.split_at(n * b);
    let (di_rows, dv_rows) = out.split_at_mut(n * b);

    for k in 0..n {
        let ik = &i_rows[k * b..k * b + active];
        let vk = &v_rows[k * b..k * b + active];
        let dk = &mut di_rows[k * b..k * b + active];
        let rk = coeffs.r[k];
        let inv_lk = coeffs.inv_l[k];
        if k == 0 {
            branch_head_span::<L>(source, vk, ik, rk, inv_lk, dk);
        } else {
            let vp = &v_rows[(k - 1) * b..(k - 1) * b + active];
            branch_span::<L>(vp, vk, ik, rk, inv_lk, dk);
        }
    }
    // Walk backwards so each node sees its downstream neighbour's current;
    // the last node feeds the die load.
    for k in (0..n).rev() {
        let ik = &i_rows[k * b..k * b + active];
        let dvk = &mut dv_rows[k * b..k * b + active];
        let inv_ck = coeffs.inv_c[k];
        if k == n - 1 {
            sub_scale_span::<L>(ik, &i_load[..active], inv_ck, dvk);
        } else {
            let i_next = &i_rows[(k + 1) * b..(k + 1) * b + active];
            sub_scale_span::<L>(ik, i_next, inv_ck, dvk);
        }
    }
}

/// `out = (source - v - r·i) · inv_l` across one span — the head branch,
/// whose upstream voltage is the VR setpoint.
#[inline(always)]
fn branch_head_span<L: Lanes>(
    source: f64,
    v: &[f64],
    i: &[f64],
    r: f64,
    inv_l: f64,
    out: &mut [f64],
) {
    let sv = L::splat(source);
    let rv = L::splat(r);
    let lv = L::splat(inv_l);
    let mut oc = out.chunks_exact_mut(L::WIDTH);
    let mut vc = v.chunks_exact(L::WIDTH);
    let mut ic = i.chunks_exact(L::WIDTH);
    for ((ow, vw), iw) in (&mut oc).zip(&mut vc).zip(&mut ic) {
        sv.sub(L::load(vw))
            .sub(rv.mul(L::load(iw)))
            .mul(lv)
            .store(ow);
    }
    for ((o, &vx), &ix) in oc
        .into_remainder()
        .iter_mut()
        .zip(vc.remainder())
        .zip(ic.remainder())
    {
        *o = (source - vx - r * ix) * inv_l;
    }
}

/// `out = (v_prev - v - r·i) · inv_l` across one span — an interior branch
/// fed by the previous node's voltage.
#[inline(always)]
fn branch_span<L: Lanes>(
    v_prev: &[f64],
    v: &[f64],
    i: &[f64],
    r: f64,
    inv_l: f64,
    out: &mut [f64],
) {
    let rv = L::splat(r);
    let lv = L::splat(inv_l);
    let mut oc = out.chunks_exact_mut(L::WIDTH);
    let mut pc = v_prev.chunks_exact(L::WIDTH);
    let mut vc = v.chunks_exact(L::WIDTH);
    let mut ic = i.chunks_exact(L::WIDTH);
    for (((ow, pw), vw), iw) in (&mut oc).zip(&mut pc).zip(&mut vc).zip(&mut ic) {
        L::load(pw)
            .sub(L::load(vw))
            .sub(rv.mul(L::load(iw)))
            .mul(lv)
            .store(ow);
    }
    for (((o, &px), &vx), &ix) in oc
        .into_remainder()
        .iter_mut()
        .zip(pc.remainder())
        .zip(vc.remainder())
        .zip(ic.remainder())
    {
        *o = (px - vx - r * ix) * inv_l;
    }
}

/// `out = (a - b) · scale` across one span — the backward node recurrence
/// (`b` is the downstream current row, or the die load for the last node).
#[inline(always)]
fn sub_scale_span<L: Lanes>(a: &[f64], b: &[f64], scale: f64, out: &mut [f64]) {
    let sv = L::splat(scale);
    let mut oc = out.chunks_exact_mut(L::WIDTH);
    let mut ac = a.chunks_exact(L::WIDTH);
    let mut bc = b.chunks_exact(L::WIDTH);
    for ((ow, aw), bw) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        L::load(aw).sub(L::load(bw)).mul(sv).store(ow);
    }
    for ((o, &ax), &bx) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = (ax - bx) * scale;
    }
}

/// `out = x + a · scale` over the first `active` columns of every row —
/// the batched mirror of the scalar kernel's `axpy`.
#[inline(always)]
fn axpy_rows<L: Lanes>(x: &[f64], a: &[f64], scale: f64, out: &mut [f64], b: usize, active: usize) {
    if active == b {
        // Full-width fast path: no masking needed, one flat span over the
        // whole buffer (same per-element expression).
        axpy_span::<L>(x, a, scale, out);
        return;
    }
    for ((orow, xrow), arow) in out
        .chunks_exact_mut(b)
        .zip(x.chunks_exact(b))
        .zip(a.chunks_exact(b))
    {
        axpy_span::<L>(&xrow[..active], &arow[..active], scale, &mut orow[..active]);
    }
}

/// `out = x + a · scale` across one span.
#[inline(always)]
fn axpy_span<L: Lanes>(x: &[f64], a: &[f64], scale: f64, out: &mut [f64]) {
    let sv = L::splat(scale);
    let mut oc = out.chunks_exact_mut(L::WIDTH);
    let mut xc = x.chunks_exact(L::WIDTH);
    let mut ac = a.chunks_exact(L::WIDTH);
    for ((ow, xw), aw) in (&mut oc).zip(&mut xc).zip(&mut ac) {
        L::load(xw).add(L::load(aw).mul(sv)).store(ow);
    }
    for ((o, &xi), &ai) in oc
        .into_remainder()
        .iter_mut()
        .zip(xc.remainder())
        .zip(ac.remainder())
    {
        *o = xi + ai * scale;
    }
}

/// RK4 state update `state += dt/6 · (k1 + 2·k2 + 2·k3 + k4)` over the
/// first `active` columns of every row.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rk4_combine_rows<L: Lanes>(
    state: &mut [f64],
    k1: &[f64],
    k2: &[f64],
    k3: &[f64],
    k4: &[f64],
    dt: f64,
    b: usize,
    active: usize,
) {
    if active == b {
        // Full-width fast path: every column is live, so the row-by-row
        // masking collapses into one flat span over the whole SoA buffer.
        rk4_combine_span::<L>(state, k1, k2, k3, k4, dt);
        return;
    }
    for ((((srow, arow), brow), crow), drow) in state
        .chunks_exact_mut(b)
        .zip(k1.chunks_exact(b))
        .zip(k2.chunks_exact(b))
        .zip(k3.chunks_exact(b))
        .zip(k4.chunks_exact(b))
    {
        rk4_combine_span::<L>(
            &mut srow[..active],
            &arow[..active],
            &brow[..active],
            &crow[..active],
            &drow[..active],
            dt,
        );
    }
}

/// RK4 state update across one span. The lane expression mirrors the
/// scalar `st += dt / 6.0 * (a + 2.0 * b + 2.0 * c + d)` term-for-term in
/// the same association order, so every width is bit-identical.
#[inline(always)]
fn rk4_combine_span<L: Lanes>(
    state: &mut [f64],
    k1: &[f64],
    k2: &[f64],
    k3: &[f64],
    k4: &[f64],
    dt: f64,
) {
    let dt6 = L::splat(dt / 6.0);
    let two = L::splat(2.0);
    let mut sc = state.chunks_exact_mut(L::WIDTH);
    let mut ac = k1.chunks_exact(L::WIDTH);
    let mut bc = k2.chunks_exact(L::WIDTH);
    let mut cc = k3.chunks_exact(L::WIDTH);
    let mut dc = k4.chunks_exact(L::WIDTH);
    for ((((sw, aw), bw), cw), dw) in (&mut sc)
        .zip(&mut ac)
        .zip(&mut bc)
        .zip(&mut cc)
        .zip(&mut dc)
    {
        let sum = L::load(aw)
            .add(two.mul(L::load(bw)))
            .add(two.mul(L::load(cw)))
            .add(L::load(dw));
        L::load(sw).add(dt6.mul(sum)).store(sw);
    }
    for ((((st, &av), &bv), &cv), &dv) in sc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
        .zip(dc.remainder())
    {
        *st += dt / 6.0 * (av + 2.0 * bv + 2.0 * cv + dv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{CapBank, SeriesBranch};
    use crate::ladder::VrOutputModel;
    use crate::units::{Amps, Farads, Henries, Hertz, Ohms};

    fn small_ladder() -> Ladder {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
        let mut b = Ladder::builder("t", vr);
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(0.3), Henries::from_ph(150.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(500.0),
                Ohms::from_mohm(5.0),
                Henries::from_nh(2.0),
                1,
            )
            .unwrap(),
        );
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(0.4), Henries::from_ph(20.0)).unwrap(),
            CapBank::new(
                Farads::from_nf(200.0),
                Ohms::from_mohm(0.3),
                Henries::from_ph(1.0),
                1,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    fn assert_results_bit_identical(a: &TransientResult, b: &TransientResult) {
        assert_eq!(a.v_initial.value().to_bits(), b.v_initial.value().to_bits());
        assert_eq!(a.v_final.value().to_bits(), b.v_final.value().to_bits());
        assert_eq!(a.v_min.value().to_bits(), b.v_min.value().to_bits());
        assert_eq!(a.t_min.value().to_bits(), b.t_min.value().to_bits());
        assert_eq!(a.samples.len(), b.samples.len());
        for ((ta, va), (tb, vb)) in a.samples.iter().zip(&b.samples) {
            assert_eq!(ta.value().to_bits(), tb.value().to_bits());
            assert_eq!(va.value().to_bits(), vb.value().to_bits());
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        let sim = TransientSim::droop_capture(Volts::new(1.0));
        assert!(sim.run_batch(&small_ladder(), &[]).is_empty());
    }

    #[test]
    fn batch_matches_scalar_lane_for_lane() {
        let ladder = small_ladder();
        let sim = TransientSim {
            source: Volts::new(1.05),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(20.0),
            decimate: 64,
        };
        // Deltas chosen so lanes settle at different times (small steps
        // settle fast, large ones ring longer), exercising mid-run
        // swap-compaction.
        let steps: Vec<LoadStep> = [2.0, 45.0, 0.0, 18.0, 30.0]
            .iter()
            .map(|&delta| LoadStep {
                from: Amps::new(5.0),
                to: Amps::new(5.0 + delta),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(10.0),
            })
            .collect();
        let batch = sim.run_batch(&ladder, &steps);
        assert_eq!(batch.len(), steps.len());
        for (step, got) in steps.iter().zip(&batch) {
            let scalar = sim.run(&ladder, *step);
            assert_results_bit_identical(&scalar, got);
        }
    }

    #[test]
    fn every_kernel_width_is_bit_identical() {
        let ladder = small_ladder();
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(20.0),
            decimate: 64,
        };
        // 5 lanes: not a multiple of either vector width, so both wide
        // kernels process a scalar remainder alongside full vectors.
        let steps: Vec<LoadStep> = [3.0, 40.0, 12.0, 27.0, 8.0]
            .iter()
            .map(|&delta| LoadStep {
                from: Amps::new(5.0),
                to: Amps::new(5.0 + delta),
                at: Seconds::from_us(1.0),
                slew: Seconds::from_ns(10.0),
            })
            .collect();
        let reference = sim.run_batch_with_width(&ladder, &steps, KernelWidth::Scalar);
        for width in [KernelWidth::X4, KernelWidth::X8] {
            let wide = sim.run_batch_with_width(&ladder, &steps, width);
            assert_eq!(wide.len(), reference.len());
            for (a, b) in reference.iter().zip(&wide) {
                assert_results_bit_identical(a, b);
            }
        }
    }

    #[test]
    fn single_lane_batch_matches_scalar() {
        let ladder = small_ladder();
        let sim = TransientSim::droop_capture(Volts::new(1.0));
        let step = LoadStep::step(Amps::new(1.0), Amps::new(40.0), Seconds::from_us(1.0));
        let batch = sim.run_batch(&ladder, &[step]);
        assert_eq!(batch.len(), 1);
        assert_results_bit_identical(&sim.run(&ladder, step), &batch[0]);
    }

    #[test]
    fn final_sample_timestamps_are_unique() {
        let ladder = small_ladder();
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(30.0),
            decimate: 1,
        };
        let step = LoadStep {
            from: Amps::new(5.0),
            to: Amps::new(25.0),
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(10.0),
        };
        for r in sim.run_batch(&ladder, &[step]) {
            for pair in r.samples.windows(2) {
                assert!(
                    pair[0].0.value().to_bits() != pair[1].0.value().to_bits(),
                    "duplicate sample timestamp {}",
                    pair[0].0.value()
                );
            }
        }
    }
}

//! # dg-pdn — power delivery network simulation
//!
//! A lumped-element power-delivery-network (PDN) simulator in the spirit of
//! the in-house Intel tool used by the DarkGates paper (HPCA 2022, Sec. 6):
//! the PDN of a client processor is modeled as a cascade of series R/L
//! branches and shunt decoupling-capacitor banks from the motherboard voltage
//! regulator (VR) down to the die, optionally passing through an on-die
//! power-gate stage.
//!
//! The crate provides:
//!
//! * strongly-typed electrical [`units`],
//! * lumped [`elements`] (resistors, inductors, capacitor banks with
//!   ESR/ESL),
//! * a PDN [`ladder`] topology with an optional power-gate stage,
//! * frequency-domain [`impedance`] analysis (the impedance–frequency
//!   profile of the paper's Fig. 4),
//! * time-domain [`transient`] simulation of load-step voltage droops,
//! * the [`loadline`] (adaptive voltage positioning) model with multi-level
//!   power-virus guardbands (paper Fig. 2),
//! * a motherboard [`vr`] model with TDC/EDC current limits, and
//! * calibrated [`skylake`] topologies for the gated (Skylake-H-like) and
//!   bypassed (Skylake-S-like, DarkGates) configurations.
//!
//! ## Quick example
//!
//! ```
//! use dg_pdn::skylake::{SkylakePdn, PdnVariant};
//! use dg_pdn::impedance::ImpedanceAnalyzer;
//!
//! let gated = SkylakePdn::build(PdnVariant::Gated);
//! let bypassed = SkylakePdn::build(PdnVariant::Bypassed);
//! let analyzer = ImpedanceAnalyzer::default();
//! let zg = analyzer.profile(&gated.ladder);
//! let zb = analyzer.profile(&bypassed.ladder);
//! // The gated topology has roughly twice the impedance of the bypassed one.
//! assert!(zg.peak().1.value() > 1.5 * zb.peak().1.value());
//! ```

pub mod architectures;
pub mod batch;
pub mod cache;
pub mod complex;
pub mod didt;
pub mod diskcache;
pub mod elements;
pub mod error;
pub mod impedance;
pub mod ladder;
pub mod loadline;
pub mod package;
pub mod sensitivity;
pub mod simd;
pub mod skylake;
pub mod transient;
pub mod units;
pub mod vr;

pub use architectures::{delivery_loss, IvrModel, LdoModel, PdnArchitecture};
pub use batch::{with_thread_workspace, BatchWorkspace};
pub use didt::{
    analyze as didt_analyze, client_event_family, droop_sweep, droop_sweep_barrier_reference,
    droop_sweep_with_progress, DidtEvent, NoiseAnalysis,
};
pub use error::PdnError;
pub use impedance::{ImpedanceAnalyzer, ImpedanceProfile};
pub use ladder::{Ladder, LadderBuilder, Stage};
pub use loadline::{LoadLine, VirusLevel, VirusLevelTable};
pub use package::{PackageLayout, VoltageDomain};
pub use sensitivity::{
    droop_sensitivities, peak_sensitivities, target_impedance, DroopSensitivity, ElementKind,
    Sensitivity,
};
pub use simd::{KernelWidth, Lanes};
pub use transient::{LadderCoeffs, LoadStep, TransientResult, TransientSim};
pub use units::{Amps, Celsius, Farads, Henries, Hertz, Ohms, Seconds, Volts, Watts};
pub use vr::{VoltageRegulator, VrLimits};

//! Frequency-domain impedance analysis.
//!
//! Produces the impedance–frequency profile of a PDN ladder over a
//! logarithmic sweep — the quantity the DarkGates paper plots in Fig. 4 to
//! show that bypassing the power-gates roughly halves the system impedance.

use crate::error::PdnError;
use crate::ladder::Ladder;
use crate::units::{Hertz, Ohms};
use serde::{Deserialize, Serialize};

/// Frequencies evaluated per worker task in [`ImpedanceAnalyzer::profile`]:
/// the default 400-point sweep still spreads over every worker, while each
/// task amortizes its scheduling cost across a cache-friendly run of points.
pub(crate) const SWEEP_CHUNK: usize = 64;

/// Configuration for a logarithmic frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceAnalyzer {
    /// Sweep start frequency (inclusive).
    pub start: Hertz,
    /// Sweep stop frequency (inclusive).
    pub stop: Hertz,
    /// Number of sample points, log-spaced.
    pub points: usize,
}

impl Default for ImpedanceAnalyzer {
    /// The default sweep covers 10 kHz – 1 GHz with 400 points, bracketing
    /// the first/second/third droop resonances of a client PDN.
    fn default() -> Self {
        ImpedanceAnalyzer {
            start: Hertz::new(10e3),
            stop: Hertz::from_ghz(1.0),
            points: 400,
        }
    }
}

impl ImpedanceAnalyzer {
    /// Creates an analyzer with a custom sweep.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidSweep`] if the range is empty, inverted,
    /// non-positive, or has fewer than two points.
    pub fn new(start: Hertz, stop: Hertz, points: usize) -> Result<Self, PdnError> {
        if !(start.value() > 0.0 && stop.value() > start.value()) || points < 2 {
            return Err(PdnError::InvalidSweep {
                start_hz: start.value(),
                stop_hz: stop.value(),
            });
        }
        Ok(ImpedanceAnalyzer {
            start,
            stop,
            points,
        })
    }

    /// The log-spaced sample frequencies of this sweep.
    pub fn frequencies(&self) -> Vec<Hertz> {
        let n = self.points.max(2);
        let log_start = self.start.value().ln();
        let log_stop = self.stop.value().ln();
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                Hertz::new((log_start + t * (log_stop - log_start)).exp())
            })
            .collect()
    }

    /// Sweeps the ladder and returns its impedance profile.
    ///
    /// Sample points are independent, so the sweep fans out over the
    /// [`dg_engine`] worker pool in [`SWEEP_CHUNK`]-frequency batches —
    /// each task amortizes its claim over a run of samples instead of
    /// paying per-point scheduling. Chunks come back in input order and
    /// are flattened, making the profile bit-identical to a sequential
    /// sweep for any thread count. See [`crate::cache::impedance_profile`]
    /// for the memoized variant the product builders use.
    pub fn profile(&self, ladder: &Ladder) -> ImpedanceProfile {
        let frequencies = self.frequencies();
        let chunks: Vec<&[Hertz]> = frequencies.chunks(SWEEP_CHUNK).collect();
        let points = dg_engine::par_map(&chunks, |_, chunk| {
            chunk
                .iter()
                .map(|&f| (f, ladder.impedance_magnitude(f)))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        ImpedanceProfile {
            name: ladder.name().to_owned(),
            points,
        }
    }
}

/// An impedance-versus-frequency profile (paper Fig. 4 series).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceProfile {
    name: String,
    points: Vec<(Hertz, Ohms)>,
}

impl ImpedanceProfile {
    /// Creates a profile from precomputed points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the frequencies are not strictly
    /// increasing (lookups binary-search on frequency).
    pub fn from_points(name: impl Into<String>, points: Vec<(Hertz, Ohms)>) -> Self {
        assert!(!points.is_empty(), "impedance profile cannot be empty");
        assert!(
            points.windows(2).all(|w| match w {
                [below, above] => below.0 < above.0,
                _ => true,
            }),
            "profile frequencies must be strictly increasing"
        );
        ImpedanceProfile {
            name: name.into(),
            points,
        }
    }

    /// The profile's name (usually the ladder's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sampled `(frequency, |Z|)` points.
    pub fn points(&self) -> &[(Hertz, Ohms)] {
        &self.points
    }

    /// The global impedance peak `(frequency, |Z|)`.
    pub fn peak(&self) -> (Hertz, Ohms) {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            // Construction rejects empty profiles, so this is unreachable.
            .unwrap_or((Hertz::ZERO, Ohms::ZERO))
    }

    /// Impedance at the sample closest (in log-frequency) to `f`.
    ///
    /// Binary-searches the (ascending) frequency axis, then picks the
    /// nearer of the two bracketing samples. `|ln f − ln a| ≤ |ln b − ln f|`
    /// rearranges to `f·f ≤ a·b`, so the nearest-in-log decision needs no
    /// logarithms. Exact midpoints resolve to the lower-frequency sample,
    /// matching the original linear scan (which kept the first minimum).
    pub fn at(&self, f: Hertz) -> Ohms {
        let idx = self.points.partition_point(|p| p.0 < f);
        // Construction rejects empty profiles, so the fallbacks below are
        // unreachable; they keep the lookup total without panicking.
        if idx == 0 {
            return self.points.first().map(|p| p.1).unwrap_or(Ohms::ZERO);
        }
        let Some(&below) = self.points.get(idx - 1) else {
            return Ohms::ZERO;
        };
        match self.points.get(idx) {
            // Past the last sample: clamp to it.
            None => below.1,
            Some(&above) => {
                if f.value() * f.value() <= below.0.value() * above.0.value() {
                    below.1
                } else {
                    above.1
                }
            }
        }
    }

    /// The lowest sampled impedance.
    pub fn floor(&self) -> Ohms {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(Ohms::new(f64::INFINITY), Ohms::min)
    }

    /// Local maxima of the profile — the anti-resonance peaks ("droop"
    /// frequencies). Endpoints are excluded.
    pub fn resonances(&self) -> Vec<(Hertz, Ohms)> {
        let mut peaks = Vec::new();
        for w in self.points.windows(3) {
            if let [left, mid, right] = w {
                if mid.1 > left.1 && mid.1 > right.1 {
                    peaks.push(*mid);
                }
            }
        }
        peaks
    }

    /// Mean impedance ratio of `self` over `other`, evaluated at `other`'s
    /// sample frequencies (geometric mean). Used to quantify the "gated is
    /// ~2× bypassed" headline of Fig. 4.
    pub fn mean_ratio_over(&self, other: &ImpedanceProfile) -> f64 {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for &(f, z_other) in other.points() {
            let z_self = self.at(f);
            if z_other.value() > 0.0 && z_self.value() > 0.0 {
                log_sum += (z_self.value() / z_other.value()).ln();
                n += 1;
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        (log_sum / n as f64).exp()
    }

    /// `true` if `self` is at least `factor ×` `other` at every sampled
    /// frequency of `other`.
    pub fn dominates(&self, other: &ImpedanceProfile, factor: f64) -> bool {
        other
            .points()
            .iter()
            .all(|&(f, z)| self.at(f).value() >= factor * z.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{CapBank, SeriesBranch};
    use crate::ladder::{Ladder, VrOutputModel};
    use crate::units::{Farads, Henries};

    fn ladder(gate_mohm: f64) -> Ladder {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap();
        let mut b = Ladder::builder("t", vr);
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(0.2), Henries::from_ph(120.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(330.0),
                Ohms::from_mohm(6.0),
                Henries::from_nh(2.0),
                6,
            )
            .unwrap(),
        );
        if gate_mohm > 0.0 {
            b.series(
                "gate",
                SeriesBranch::resistive(Ohms::from_mohm(gate_mohm)).unwrap(),
            );
        }
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(0.15), Henries::from_ph(4.0)).unwrap(),
            CapBank::new(
                Farads::from_nf(120.0),
                Ohms::from_mohm(0.25),
                Henries::from_ph(1.0),
                1,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    #[test]
    fn sweep_is_log_spaced_and_inclusive() {
        let a = ImpedanceAnalyzer::new(Hertz::new(1e4), Hertz::new(1e8), 5).unwrap();
        let fs = a.frequencies();
        assert_eq!(fs.len(), 5);
        assert!((fs[0].value() - 1e4).abs() < 1.0);
        assert!((fs[4].value() - 1e8).abs() < 100.0);
        // Log spacing: ratio between consecutive points is constant.
        let r1 = fs[1].value() / fs[0].value();
        let r2 = fs[3].value() / fs[2].value();
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn invalid_sweeps_rejected() {
        assert!(ImpedanceAnalyzer::new(Hertz::new(1e6), Hertz::new(1e4), 10).is_err());
        assert!(ImpedanceAnalyzer::new(Hertz::ZERO, Hertz::new(1e4), 10).is_err());
        assert!(ImpedanceAnalyzer::new(Hertz::new(1e3), Hertz::new(1e6), 1).is_err());
    }

    #[test]
    fn gated_ladder_has_higher_profile() {
        let analyzer = ImpedanceAnalyzer::default();
        let z_gated = analyzer.profile(&ladder(2.0));
        let z_bypassed = analyzer.profile(&ladder(0.0));
        // The gate raises the profile on (geometric) average and at DC; it
        // may locally *damp* the die anti-resonance, so no pointwise claim.
        assert!(z_gated.mean_ratio_over(&z_bypassed) > 1.0);
        assert!(z_gated.at(Hertz::new(1e4)) > z_bypassed.at(Hertz::new(1e4)));
    }

    #[test]
    fn peak_and_floor_bracket_all_points() {
        let analyzer = ImpedanceAnalyzer::default();
        let p = analyzer.profile(&ladder(1.0));
        let peak = p.peak().1;
        let floor = p.floor();
        for &(_, z) in p.points() {
            assert!(z <= peak);
            assert!(z >= floor);
        }
    }

    #[test]
    fn at_returns_nearest_sample() {
        let points = vec![
            (Hertz::new(1e4), Ohms::from_mohm(2.0)),
            (Hertz::new(1e5), Ohms::from_mohm(3.0)),
            (Hertz::new(1e6), Ohms::from_mohm(4.0)),
        ];
        let p = ImpedanceProfile::from_points("x", points);
        assert!((p.at(Hertz::new(9e4)).as_mohm() - 3.0).abs() < 1e-12);
        assert!((p.at(Hertz::new(1.0)).as_mohm() - 2.0).abs() < 1e-12);
        assert!((p.at(Hertz::new(1e9)).as_mohm() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn at_bin_edges_pin_nearest_sample_semantics() {
        // Powers of two make the log-midpoint comparison exact in f64:
        // samples at 2^10 and 2^14 Hz have their geometric midpoint at
        // 2^12 Hz, and (2^12)^2 == 2^10 * 2^14 with no rounding.
        let points = vec![
            (Hertz::new(1024.0), Ohms::from_mohm(1.0)),
            (Hertz::new(16384.0), Ohms::from_mohm(2.0)),
        ];
        let p = ImpedanceProfile::from_points("edges", points);
        // Exact samples return themselves.
        assert_eq!(p.at(Hertz::new(1024.0)).as_mohm(), 1.0);
        assert_eq!(p.at(Hertz::new(16384.0)).as_mohm(), 2.0);
        // Exact geometric midpoint ties resolve to the lower-frequency
        // sample (the original linear scan kept the first minimum).
        assert_eq!(p.at(Hertz::new(4096.0)).as_mohm(), 1.0);
        // A hair past the midpoint flips to the upper sample.
        assert_eq!(p.at(Hertz::new(4097.0)).as_mohm(), 2.0);
        // And a hair below stays on the lower one.
        assert_eq!(p.at(Hertz::new(4095.0)).as_mohm(), 1.0);
        // Out-of-range queries clamp to the end samples.
        assert_eq!(p.at(Hertz::new(1.0)).as_mohm(), 1.0);
        assert_eq!(p.at(Hertz::new(1e12)).as_mohm(), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_profile_panics() {
        ImpedanceProfile::from_points(
            "bad",
            vec![
                (Hertz::new(1e5), Ohms::from_mohm(1.0)),
                (Hertz::new(1e4), Ohms::from_mohm(2.0)),
            ],
        );
    }

    #[test]
    fn resonances_found_in_multi_cap_ladder() {
        let analyzer = ImpedanceAnalyzer::default();
        let p = analyzer.profile(&ladder(0.0));
        // Board-cap/die-cap ladder produces at least one anti-resonance.
        assert!(!p.resonances().is_empty());
        // Every resonance is an interior local max: at most a few exist.
        assert!(p.resonances().len() < 10);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_profile_panics() {
        ImpedanceProfile::from_points("bad", Vec::new());
    }
}

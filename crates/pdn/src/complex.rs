//! Minimal complex arithmetic for AC (phasor) analysis.
//!
//! The standard library has no complex type and we deliberately avoid an
//! external numerics dependency, so this module provides the small subset of
//! complex arithmetic the impedance analyzer needs: add/sub/mul/div,
//! magnitude, and the parallel-combination helper used for shunt elements.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number in Cartesian form, used as a phasor impedance in ohms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part (resistance for impedances).
    pub re: f64,
    /// Imaginary part (reactance for impedances).
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z| = sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an infinite value if `z` is zero, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Parallel combination of two impedances: `z1 ∥ z2 = z1·z2 / (z1+z2)`.
    ///
    /// If either operand is zero the result is zero (a short dominates); if
    /// one operand has infinite magnitude the other is returned.
    #[inline]
    pub fn parallel(self, other: Complex) -> Complex {
        if self.abs() == 0.0 || other.abs() == 0.0 {
            return Complex::ZERO;
        }
        if !self.abs().is_finite() {
            return other;
        }
        if !other.abs().is_finite() {
            return self;
        }
        (self * other) / (self + other)
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        let q = a / b;
        // a = q*b must hold.
        assert!(close(q * b, a));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        let j = Complex::imag(1.0);
        assert!((j.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn reciprocal_round_trip() {
        let z = Complex::new(0.5, -1.5);
        assert!(close(z.recip() * z, Complex::ONE));
    }

    #[test]
    fn parallel_of_equal_resistors_halves() {
        let r = Complex::real(2.0);
        assert!(close(r.parallel(r), Complex::real(1.0)));
    }

    #[test]
    fn parallel_with_short_is_short() {
        let r = Complex::real(2.0);
        assert_eq!(r.parallel(Complex::ZERO), Complex::ZERO);
        assert_eq!(Complex::ZERO.parallel(r), Complex::ZERO);
    }

    #[test]
    fn parallel_with_open_is_identity() {
        let r = Complex::real(2.0);
        let open = Complex::real(f64::INFINITY);
        assert!(close(r.parallel(open), r));
        assert!(close(open.parallel(r), r));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert_eq!((-z), Complex::new(-1.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn from_f64() {
        let z: Complex = 3.5.into();
        assert_eq!(z, Complex::real(3.5));
    }
}

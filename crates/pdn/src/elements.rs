//! Lumped circuit elements: series branches and decoupling-capacitor banks.
//!
//! A PDN stage consists of a *series branch* (the routing resistance and
//! inductance of a board/package/die segment, or a power-gate's on-state
//! resistance) and an optional *shunt capacitor bank* (bulk electrolytics on
//! the board, MLCC decaps on the package, or MIM capacitance on the die).
//! Real capacitors are modeled with their equivalent series resistance (ESR)
//! and inductance (ESL), which set the depth and width of the anti-resonance
//! notches in the impedance profile.

use crate::complex::Complex;
use crate::error::PdnError;
use crate::units::{Farads, Henries, Hertz, Ohms};
use serde::{Deserialize, Serialize};

/// A series R–L branch (routing segment or power-gate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesBranch {
    /// Series resistance.
    pub resistance: Ohms,
    /// Series inductance.
    pub inductance: Henries,
}

impl SeriesBranch {
    /// Creates a series branch.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if either value is negative or
    /// non-finite. Zero is allowed (an ideal short segment).
    pub fn new(resistance: Ohms, inductance: Henries) -> Result<Self, PdnError> {
        if !(resistance.value() >= 0.0 && resistance.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "series resistance",
                value: resistance.value(),
            });
        }
        if !(inductance.value() >= 0.0 && inductance.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "series inductance",
                value: inductance.value(),
            });
        }
        Ok(SeriesBranch {
            resistance,
            inductance,
        })
    }

    /// An ideal short (zero resistance, zero inductance).
    pub fn short() -> Self {
        SeriesBranch {
            resistance: Ohms::ZERO,
            inductance: Henries::ZERO,
        }
    }

    /// A purely resistive branch.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] for a negative or non-finite
    /// resistance.
    pub fn resistive(resistance: Ohms) -> Result<Self, PdnError> {
        SeriesBranch::new(resistance, Henries::ZERO)
    }

    /// Phasor impedance `R + jωL` at frequency `f`.
    pub fn impedance(&self, f: Hertz) -> Complex {
        Complex::new(
            self.resistance.value(),
            f.angular() * self.inductance.value(),
        )
    }

    /// Combines two branches in series (summing R and L).
    pub fn in_series(&self, other: &SeriesBranch) -> SeriesBranch {
        SeriesBranch {
            resistance: self.resistance + other.resistance,
            inductance: self.inductance + other.inductance,
        }
    }

    /// Combines `n` identical copies of this branch in parallel.
    ///
    /// Used when several identical routing paths (e.g. the four per-core
    /// package routes shorted together by DarkGates) share the current.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn paralleled(&self, n: usize) -> SeriesBranch {
        assert!(n > 0, "cannot parallel zero branches");
        let n = n as f64;
        SeriesBranch {
            resistance: self.resistance / n,
            inductance: self.inductance / n,
        }
    }
}

/// A bank of identical decoupling capacitors, each with ESR and ESL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapBank {
    /// Capacitance of a single capacitor.
    pub capacitance: Farads,
    /// Equivalent series resistance of a single capacitor.
    pub esr: Ohms,
    /// Equivalent series inductance of a single capacitor.
    pub esl: Henries,
    /// Number of capacitors in parallel.
    pub count: usize,
}

impl CapBank {
    /// Creates a capacitor bank.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if the capacitance is not
    /// strictly positive, if ESR/ESL are negative, or if `count` is zero.
    pub fn new(
        capacitance: Farads,
        esr: Ohms,
        esl: Henries,
        count: usize,
    ) -> Result<Self, PdnError> {
        if !(capacitance.value() > 0.0 && capacitance.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "capacitance",
                value: capacitance.value(),
            });
        }
        if !(esr.value() >= 0.0 && esr.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "capacitor ESR",
                value: esr.value(),
            });
        }
        if !(esl.value() >= 0.0 && esl.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "capacitor ESL",
                value: esl.value(),
            });
        }
        if count == 0 {
            return Err(PdnError::InvalidComponent {
                what: "capacitor count",
                value: 0.0,
            });
        }
        Ok(CapBank {
            capacitance,
            esr,
            esl,
            count,
        })
    }

    /// Total capacitance of the bank (`count × C`).
    pub fn total_capacitance(&self) -> Farads {
        self.capacitance * self.count as f64
    }

    /// Effective ESR of the bank (`ESR / count`).
    pub fn effective_esr(&self) -> Ohms {
        self.esr / self.count as f64
    }

    /// Effective ESL of the bank (`ESL / count`).
    pub fn effective_esl(&self) -> Henries {
        self.esl / self.count as f64
    }

    /// Phasor impedance of the whole bank at frequency `f`:
    /// `(ESR + jωESL + 1/(jωC)) / count`.
    pub fn impedance(&self, f: Hertz) -> Complex {
        let w = f.angular();
        let single = Complex::new(
            self.esr.value(),
            w * self.esl.value() - 1.0 / (w * self.capacitance.value()),
        );
        single / self.count as f64
    }

    /// Self-resonant frequency of a single capacitor: `1 / (2π√(L·C))`.
    ///
    /// Below this frequency the bank is capacitive; above, inductive.
    /// Returns `None` when ESL is zero (an ideal capacitor never resonates).
    pub fn self_resonance(&self) -> Option<Hertz> {
        if self.esl.value() <= 0.0 {
            return None;
        }
        let f = 1.0
            / (2.0 * std::f64::consts::PI * (self.esl.value() * self.capacitance.value()).sqrt());
        Some(Hertz::new(f))
    }

    /// Returns a bank scaled to `factor ×` the capacitor count (rounded,
    /// minimum one). Used to split a shared decap budget among voltage
    /// domains.
    pub fn scaled(&self, factor: f64) -> CapBank {
        let count = ((self.count as f64 * factor).round() as usize).max(1);
        CapBank { count, ..*self }
    }

    /// Merges two banks on the same node into an equivalent single bank
    /// description (exact only when both banks have identical per-unit
    /// parameters; otherwise the result preserves total C and parallel
    /// ESR/ESL at DC, which is what the ladder analysis needs).
    pub fn merged(&self, other: &CapBank) -> CapBank {
        let total_c = self.total_capacitance() + other.total_capacitance();
        // Parallel ESR/ESL of the two banks.
        let esr_a = self.effective_esr().value();
        let esr_b = other.effective_esr().value();
        let esr = if esr_a + esr_b > 0.0 {
            (esr_a * esr_b) / (esr_a + esr_b)
        } else {
            0.0
        };
        let esl_a = self.effective_esl().value();
        let esl_b = other.effective_esl().value();
        let esl = if esl_a + esl_b > 0.0 {
            (esl_a * esl_b) / (esl_a + esl_b)
        } else {
            0.0
        };
        CapBank {
            capacitance: total_c,
            esr: Ohms::new(esr),
            esl: Henries::new(esl),
            count: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_branch_impedance_at_dc_is_resistance() {
        let b = SeriesBranch::new(Ohms::from_mohm(2.0), Henries::from_ph(100.0)).unwrap();
        let z = b.impedance(Hertz::new(1e-3));
        assert!((z.re - 0.002).abs() < 1e-12);
        assert!(z.im.abs() < 1e-9);
    }

    #[test]
    fn series_branch_inductive_at_high_frequency() {
        let b = SeriesBranch::new(Ohms::from_mohm(1.0), Henries::from_nh(1.0)).unwrap();
        let z = b.impedance(Hertz::from_mhz(100.0));
        // ωL = 2π·1e8·1e-9 ≈ 0.628 Ω ≫ 1 mΩ.
        assert!(z.im > 0.5);
    }

    #[test]
    fn series_branch_rejects_negative_values() {
        assert!(SeriesBranch::new(Ohms::new(-1.0), Henries::ZERO).is_err());
        assert!(SeriesBranch::new(Ohms::ZERO, Henries::new(-1.0)).is_err());
        assert!(SeriesBranch::new(Ohms::new(f64::NAN), Henries::ZERO).is_err());
    }

    #[test]
    fn series_combination_adds() {
        let a = SeriesBranch::new(Ohms::from_mohm(1.0), Henries::from_ph(10.0)).unwrap();
        let b = SeriesBranch::new(Ohms::from_mohm(2.0), Henries::from_ph(20.0)).unwrap();
        let c = a.in_series(&b);
        assert!((c.resistance.as_mohm() - 3.0).abs() < 1e-12);
        assert!((c.inductance.value() - 30e-12).abs() < 1e-24);
    }

    #[test]
    fn paralleling_divides() {
        let a = SeriesBranch::new(Ohms::from_mohm(4.0), Henries::from_ph(40.0)).unwrap();
        let p = a.paralleled(4);
        assert!((p.resistance.as_mohm() - 1.0).abs() < 1e-12);
        assert!((p.inductance.value() - 10e-12).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "cannot parallel zero branches")]
    fn paralleling_zero_panics() {
        SeriesBranch::short().paralleled(0);
    }

    #[test]
    fn cap_bank_validation() {
        assert!(CapBank::new(Farads::ZERO, Ohms::ZERO, Henries::ZERO, 1).is_err());
        assert!(CapBank::new(Farads::from_uf(1.0), Ohms::new(-0.1), Henries::ZERO, 1).is_err());
        assert!(CapBank::new(Farads::from_uf(1.0), Ohms::ZERO, Henries::new(-1.0), 1).is_err());
        assert!(CapBank::new(Farads::from_uf(1.0), Ohms::ZERO, Henries::ZERO, 0).is_err());
    }

    #[test]
    fn cap_bank_capacitive_below_resonance_inductive_above() {
        let bank = CapBank::new(
            Farads::from_uf(22.0),
            Ohms::from_mohm(3.0),
            Henries::from_nh(0.5),
            10,
        )
        .unwrap();
        let fres = bank.self_resonance().unwrap();
        let below = bank.impedance(Hertz::new(fres.value() / 100.0));
        let above = bank.impedance(Hertz::new(fres.value() * 100.0));
        assert!(below.im < 0.0, "capacitive below resonance");
        assert!(above.im > 0.0, "inductive above resonance");
        // At resonance, reactance cancels: |Z| ≈ ESR/count.
        let at = bank.impedance(fres);
        assert!((at.abs() - bank.effective_esr().value()).abs() < 1e-6);
    }

    #[test]
    fn ideal_cap_has_no_resonance() {
        let bank = CapBank::new(Farads::from_uf(1.0), Ohms::ZERO, Henries::ZERO, 1).unwrap();
        assert!(bank.self_resonance().is_none());
    }

    #[test]
    fn bank_effective_values_scale_with_count() {
        let bank = CapBank::new(
            Farads::from_uf(10.0),
            Ohms::from_mohm(5.0),
            Henries::from_nh(1.0),
            5,
        )
        .unwrap();
        assert!((bank.total_capacitance().value() - 50e-6).abs() < 1e-15);
        assert!((bank.effective_esr().as_mohm() - 1.0).abs() < 1e-12);
        assert!((bank.effective_esl().value() - 0.2e-9).abs() < 1e-20);
    }

    #[test]
    fn scaled_bank_rounds_and_clamps() {
        let bank = CapBank::new(Farads::from_uf(1.0), Ohms::ZERO, Henries::ZERO, 10).unwrap();
        assert_eq!(bank.scaled(0.5).count, 5);
        assert_eq!(bank.scaled(0.01).count, 1);
        assert_eq!(bank.scaled(2.0).count, 20);
    }

    #[test]
    fn merged_banks_preserve_total_capacitance() {
        let a = CapBank::new(
            Farads::from_uf(10.0),
            Ohms::from_mohm(2.0),
            Henries::from_nh(0.5),
            4,
        )
        .unwrap();
        let b = CapBank::new(
            Farads::from_uf(20.0),
            Ohms::from_mohm(4.0),
            Henries::from_nh(1.0),
            2,
        )
        .unwrap();
        let m = a.merged(&b);
        let expect = a.total_capacitance() + b.total_capacitance();
        assert!((m.total_capacitance().value() - expect.value()).abs() < 1e-15);
        // Merged ESR must be below either constituent's effective ESR.
        assert!(m.effective_esr() < a.effective_esr());
        assert!(m.effective_esr() < b.effective_esr());
    }
}

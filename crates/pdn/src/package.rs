//! Package voltage-domain layout and the DarkGates shorting transform.
//!
//! The paper's Figs. 1(b), 5 and 6: the mobile package routes five core
//! voltage domains (the un-gated `V_CU` plus per-core gated `V_C0G..V_C3G`)
//! from the die bumps to the VR; the DarkGates desktop package *shorts*
//! them into one domain, pooling bumps, routes, and decap attach points.
//! Pooling the bumps is also what alleviates electromigration (Sec. 4.2:
//! "all bumps are shared between the cores").

use crate::error::PdnError;
use crate::units::Amps;
use serde::{Deserialize, Serialize};

/// One package-level voltage domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageDomain {
    /// Domain name (e.g. `"VC0G"`).
    pub name: String,
    /// Number of supply bumps allocated to this domain.
    pub bumps: usize,
    /// Whether an on-die power-gate sits between this domain and the load.
    pub gated: bool,
}

impl VoltageDomain {
    /// Creates a domain.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if `bumps` is zero.
    pub fn new(name: impl Into<String>, bumps: usize, gated: bool) -> Result<Self, PdnError> {
        if bumps == 0 {
            return Err(PdnError::InvalidComponent {
                what: "bump count",
                value: 0.0,
            });
        }
        Ok(VoltageDomain {
            name: name.into(),
            bumps,
            gated,
        })
    }
}

/// A package's core-rail domain layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageLayout {
    /// Package name.
    pub name: String,
    domains: Vec<VoltageDomain>,
    /// Reliability limit per bump (EM-driven).
    pub max_current_per_bump: Amps,
}

impl PackageLayout {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if no domains are given, the
    /// bump limit is non-positive, or domain names repeat.
    pub fn new(
        name: impl Into<String>,
        domains: Vec<VoltageDomain>,
        max_current_per_bump: Amps,
    ) -> Result<Self, PdnError> {
        if domains.is_empty() {
            return Err(PdnError::InvalidComponent {
                what: "domain list",
                value: 0.0,
            });
        }
        if !(max_current_per_bump.value() > 0.0 && max_current_per_bump.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "per-bump current limit",
                value: max_current_per_bump.value(),
            });
        }
        let mut names: Vec<&str> = domains.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            return Err(PdnError::InvalidComponent {
                what: "domain names (duplicate)",
                value: before as f64,
            });
        }
        Ok(PackageLayout {
            name: name.into(),
            domains,
            max_current_per_bump,
        })
    }

    /// The mobile (Skylake-H-like, BGA) layout: the un-gated `VCU` domain
    /// plus four gated per-core domains (Fig. 1(b)).
    pub fn skylake_mobile() -> Self {
        // Constructed literally: the bump counts are non-zero constants and
        // the names are distinct, so `new`'s validation cannot fire.
        let domain = |name: &str, bumps: usize, gated: bool| VoltageDomain {
            name: name.to_owned(),
            bumps,
            gated,
        };
        PackageLayout {
            name: "Skylake-H BGA".to_owned(),
            domains: vec![
                domain("VCU", 64, false),
                domain("VC0G", 44, true),
                domain("VC1G", 44, true),
                domain("VC2G", 44, true),
                domain("VC3G", 44, true),
            ],
            max_current_per_bump: Amps::new(0.75),
        }
    }

    /// The DarkGates desktop (Skylake-S-like, LGA) layout: the mobile
    /// layout with all core domains shorted (Figs. 5, 6).
    pub fn skylake_desktop() -> Self {
        let mobile = Self::skylake_mobile();
        let mut layout = mobile
            .short_domains("VCC_CORES", |_| true)
            // dg-analyze: allow(no-panic-in-lib, reason = "the catch-all selector always matches the mobile layout's five domains")
            .expect("mobile layout has domains");
        layout.name = "Skylake-S LGA".to_owned();
        layout
    }

    /// The domains.
    pub fn domains(&self) -> &[VoltageDomain] {
        &self.domains
    }

    /// Looks up a domain.
    pub fn domain(&self, name: &str) -> Option<&VoltageDomain> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Total bumps across all domains (conserved by shorting).
    pub fn total_bumps(&self) -> usize {
        self.domains.iter().map(|d| d.bumps).sum()
    }

    /// The DarkGates package transform: merges every domain selected by
    /// `select` into a single *un-gated* domain named `merged_name`,
    /// pooling their bumps. Unselected domains are kept.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if `select` matches nothing.
    pub fn short_domains(
        &self,
        merged_name: impl Into<String>,
        select: impl Fn(&VoltageDomain) -> bool,
    ) -> Result<PackageLayout, PdnError> {
        let (merged, kept): (Vec<_>, Vec<_>) = self.domains.iter().partition(|d| select(d));
        if merged.is_empty() {
            return Err(PdnError::InvalidComponent {
                what: "shorting selection (matched no domain)",
                value: 0.0,
            });
        }
        let pooled = VoltageDomain {
            name: merged_name.into(),
            bumps: merged.iter().map(|d| d.bumps).sum(),
            gated: false,
        };
        let mut domains = vec![pooled];
        domains.extend(kept.into_iter().cloned());
        PackageLayout::new(
            format!("{} (shorted)", self.name),
            domains,
            self.max_current_per_bump,
        )
    }

    /// Maximum current a domain can carry within the per-bump EM limit.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::UnknownDomain`] if the domain does not exist.
    pub fn current_capacity(&self, domain: &str) -> Result<Amps, PdnError> {
        let d = self.domain(domain).ok_or_else(|| PdnError::UnknownDomain {
            name: domain.to_owned(),
        })?;
        Ok(self.max_current_per_bump * d.bumps as f64)
    }

    /// Per-bump current in a domain at load `current`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::UnknownDomain`] if the domain does not exist.
    pub fn per_bump_current(&self, domain: &str, current: Amps) -> Result<Amps, PdnError> {
        let d = self.domain(domain).ok_or_else(|| PdnError::UnknownDomain {
            name: domain.to_owned(),
        })?;
        Ok(current / d.bumps as f64)
    }

    /// `true` when carrying `current` through `domain` stays within the EM
    /// limit.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::UnknownDomain`] if the domain does not exist.
    pub fn within_em_limit(&self, domain: &str, current: Amps) -> Result<bool, PdnError> {
        Ok(self.per_bump_current(domain, current)? <= self.max_current_per_bump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_layout_has_five_domains() {
        let p = PackageLayout::skylake_mobile();
        assert_eq!(p.domains().len(), 5);
        assert!(!p.domain("VCU").unwrap().gated);
        for core in ["VC0G", "VC1G", "VC2G", "VC3G"] {
            assert!(p.domain(core).unwrap().gated);
        }
    }

    #[test]
    fn desktop_shorting_pools_all_bumps() {
        let mobile = PackageLayout::skylake_mobile();
        let desktop = PackageLayout::skylake_desktop();
        assert_eq!(desktop.domains().len(), 1);
        let merged = desktop.domain("VCC_CORES").unwrap();
        assert!(!merged.gated);
        assert_eq!(merged.bumps, mobile.total_bumps());
        // Shorting conserves bumps.
        assert_eq!(desktop.total_bumps(), mobile.total_bumps());
    }

    #[test]
    fn shorting_alleviates_em() {
        // Sec. 4.2: one core drawing a burst through its private domain
        // vs. through the pooled domain.
        let mobile = PackageLayout::skylake_mobile();
        let desktop = PackageLayout::skylake_desktop();
        let burst = Amps::new(34.0);
        let private = mobile.per_bump_current("VC0G", burst).unwrap();
        let pooled = desktop.per_bump_current("VCC_CORES", burst).unwrap();
        assert!(
            pooled.value() < 0.25 * private.value(),
            "pooled {pooled} vs private {private}"
        );
        // The private domain violates the EM limit on this burst; the
        // pooled one does not.
        assert!(!mobile.within_em_limit("VC0G", burst).unwrap());
        assert!(desktop.within_em_limit("VCC_CORES", burst).unwrap());
    }

    #[test]
    fn capacity_scales_with_bumps() {
        let p = PackageLayout::skylake_mobile();
        let cap_core = p.current_capacity("VC0G").unwrap();
        let cap_all = PackageLayout::skylake_desktop()
            .current_capacity("VCC_CORES")
            .unwrap();
        assert!((cap_core.value() - 33.0).abs() < 1e-9);
        assert!(cap_all.value() > 4.0 * cap_core.value());
    }

    #[test]
    fn partial_shorting_keeps_other_domains() {
        let p = PackageLayout::skylake_mobile();
        // Short only cores 0 and 1.
        let partial = p
            .short_domains("VC01", |d| d.name == "VC0G" || d.name == "VC1G")
            .unwrap();
        assert_eq!(partial.domains().len(), 4);
        assert_eq!(partial.domain("VC01").unwrap().bumps, 88);
        assert!(partial.domain("VCU").is_some());
        assert!(partial.domain("VC2G").is_some());
    }

    #[test]
    fn empty_selection_rejected() {
        let p = PackageLayout::skylake_mobile();
        assert!(p.short_domains("X", |d| d.name == "nope").is_err());
    }

    #[test]
    fn validation() {
        assert!(VoltageDomain::new("x", 0, false).is_err());
        let d = vec![VoltageDomain::new("a", 10, false).unwrap()];
        assert!(PackageLayout::new("p", vec![], Amps::new(1.0)).is_err());
        assert!(PackageLayout::new("p", d.clone(), Amps::ZERO).is_err());
        let dup = vec![
            VoltageDomain::new("a", 10, false).unwrap(),
            VoltageDomain::new("a", 10, false).unwrap(),
        ];
        assert!(PackageLayout::new("p", dup, Amps::new(1.0)).is_err());
    }

    #[test]
    fn unknown_domain_is_a_typed_error() {
        let p = PackageLayout::skylake_mobile();
        let err = p.current_capacity("nope").unwrap_err();
        assert_eq!(
            err,
            PdnError::UnknownDomain {
                name: "nope".to_owned()
            }
        );
        assert!(p.per_bump_current("nope", Amps::new(1.0)).is_err());
        assert!(p.within_em_limit("nope", Amps::new(1.0)).is_err());
    }

    #[test]
    fn literal_skylake_layouts_pass_validation() {
        // The hand-constructed constants must satisfy everything `new`
        // checks, or the constructors have drifted from the validator.
        for p in [
            PackageLayout::skylake_mobile(),
            PackageLayout::skylake_desktop(),
        ] {
            assert!(PackageLayout::new(
                p.name.clone(),
                p.domains().to_vec(),
                p.max_current_per_bump
            )
            .is_ok());
        }
    }
}

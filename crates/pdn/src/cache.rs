//! Shared substrate cache.
//!
//! The experiment harness rebuilds the same physical substrates over and
//! over: every `Product::build` sweeps a full impedance profile to size its
//! guardband, every figure builds the same two Skylake PDNs, and every
//! transient run re-derives the same DC operating point. These quantities
//! are pure functions of the circuit values, so they are cached
//! process-wide, keyed by *content* (an FNV-1a hash over the exact `f64`
//! bit patterns of every component value). Two ladders with identical
//! element values share one cache entry no matter how they were built;
//! perturbing any value (as the sensitivity analysis does) produces a new
//! key and a fresh computation.
//!
//! All entries are wrapped in [`Arc`], so a cache hit is a pointer bump and
//! results can be shared freely across the worker threads of
//! [`dg_engine`]'s pool.

use crate::impedance::{ImpedanceAnalyzer, ImpedanceProfile};
use crate::ladder::Ladder;
use crate::skylake::{PdnVariant, SkylakePdn};
use crate::transient::LadderCoeffs;
use dg_engine::sync::TrackedMutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Incremental FNV-1a hasher over 64-bit words. Collision quality is ample
/// for the handful of distinct substrates an experiment run touches, and
/// the hash is stable across platforms (unlike `DefaultHasher`).
#[derive(Debug, Clone, Copy)]
pub struct ContentKey(u64);

impl ContentKey {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a new key.
    pub fn new() -> Self {
        ContentKey(Self::OFFSET)
    }

    /// Folds a raw 64-bit word into the key.
    pub fn word(mut self, w: u64) -> Self {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds an `f64` by exact bit pattern (so `-0.0 != 0.0`, and NaNs with
    /// different payloads differ — exactness matters more than canonic
    /// equality for a cache key).
    pub fn f64(self, v: f64) -> Self {
        self.word(v.to_bits())
    }

    /// Folds a byte string (names participate in the key only through
    /// [`Self::bytes`]; the numeric content is what matters, but names are
    /// cheap and keep logically distinct substrates distinct).
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// The finished key value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for ContentKey {
    fn default() -> Self {
        Self::new()
    }
}

/// Content key of a ladder: VR model plus every stage's series R/L and
/// shunt C/ESR/ESL/count, in order.
pub fn ladder_key(ladder: &Ladder) -> u64 {
    let vr = ladder.vr();
    let mut k = ContentKey::new()
        .f64(vr.loadline.value())
        .f64(vr.bandwidth.value());
    for stage in ladder.stages() {
        k = k
            .bytes(stage.name.as_bytes())
            .f64(stage.series.resistance.value())
            .f64(stage.series.inductance.value());
        match &stage.shunt {
            Some(bank) => {
                k = k
                    .word(1)
                    .f64(bank.capacitance.value())
                    .f64(bank.esr.value())
                    .f64(bank.esl.value())
                    .word(bank.count as u64);
            }
            None => k = k.word(0),
        }
    }
    k.finish()
}

fn analyzer_key(analyzer: &ImpedanceAnalyzer) -> ContentKey {
    ContentKey::new()
        .f64(analyzer.start.value())
        .f64(analyzer.stop.value())
        .word(analyzer.points as u64)
}

type ProfileMap = TrackedMutex<HashMap<u64, Arc<ImpedanceProfile>>>;

fn profile_map() -> &'static ProfileMap {
    static MAP: OnceLock<ProfileMap> = OnceLock::new();
    MAP.get_or_init(|| TrackedMutex::new("pdn.cache.profiles", HashMap::new()))
}

/// The impedance profile of `ladder` under `analyzer`, computed once per
/// distinct (sweep, circuit) content and shared thereafter.
pub fn impedance_profile(analyzer: &ImpedanceAnalyzer, ladder: &Ladder) -> Arc<ImpedanceProfile> {
    let key = analyzer_key(analyzer).word(ladder_key(ladder)).finish();
    if let Some(hit) = profile_map().lock().get(&key) {
        return Arc::clone(hit);
    }
    // Disk tier before compute: a warmed `--cache-dir` turns a
    // milliseconds-long sweep into one read. Exact bit patterns round-trip
    // through the codec, so a disk hit equals the original computation.
    if let Some(warm) = crate::diskcache::load_profile(key) {
        let mut map = profile_map().lock();
        return Arc::clone(map.entry(key).or_insert_with(|| Arc::new(warm)));
    }
    // Compute outside the lock: profiles take milliseconds and other
    // threads may want unrelated entries meanwhile. A racing miss on the
    // same key computes twice and the entries are identical.
    let fresh = Arc::new(analyzer.profile(ladder));
    crate::diskcache::store_profile(key, &fresh);
    let mut map = profile_map().lock();
    Arc::clone(map.entry(key).or_insert(fresh))
}

/// The default-sweep impedance profile of the calibrated Skylake PDN of
/// `variant` — the hottest substrate in the workspace (two of these back
/// every product build). A dedicated `OnceLock` per variant skips even the
/// hashing of the general cache.
pub fn skylake_profile(variant: PdnVariant) -> Arc<ImpedanceProfile> {
    static GATED: OnceLock<Arc<ImpedanceProfile>> = OnceLock::new();
    static BYPASSED: OnceLock<Arc<ImpedanceProfile>> = OnceLock::new();
    let slot = match variant {
        PdnVariant::Gated => &GATED,
        PdnVariant::Bypassed => &BYPASSED,
    };
    Arc::clone(slot.get_or_init(|| {
        let pdn = SkylakePdn::build(variant);
        impedance_profile(&ImpedanceAnalyzer::default(), &pdn.ladder)
    }))
}

type SteadyStateMap = TrackedMutex<HashMap<u64, Arc<Vec<f64>>>>;

fn steady_state_map() -> &'static SteadyStateMap {
    static MAP: OnceLock<SteadyStateMap> = OnceLock::new();
    MAP.get_or_init(|| TrackedMutex::new("pdn.cache.steady", HashMap::new()))
}

/// The DC steady state of `ladder`'s transient chain model for a given
/// source voltage and load current (the initial condition of every
/// transient run). Keyed by content, so the five-event di/dt sweeps that
/// all start from the same quiescent point derive it once.
pub fn dc_steady_state(
    ladder: &Ladder,
    source: f64,
    load: f64,
    compute: impl FnOnce() -> Vec<f64>,
) -> Arc<Vec<f64>> {
    let key = ContentKey::new()
        .word(ladder_key(ladder))
        .f64(source)
        .f64(load)
        .finish();
    if let Some(hit) = steady_state_map().lock().get(&key) {
        return Arc::clone(hit);
    }
    if let Some(warm) = crate::diskcache::load_state(key) {
        let mut map = steady_state_map().lock();
        return Arc::clone(map.entry(key).or_insert_with(|| Arc::new(warm)));
    }
    let fresh = Arc::new(compute());
    crate::diskcache::store_state(key, &fresh);
    let mut map = steady_state_map().lock();
    Arc::clone(map.entry(key).or_insert(fresh))
}

type CoeffsMap = TrackedMutex<HashMap<u64, Arc<LadderCoeffs>>>;

fn coeffs_map() -> &'static CoeffsMap {
    static MAP: OnceLock<CoeffsMap> = OnceLock::new();
    MAP.get_or_init(|| TrackedMutex::new("pdn.cache.coeffs", HashMap::new()))
}

/// The precompiled transient chain-model coefficients of `ladder`, computed
/// once per distinct ladder content and shared thereafter. Every transient
/// run — scalar or batched — starts here, so sweeps that integrate hundreds
/// of load steps against one ladder pay the `from_ladder` walk exactly once.
pub fn ladder_coeffs(ladder: &Ladder) -> Arc<LadderCoeffs> {
    let key = ladder_key(ladder);
    if let Some(hit) = coeffs_map().lock().get(&key) {
        return Arc::clone(hit);
    }
    if let Some(warm) = crate::diskcache::load_coeffs(key) {
        let mut map = coeffs_map().lock();
        return Arc::clone(map.entry(key).or_insert_with(|| Arc::new(warm)));
    }
    let fresh = Arc::new(LadderCoeffs::from_ladder(ladder));
    crate::diskcache::store_coeffs(key, &fresh);
    let mut map = coeffs_map().lock();
    Arc::clone(map.entry(key).or_insert(fresh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Hertz;

    #[test]
    fn skylake_profiles_are_shared_and_stable() {
        let a = skylake_profile(PdnVariant::Gated);
        let b = skylake_profile(PdnVariant::Gated);
        assert!(Arc::ptr_eq(&a, &b), "same variant must share one profile");
        let c = skylake_profile(PdnVariant::Bypassed);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_profile_matches_cold_computation_bitwise() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let analyzer = ImpedanceAnalyzer::default();
        let cold = analyzer.profile(&pdn.ladder);
        let cached = impedance_profile(&analyzer, &pdn.ladder);
        assert_eq!(cold.points().len(), cached.points().len());
        for (a, b) in cold.points().iter().zip(cached.points()) {
            assert_eq!(a.0.value().to_bits(), b.0.value().to_bits());
            assert_eq!(a.1.value().to_bits(), b.1.value().to_bits());
        }
    }

    #[test]
    fn perturbed_ladder_gets_its_own_entry() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let base_key = ladder_key(&pdn.ladder);
        let perturbed = pdn
            .ladder
            .with_mapped_stage("power-gate", |s| {
                s.series.resistance = s.series.resistance * 1.01;
            })
            .expect("gated ladder has a power-gate stage");
        assert_ne!(base_key, ladder_key(&perturbed));
        // And the same content always produces the same key.
        assert_eq!(
            base_key,
            ladder_key(&SkylakePdn::build(PdnVariant::Gated).ladder)
        );
    }

    #[test]
    fn distinct_sweeps_do_not_collide() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let narrow = ImpedanceAnalyzer::new(Hertz::new(1e5), Hertz::new(1e7), 16).unwrap();
        let p = impedance_profile(&narrow, &pdn.ladder);
        let q = impedance_profile(&ImpedanceAnalyzer::default(), &pdn.ladder);
        assert_ne!(p.points().len(), q.points().len());
    }

    #[test]
    fn ladder_coeffs_shared_per_ladder_content() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let a = ladder_coeffs(&pdn.ladder);
        let b = ladder_coeffs(&SkylakePdn::build(PdnVariant::Gated).ladder);
        assert!(
            Arc::ptr_eq(&a, &b),
            "identical ladder content must share one coefficient set"
        );
        assert_eq!(*a, LadderCoeffs::from_ladder(&pdn.ladder));
        let c = ladder_coeffs(&SkylakePdn::build(PdnVariant::Bypassed).ladder);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn steady_state_computed_once_per_operating_point() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let mut calls = 0;
        let a = dc_steady_state(&pdn.ladder, 1.0, 20.0, || {
            calls += 1;
            vec![1.0, 2.0]
        });
        let b = dc_steady_state(&pdn.ladder, 1.0, 20.0, || {
            calls += 1;
            unreachable!("second lookup must hit the cache")
        });
        assert_eq!(calls, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }
}

//! di/dt noise characterization and voltage-emergency detection.
//!
//! Fast current transients (pipeline restarts, power-gate wake-ups,
//! AVX bursts) excite the PDN's resonances and can drive the die voltage
//! below the functional floor `Vmin` — a *voltage emergency*
//! (paper Sec. 2.4.2 and its references). This module sweeps a family of
//! load-step events over a ladder, reports the droop of each, and checks
//! whether the applied guardband prevents every emergency.

use crate::ladder::Ladder;
use crate::transient::{LoadStep, TransientResult, TransientSim};
use crate::units::{Amps, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Lanes per batched transient task: several full vectors of the widest
/// explicit-SIMD kernel ([`crate::simd::KernelWidth::X8`]) so the
/// per-step bookkeeping amortizes across a wide batch, yet small enough
/// that a sweep still spreads across the worker pool.
pub(crate) const SWEEP_LANES: usize = 32;

/// Lane groups integrated between two progress reports in
/// [`droop_sweep_with_progress`]: large enough to keep every worker busy
/// between barriers, small enough that a streaming consumer sees steady
/// progress.
pub(crate) const PROGRESS_GROUPS: usize = 8;

/// A named di/dt event class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DidtEvent {
    /// Event name (e.g. `"1-core pipeline restart"`).
    pub name: String,
    /// Current step magnitude.
    pub delta: Amps,
    /// Ramp time of the event.
    pub slew: Seconds,
}

/// The standard event family for a 4-core client part: pipeline restarts
/// per active-core count plus a staggered full-domain power-gate wake.
pub fn client_event_family() -> Vec<DidtEvent> {
    vec![
        DidtEvent {
            name: "1-core pipeline restart".to_owned(),
            delta: Amps::new(12.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "2-core pipeline restart".to_owned(),
            delta: Amps::new(24.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "4-core pipeline restart".to_owned(),
            delta: Amps::new(48.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "staggered power-gate wake".to_owned(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(15.0),
        },
        DidtEvent {
            name: "AVX burst".to_owned(),
            delta: Amps::new(35.0),
            slew: Seconds::from_ns(5.0),
        },
    ]
}

/// Result of simulating one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DidtResult {
    /// The event.
    pub event: DidtEvent,
    /// Worst droop below the pre-event level.
    pub droop: Volts,
    /// Minimum die voltage reached.
    pub v_min: Volts,
    /// Whether the voltage fell below the functional floor.
    pub emergency: bool,
}

/// Noise analysis of a ladder under the event family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseAnalysis {
    /// Per-event results.
    pub results: Vec<DidtResult>,
    /// The worst droop across all events.
    pub worst_droop: Volts,
    /// Number of emergencies.
    pub emergencies: usize,
}

impl NoiseAnalysis {
    /// `true` when no event drove the rail below Vmin.
    pub fn is_safe(&self) -> bool {
        self.emergencies == 0
    }
}

/// Simulates every event in `events` on `ladder`.
///
/// `v_nominal` is the rail setpoint (including guardband); `v_min_limit`
/// is the functional floor; `quiescent` the pre-event current.
pub fn analyze(
    ladder: &Ladder,
    events: &[DidtEvent],
    v_nominal: Volts,
    v_min_limit: Volts,
    quiescent: Amps,
) -> NoiseAnalysis {
    let sim = TransientSim {
        source: v_nominal,
        dt: Seconds::from_ns(0.2),
        duration: Seconds::from_us(30.0),
        decimate: 256,
    };
    // The whole event family integrates as one lockstep batch: the
    // structure-of-arrays kernel is bit-identical to per-event scalar
    // runs, so the results (and every downstream guardband) are unchanged.
    let steps: Vec<LoadStep> = events
        .iter()
        .map(|event| LoadStep {
            from: quiescent,
            to: quiescent + event.delta,
            at: Seconds::from_us(1.0),
            slew: event.slew,
        })
        .collect();
    let runs = sim.run_batch(ladder, &steps);
    let mut results = Vec::with_capacity(events.len());
    let mut worst = Volts::ZERO;
    let mut emergencies = 0;
    for (event, r) in events.iter().zip(&runs) {
        let droop = r.droop();
        let emergency = r.v_min < v_min_limit;
        if emergency {
            emergencies += 1;
        }
        worst = worst.max(droop);
        results.push(DidtResult {
            event: event.clone(),
            droop,
            v_min: r.v_min,
            emergency,
        });
    }
    NoiseAnalysis {
        results,
        worst_droop: worst,
        emergencies,
    }
}

/// Worst droop for each step magnitude in `deltas` (from `quiescent`, with
/// a common `slew`), in input order.
///
/// The grid is carved into [`SWEEP_LANES`]-wide batches and the batches
/// fan out over the [`dg_engine`] worker pool, so each worker integrates
/// several lanes in lockstep instead of one scenario per task. Results are
/// bit-identical to sequential [`TransientSim::run`] calls (ramp start at
/// 1 µs, as in [`analyze`]) for any thread count.
pub fn droop_sweep(
    ladder: &Ladder,
    sim: &TransientSim,
    quiescent: Amps,
    deltas: &[Amps],
    slew: Seconds,
) -> Vec<Volts> {
    let steps = sweep_steps(quiescent, deltas, slew);
    let chunks: Vec<&[LoadStep]> = steps.chunks(SWEEP_LANES).collect();
    dg_engine::par_map(&chunks, |_, chunk| droop_group(ladder, sim, chunk))
        .into_iter()
        .flatten()
        .collect()
}

/// [`droop_sweep`] with streaming progress: `progress` is called on the
/// integrating thread after each [`PROGRESS_GROUPS`]-group wave completes,
/// with the total number of finished lanes and the just-finished droops in
/// input order.
///
/// Built on [`dg_engine::par_map_progress`], so the returned vector — and
/// the *sequence* of progress calls — is bit-identical to [`droop_sweep`]
/// for any thread count. This is the seam `/v1/droop_sweep` streams
/// population-scale sweeps through.
pub fn droop_sweep_with_progress(
    ladder: &Ladder,
    sim: &TransientSim,
    quiescent: Amps,
    deltas: &[Amps],
    slew: Seconds,
    mut progress: impl FnMut(usize, &[Volts]),
) -> Vec<Volts> {
    let steps = sweep_steps(quiescent, deltas, slew);
    let groups: Vec<&[LoadStep]> = steps.chunks(SWEEP_LANES).collect();
    let mut done = 0usize;
    dg_engine::par_map_progress(
        &groups,
        PROGRESS_GROUPS,
        |_, group| droop_group(ladder, sim, group),
        |_, fresh| {
            let flat: Vec<Volts> = fresh.iter().flatten().copied().collect();
            done += flat.len();
            progress(done, &flat);
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

/// The retired end-to-end sweep path, kept as the executable baseline for
/// `bench-pdn`'s end-to-end row: chunk-barrier scheduling
/// ([`dg_engine::par_map_progress_barrier`]), capability-widest kernel
/// dispatch ([`crate::simd::KernelWidth::detect`]), and a fresh heap
/// workspace per lane group — exactly the scheduling, dispatch, and
/// allocation profile the streaming rewrite replaced. Results are
/// bit-identical to [`droop_sweep`], which the bench asserts before
/// timing.
pub fn droop_sweep_barrier_reference(
    ladder: &Ladder,
    sim: &TransientSim,
    quiescent: Amps,
    deltas: &[Amps],
    slew: Seconds,
) -> Vec<Volts> {
    let steps = sweep_steps(quiescent, deltas, slew);
    let groups: Vec<&[LoadStep]> = steps.chunks(SWEEP_LANES).collect();
    dg_engine::par_map_progress_barrier(
        &groups,
        PROGRESS_GROUPS,
        |_, group| {
            let mut ws = crate::batch::BatchWorkspace::new();
            sim.run_batch_in(ladder, group, crate::simd::KernelWidth::detect(), &mut ws)
                .iter()
                .map(TransientResult::droop)
                .collect::<Vec<Volts>>()
        },
        |_, _| {},
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Expands a delta grid into the load steps [`analyze`] applies (ramp
/// start at 1 µs, shared slew).
fn sweep_steps(quiescent: Amps, deltas: &[Amps], slew: Seconds) -> Vec<LoadStep> {
    deltas
        .iter()
        .map(|&delta| LoadStep {
            from: quiescent,
            to: quiescent + delta,
            at: Seconds::from_us(1.0),
            slew,
        })
        .collect()
}

/// Integrates one lane group as a lockstep batch and reduces to droops —
/// through the calling worker's warm [`crate::batch::BatchWorkspace`], so
/// a steady-state sweep's inner loop performs no heap allocation beyond
/// the droop vector itself.
fn droop_group(ladder: &Ladder, sim: &TransientSim, group: &[LoadStep]) -> Vec<Volts> {
    crate::batch::with_thread_workspace(|ws| {
        sim.run_batch_in(ladder, group, crate::simd::KernelWidth::dispatch(), ws)
            .iter()
            .map(TransientResult::droop)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skylake::{PdnVariant, SkylakePdn};

    #[test]
    fn droop_grows_with_event_magnitude() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let events = client_event_family();
        let a = analyze(
            &pdn.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        let one_core = &a.results[0];
        let four_core = &a.results[2];
        assert!(four_core.droop > one_core.droop);
        assert_eq!(a.results.len(), events.len());
    }

    #[test]
    fn bypassed_droops_less_than_gated() {
        let gated = SkylakePdn::build(PdnVariant::Gated);
        let bypassed = SkylakePdn::build(PdnVariant::Bypassed);
        let events = client_event_family();
        let ag = analyze(
            &gated.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        let ab = analyze(
            &bypassed.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        assert!(
            ab.worst_droop < ag.worst_droop,
            "bypassed {} vs gated {}",
            ab.worst_droop,
            ag.worst_droop
        );
    }

    #[test]
    fn adequate_guardband_prevents_emergencies() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        // Run a Vmin-level rail with a generous guardband above it.
        let v_min = Volts::new(0.60);
        let a = analyze(
            &pdn.ladder,
            &client_event_family(),
            v_min + Volts::from_mv(320.0),
            v_min,
            Amps::new(5.0),
        );
        assert!(a.is_safe(), "emergencies: {}", a.emergencies);
    }

    #[test]
    fn missing_guardband_causes_emergencies() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let v_min = Volts::new(0.60);
        // Only 40 mV above Vmin: the 4-core restart must punch through.
        let a = analyze(
            &pdn.ladder,
            &client_event_family(),
            v_min + Volts::from_mv(40.0),
            v_min,
            Amps::new(5.0),
        );
        assert!(!a.is_safe());
        assert!(a.results.iter().any(|r| r.emergency));
    }

    #[test]
    fn droop_sweep_matches_scalar_runs() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(1.0),
            duration: Seconds::from_us(10.0),
            decimate: 128,
        };
        // More deltas than SWEEP_LANES so the sweep spans several batches,
        // with a remainder group narrower than one batch.
        let deltas: Vec<Amps> = (1..=35).map(|k| Amps::new(1.5 * f64::from(k))).collect();
        assert!(deltas.len() > SWEEP_LANES && !deltas.len().is_multiple_of(SWEEP_LANES));
        let quiescent = Amps::new(5.0);
        let slew = Seconds::from_ns(10.0);
        let swept = droop_sweep(&pdn.ladder, &sim, quiescent, &deltas, slew);
        assert_eq!(swept.len(), deltas.len());
        for (&delta, &droop) in deltas.iter().zip(&swept) {
            let step = LoadStep {
                from: quiescent,
                to: quiescent + delta,
                at: Seconds::from_us(1.0),
                slew,
            };
            let scalar = sim.run(&pdn.ladder, step).droop();
            assert_eq!(droop.value().to_bits(), scalar.value().to_bits());
        }
        // Droop grows monotonically with the step in this regime.
        for w in swept.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn droop_sweep_with_progress_matches_and_streams_in_order() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(2.0),
            duration: Seconds::from_us(5.0),
            decimate: 256,
        };
        // Enough lanes for several progress waves plus a short tail.
        let n = PROGRESS_GROUPS * SWEEP_LANES * 2 + 7;
        #[allow(clippy::cast_precision_loss)]
        let deltas: Vec<Amps> = (0..n).map(|k| Amps::new(0.25 * k as f64 + 1.0)).collect();
        let quiescent = Amps::new(5.0);
        let slew = Seconds::from_ns(10.0);
        let plain = droop_sweep(&pdn.ladder, &sim, quiescent, &deltas, slew);

        let mut seen: Vec<Volts> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let streamed = droop_sweep_with_progress(
            &pdn.ladder,
            &sim,
            quiescent,
            &deltas,
            slew,
            |done, fresh| {
                seen.extend_from_slice(fresh);
                counts.push(done);
            },
        );

        // The returned vector is bit-identical to the plain sweep, and the
        // progress stream concatenates to exactly that vector.
        assert_eq!(streamed.len(), plain.len());
        for (a, b) in plain.iter().zip(&streamed) {
            assert_eq!(a.value().to_bits(), b.value().to_bits());
        }
        assert_eq!(seen.len(), plain.len());
        for (a, b) in plain.iter().zip(&seen) {
            assert_eq!(a.value().to_bits(), b.value().to_bits());
        }
        // Done-counts are strictly increasing and end at the lane count.
        assert!(counts.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(counts.last().copied(), Some(n));
        assert!(counts.len() >= 3, "expected several waves, got {counts:?}");
    }

    #[test]
    fn slower_slew_softens_the_droop() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sharp = DidtEvent {
            name: "sharp".into(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(1.0),
        };
        let staggered = DidtEvent {
            name: "staggered".into(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(500.0),
        };
        let a = analyze(
            &pdn.ladder,
            &[sharp, staggered],
            Volts::new(1.0),
            Volts::new(0.6),
            Amps::new(5.0),
        );
        assert!(
            a.results[1].droop <= a.results[0].droop,
            "staggered {} vs sharp {}",
            a.results[1].droop,
            a.results[0].droop
        );
    }
}

//! di/dt noise characterization and voltage-emergency detection.
//!
//! Fast current transients (pipeline restarts, power-gate wake-ups,
//! AVX bursts) excite the PDN's resonances and can drive the die voltage
//! below the functional floor `Vmin` — a *voltage emergency*
//! (paper Sec. 2.4.2 and its references). This module sweeps a family of
//! load-step events over a ladder, reports the droop of each, and checks
//! whether the applied guardband prevents every emergency.

use crate::ladder::Ladder;
use crate::transient::{LoadStep, TransientResult, TransientSim};
use crate::units::{Amps, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Lanes per batched transient task: large enough to fill the SIMD width
/// of the structure-of-arrays kernel with headroom, small enough that a
/// sweep still spreads across the worker pool.
pub(crate) const SWEEP_LANES: usize = 8;

/// A named di/dt event class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DidtEvent {
    /// Event name (e.g. `"1-core pipeline restart"`).
    pub name: String,
    /// Current step magnitude.
    pub delta: Amps,
    /// Ramp time of the event.
    pub slew: Seconds,
}

/// The standard event family for a 4-core client part: pipeline restarts
/// per active-core count plus a staggered full-domain power-gate wake.
pub fn client_event_family() -> Vec<DidtEvent> {
    vec![
        DidtEvent {
            name: "1-core pipeline restart".to_owned(),
            delta: Amps::new(12.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "2-core pipeline restart".to_owned(),
            delta: Amps::new(24.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "4-core pipeline restart".to_owned(),
            delta: Amps::new(48.0),
            slew: Seconds::from_ns(2.0),
        },
        DidtEvent {
            name: "staggered power-gate wake".to_owned(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(15.0),
        },
        DidtEvent {
            name: "AVX burst".to_owned(),
            delta: Amps::new(35.0),
            slew: Seconds::from_ns(5.0),
        },
    ]
}

/// Result of simulating one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DidtResult {
    /// The event.
    pub event: DidtEvent,
    /// Worst droop below the pre-event level.
    pub droop: Volts,
    /// Minimum die voltage reached.
    pub v_min: Volts,
    /// Whether the voltage fell below the functional floor.
    pub emergency: bool,
}

/// Noise analysis of a ladder under the event family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseAnalysis {
    /// Per-event results.
    pub results: Vec<DidtResult>,
    /// The worst droop across all events.
    pub worst_droop: Volts,
    /// Number of emergencies.
    pub emergencies: usize,
}

impl NoiseAnalysis {
    /// `true` when no event drove the rail below Vmin.
    pub fn is_safe(&self) -> bool {
        self.emergencies == 0
    }
}

/// Simulates every event in `events` on `ladder`.
///
/// `v_nominal` is the rail setpoint (including guardband); `v_min_limit`
/// is the functional floor; `quiescent` the pre-event current.
pub fn analyze(
    ladder: &Ladder,
    events: &[DidtEvent],
    v_nominal: Volts,
    v_min_limit: Volts,
    quiescent: Amps,
) -> NoiseAnalysis {
    let sim = TransientSim {
        source: v_nominal,
        dt: Seconds::from_ns(0.2),
        duration: Seconds::from_us(30.0),
        decimate: 256,
    };
    // The whole event family integrates as one lockstep batch: the
    // structure-of-arrays kernel is bit-identical to per-event scalar
    // runs, so the results (and every downstream guardband) are unchanged.
    let steps: Vec<LoadStep> = events
        .iter()
        .map(|event| LoadStep {
            from: quiescent,
            to: quiescent + event.delta,
            at: Seconds::from_us(1.0),
            slew: event.slew,
        })
        .collect();
    let runs = sim.run_batch(ladder, &steps);
    let mut results = Vec::with_capacity(events.len());
    let mut worst = Volts::ZERO;
    let mut emergencies = 0;
    for (event, r) in events.iter().zip(&runs) {
        let droop = r.droop();
        let emergency = r.v_min < v_min_limit;
        if emergency {
            emergencies += 1;
        }
        worst = worst.max(droop);
        results.push(DidtResult {
            event: event.clone(),
            droop,
            v_min: r.v_min,
            emergency,
        });
    }
    NoiseAnalysis {
        results,
        worst_droop: worst,
        emergencies,
    }
}

/// Worst droop for each step magnitude in `deltas` (from `quiescent`, with
/// a common `slew`), in input order.
///
/// The grid is carved into [`SWEEP_LANES`]-wide batches and the batches
/// fan out over the [`dg_engine`] worker pool, so each worker integrates
/// several lanes in lockstep instead of one scenario per task. Results are
/// bit-identical to sequential [`TransientSim::run`] calls (ramp start at
/// 1 µs, as in [`analyze`]) for any thread count.
pub fn droop_sweep(
    ladder: &Ladder,
    sim: &TransientSim,
    quiescent: Amps,
    deltas: &[Amps],
    slew: Seconds,
) -> Vec<Volts> {
    let steps: Vec<LoadStep> = deltas
        .iter()
        .map(|&delta| LoadStep {
            from: quiescent,
            to: quiescent + delta,
            at: Seconds::from_us(1.0),
            slew,
        })
        .collect();
    let chunks: Vec<&[LoadStep]> = steps.chunks(SWEEP_LANES).collect();
    dg_engine::par_map(&chunks, |_, chunk| {
        sim.run_batch(ladder, chunk)
            .iter()
            .map(TransientResult::droop)
            .collect::<Vec<Volts>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skylake::{PdnVariant, SkylakePdn};

    #[test]
    fn droop_grows_with_event_magnitude() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let events = client_event_family();
        let a = analyze(
            &pdn.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        let one_core = &a.results[0];
        let four_core = &a.results[2];
        assert!(four_core.droop > one_core.droop);
        assert_eq!(a.results.len(), events.len());
    }

    #[test]
    fn bypassed_droops_less_than_gated() {
        let gated = SkylakePdn::build(PdnVariant::Gated);
        let bypassed = SkylakePdn::build(PdnVariant::Bypassed);
        let events = client_event_family();
        let ag = analyze(
            &gated.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        let ab = analyze(
            &bypassed.ladder,
            &events,
            Volts::new(1.0),
            Volts::new(0.60),
            Amps::new(5.0),
        );
        assert!(
            ab.worst_droop < ag.worst_droop,
            "bypassed {} vs gated {}",
            ab.worst_droop,
            ag.worst_droop
        );
    }

    #[test]
    fn adequate_guardband_prevents_emergencies() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        // Run a Vmin-level rail with a generous guardband above it.
        let v_min = Volts::new(0.60);
        let a = analyze(
            &pdn.ladder,
            &client_event_family(),
            v_min + Volts::from_mv(320.0),
            v_min,
            Amps::new(5.0),
        );
        assert!(a.is_safe(), "emergencies: {}", a.emergencies);
    }

    #[test]
    fn missing_guardband_causes_emergencies() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let v_min = Volts::new(0.60);
        // Only 40 mV above Vmin: the 4-core restart must punch through.
        let a = analyze(
            &pdn.ladder,
            &client_event_family(),
            v_min + Volts::from_mv(40.0),
            v_min,
            Amps::new(5.0),
        );
        assert!(!a.is_safe());
        assert!(a.results.iter().any(|r| r.emergency));
    }

    #[test]
    fn droop_sweep_matches_scalar_runs() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sim = TransientSim {
            source: Volts::new(1.0),
            dt: Seconds::from_ns(0.5),
            duration: Seconds::from_us(20.0),
            decimate: 128,
        };
        // More deltas than SWEEP_LANES so the sweep spans several batches.
        let deltas: Vec<Amps> = (1..=11).map(|k| Amps::new(4.0 * f64::from(k))).collect();
        let quiescent = Amps::new(5.0);
        let slew = Seconds::from_ns(10.0);
        let swept = droop_sweep(&pdn.ladder, &sim, quiescent, &deltas, slew);
        assert_eq!(swept.len(), deltas.len());
        for (&delta, &droop) in deltas.iter().zip(&swept) {
            let step = LoadStep {
                from: quiescent,
                to: quiescent + delta,
                at: Seconds::from_us(1.0),
                slew,
            };
            let scalar = sim.run(&pdn.ladder, step).droop();
            assert_eq!(droop.value().to_bits(), scalar.value().to_bits());
        }
        // Droop grows monotonically with the step in this regime.
        for w in swept.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn slower_slew_softens_the_droop() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let sharp = DidtEvent {
            name: "sharp".into(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(1.0),
        };
        let staggered = DidtEvent {
            name: "staggered".into(),
            delta: Amps::new(30.0),
            slew: Seconds::from_ns(500.0),
        };
        let a = analyze(
            &pdn.ladder,
            &[sharp, staggered],
            Volts::new(1.0),
            Volts::new(0.6),
            Amps::new(5.0),
        );
        assert!(
            a.results[1].droop <= a.results[0].droop,
            "staggered {} vs sharp {}",
            a.results[1].droop,
            a.results[0].droop
        );
    }
}

//! Portable explicit-SIMD lane arithmetic for the batched transient kernel.
//!
//! The batched RK4 kernel in [`crate::batch`] steps B independent scenarios
//! ("lanes") in lockstep over lane-major structure-of-arrays buffers. Its
//! inner loops are pure element-wise f64 arithmetic across lanes, which this
//! module expresses explicitly: a [`Lanes`] trait over array-backed vector
//! newtypes ([`F64x4`], [`F64x8`]) plus the plain `f64` scalar fallback.
//!
//! Two invariants make the wrapper safe to dispatch at any width:
//!
//! * **Lanes never mix.** Every operation is a per-element IEEE-754 add,
//!   subtract, or multiply in lane order — never a horizontal reduction and
//!   never a fused multiply-add (Rust does not contract `a * b + c`). An
//!   element's value therefore depends only on its own lane's inputs, and
//!   every width produces bit-identical results element-for-element.
//! * **One dispatch seam.** [`KernelWidth::detect`] is the only place in the
//!   workspace allowed to query CPU features at runtime (enforced by
//!   `dg-analyze`'s determinism-hygiene rule); the kernel picks a width once
//!   per batch — [`KernelWidth::dispatch`], which clamps AVX-512 hosts to
//!   the measured-faster x4 kernel — and the remainder columns run the
//!   scalar implementation.
//!
//! The newtypes are plain `[f64; N]` arrays, not `std::arch` intrinsics: the
//! batch kernel's width-specific entry points are compiled under
//! `#[target_feature(enable = "avx2")]` / `"avx512f"`, where LLVM lowers the
//! per-element loops to full-width vector instructions. Off x86-64, or on
//! CPUs without the feature, the same generic code compiles portably.

/// Kernel vector width, selected once per batch at the dispatch seam.
///
/// Widths are ordered narrowest-first so a requested width can be clamped
/// to what the running CPU supports (`min(requested, detected)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelWidth {
    /// One lane per loop iteration — the portable fallback, and the
    /// reference semantics every wider width must reproduce bit-for-bit.
    Scalar,
    /// Four f64 lanes per iteration (AVX2 ymm registers).
    X4,
    /// Eight f64 lanes per iteration (AVX-512F zmm registers).
    X8,
}

impl KernelWidth {
    /// Every width, narrowest first (bench and equivalence tests iterate
    /// this).
    pub const ALL: [KernelWidth; 3] = [KernelWidth::Scalar, KernelWidth::X4, KernelWidth::X8];

    /// Number of f64 elements processed per inner-loop iteration.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            KernelWidth::Scalar => 1,
            KernelWidth::X4 => 4,
            KernelWidth::X8 => 8,
        }
    }

    /// Stable label used in bench rows and diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelWidth::Scalar => "scalar",
            KernelWidth::X4 => "x4",
            KernelWidth::X8 => "x8",
        }
    }

    /// The widest kernel the running CPU can execute natively.
    ///
    /// This is the workspace's **only** runtime CPU-feature query: every
    /// other module takes a [`KernelWidth`] value and trusts it. The choice
    /// cannot perturb results — all widths are bit-identical — so dispatch
    /// stays outside the determinism contract by construction.
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            // dg-analyze: allow(determinism-hygiene, reason = "the single sanctioned dispatch seam; all widths are bit-identical")
            if std::arch::is_x86_feature_detected!("avx512f") {
                return KernelWidth::X8;
            }
            // dg-analyze: allow(determinism-hygiene, reason = "the single sanctioned dispatch seam; all widths are bit-identical")
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelWidth::X4;
            }
        }
        KernelWidth::Scalar
    }

    /// The *calibrated* default width — what [`detect`](Self::detect)
    /// supports, corrected for the known AVX-512 pathology.
    ///
    /// `BENCH_pdn.json` measures the x8 kernel consistently *slower* than
    /// x4 on AVX-512 hosts (5.2× vs 7.0× over scalar on the reference
    /// machine): 512-bit execution triggers frequency downclocking, and the
    /// batched RK4 kernel is dense enough in zmm µops to sit squarely in
    /// the licence-throttled regime. So the default dispatch clamps X8 to
    /// X4 — AVX2 at full clocks beats AVX-512 at reduced ones — while
    /// [`detect`](Self::detect) keeps reporting true capability for the
    /// safety gates of the `#[target_feature]` entry points and for callers
    /// that explicitly want the widest kernel (the bench sweeps every
    /// width regardless). All widths are bit-identical, so this choice is
    /// pure throughput policy; `tests/width_dispatch.rs` pins that the
    /// dispatched width is never the measured-slowest row of
    /// `BENCH_pdn.json`.
    #[must_use]
    pub fn dispatch() -> Self {
        match KernelWidth::detect() {
            KernelWidth::X8 => KernelWidth::X4,
            w => w,
        }
    }
}

/// Element-wise f64 arithmetic over a fixed number of lanes.
///
/// Implementations must be pure per-element IEEE-754 operations in lane
/// order with no fused multiply-add and no cross-lane interaction, so that
/// any two implementations agree bit-for-bit element-for-element. The
/// batch kernel's correctness proptests pin this contract.
pub trait Lanes: Copy {
    /// Number of f64 elements per vector.
    const WIDTH: usize;

    /// Broadcasts `x` into every lane.
    fn splat(x: f64) -> Self;

    /// Loads `Self::WIDTH` elements from the head of `src`.
    ///
    /// Callers hand exact-width chunks (via `chunks_exact`); shorter
    /// slices load zeros in the missing lanes rather than panicking.
    fn load(src: &[f64]) -> Self;

    /// Stores the lanes into the head of `dst` (excess lanes are dropped
    /// if `dst` is shorter than the width).
    fn store(self, dst: &mut [f64]);

    /// Lane-wise addition.
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// Lane-wise subtraction.
    #[must_use]
    fn sub(self, rhs: Self) -> Self;

    /// Lane-wise multiplication.
    #[must_use]
    fn mul(self, rhs: Self) -> Self;
}

impl Lanes for f64 {
    const WIDTH: usize = 1;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        src.first().copied().unwrap_or(0.0)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        if let Some(d) = dst.first_mut() {
            *d = self;
        }
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
}

macro_rules! array_lanes {
    ($(#[$doc:meta])* $name:ident, $w:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name([f64; $w]);

        impl Lanes for $name {
            const WIDTH: usize = $w;

            #[inline(always)]
            fn splat(x: f64) -> Self {
                $name([x; $w])
            }

            #[inline(always)]
            fn load(src: &[f64]) -> Self {
                $name(core::array::from_fn(|i| src.get(i).copied().unwrap_or(0.0)))
            }

            #[inline(always)]
            fn store(self, dst: &mut [f64]) {
                for (d, s) in dst.iter_mut().zip(self.0) {
                    *d = s;
                }
            }

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                $name(core::array::from_fn(|i| self.0[i] + rhs.0[i]))
            }

            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                $name(core::array::from_fn(|i| self.0[i] - rhs.0[i]))
            }

            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                $name(core::array::from_fn(|i| self.0[i] * rhs.0[i]))
            }
        }
    };
}

array_lanes!(
    /// Four f64 lanes backed by a plain array; lowers to one ymm register
    /// under AVX2 codegen and to SSE2 pairs portably.
    F64x4,
    4
);

array_lanes!(
    /// Eight f64 lanes backed by a plain array; lowers to one zmm register
    /// under AVX-512F codegen and to narrower pairs portably.
    F64x8,
    8
);

#[cfg(test)]
mod tests {
    use super::*;

    fn probe<L: Lanes>() {
        let xs: Vec<f64> = (0..L::WIDTH).map(|i| 1.5 + i as f64).collect();
        let ys: Vec<f64> = (0..L::WIDTH).map(|i| 0.25 * (i as f64 + 1.0)).collect();
        let x = L::load(&xs);
        let y = L::load(&ys);
        let mut add = vec![0.0; L::WIDTH];
        let mut sub = vec![0.0; L::WIDTH];
        let mut mul = vec![0.0; L::WIDTH];
        x.add(y).store(&mut add);
        x.sub(y).store(&mut sub);
        x.mul(y).store(&mut mul);
        for i in 0..L::WIDTH {
            assert_eq!(add[i].to_bits(), (xs[i] + ys[i]).to_bits());
            assert_eq!(sub[i].to_bits(), (xs[i] - ys[i]).to_bits());
            assert_eq!(mul[i].to_bits(), (xs[i] * ys[i]).to_bits());
        }
        let mut splat = vec![0.0; L::WIDTH];
        L::splat(3.75).store(&mut splat);
        assert!(splat.iter().all(|v| v.to_bits() == 3.75f64.to_bits()));
    }

    #[test]
    fn lane_ops_match_scalar_bitwise_at_every_width() {
        probe::<f64>();
        probe::<F64x4>();
        probe::<F64x8>();
    }

    #[test]
    fn short_loads_fill_missing_lanes_with_zero() {
        let v = F64x4::load(&[7.0, 8.0]);
        let mut out = [1.0; 4];
        v.store(&mut out);
        assert_eq!(out, [7.0, 8.0, 0.0, 0.0]);
        // A short store drops the excess lanes without panicking.
        let mut two = [0.0; 2];
        F64x8::splat(2.5).store(&mut two);
        assert_eq!(two, [2.5, 2.5]);
    }

    #[test]
    fn detect_is_stable_and_ordered() {
        let w = KernelWidth::detect();
        assert_eq!(w, KernelWidth::detect());
        assert!(KernelWidth::Scalar <= w);
        assert_eq!(KernelWidth::ALL.map(KernelWidth::lanes), [1, 4, 8]);
        assert_eq!(KernelWidth::Scalar.label(), "scalar");
        assert_eq!(KernelWidth::X8.label(), "x8");
    }
}

//! Time-domain transient simulation of load-step voltage droops.
//!
//! A current step at the die (e.g. cores waking from idle and issuing a burst
//! of wide vector operations) excites the PDN's resonances and produces the
//! first/second/third voltage droops. The worst-case droop sets the droop
//! guardband `V_gb` that the PMU must add above the nominal voltage
//! (paper Sec. 2.4.2).
//!
//! The ladder is converted into a chain of L–R series branches and grounded
//! node capacitors (cap-bank ESR/ESL are a frequency-domain refinement and
//! are ignored here; the dominant droop physics — path L/R against node C —
//! is retained). The resulting ODE system is integrated with classical RK4.

use crate::error::PdnError;
use crate::ladder::Ladder;
use crate::units::{Amps, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Minimum branch inductance substituted for ideal (zero-L) branches to keep
/// the ODE system well-posed. 1 pH is far below any physical routing segment.
const MIN_BRANCH_INDUCTANCE: f64 = 1e-12;

/// Parasitic die capacitance added when the final ladder stage has no shunt
/// bank, so the load node always has a state variable.
const PARASITIC_NODE_CAP: f64 = 1e-9;

/// The die voltage must stay inside the settling band for this much
/// consecutive simulated time before the run may stop early. Long enough
/// that a slow zero-crossing of a still-ringing waveform cannot fake
/// convergence unless its amplitude is already negligible.
pub(crate) const SETTLE_WINDOW_S: f64 = 500e-9;

/// Settling band half-width relative to the overall voltage excursion.
pub(crate) const SETTLE_REL_TOL: f64 = 1e-4;

/// Absolute floor of the settling band (guards the zero-excursion case).
pub(crate) const SETTLE_ABS_TOL_V: f64 = 1e-6;

/// A current step applied at the die node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadStep {
    /// Quiescent current before the step.
    pub from: Amps,
    /// Current after the step.
    pub to: Amps,
    /// Time at which the ramp starts.
    pub at: Seconds,
    /// Ramp duration (0 for an ideal step; a staggered power-gate wake-up is
    /// typically 10–20 ns, paper Sec. 2.1).
    pub slew: Seconds,
}

impl LoadStep {
    /// An ideal step from `from` to `to` at `at`.
    #[must_use]
    pub fn step(from: Amps, to: Amps, at: Seconds) -> Self {
        LoadStep {
            from,
            to,
            at,
            slew: Seconds::ZERO,
        }
    }

    /// The load current at time `t`.
    #[must_use]
    pub fn current_at(&self, t: Seconds) -> Amps {
        if t < self.at {
            return self.from;
        }
        if self.slew.value() <= 0.0 {
            return self.to;
        }
        let progress = ((t - self.at).value() / self.slew.value()).clamp(0.0, 1.0);
        self.from + (self.to - self.from) * progress
    }
}

/// Result of a transient simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Decimated `(time, die-voltage)` waveform.
    pub samples: Vec<(Seconds, Volts)>,
    /// Minimum die voltage observed.
    pub v_min: Volts,
    /// Time at which the minimum occurred.
    pub t_min: Seconds,
    /// Steady-state die voltage before the step.
    pub v_initial: Volts,
    /// Die voltage at the end of the simulated window.
    pub v_final: Volts,
}

impl TransientResult {
    /// Worst droop magnitude relative to the pre-step steady state.
    #[must_use]
    pub fn droop(&self) -> Volts {
        (self.v_initial - self.v_min).max(Volts::ZERO)
    }

    /// The resistive (DC) part of the voltage change: initial minus final.
    #[must_use]
    pub fn dc_shift(&self) -> Volts {
        self.v_initial - self.v_final
    }

    /// The dynamic overshoot beyond the final DC level (first-droop depth).
    #[must_use]
    pub fn dynamic_droop(&self) -> Volts {
        (self.v_final - self.v_min).max(Volts::ZERO)
    }

    /// A degenerate flat waveform pinned at `v` — the non-panicking
    /// fallback for code paths that are unreachable by construction.
    pub(crate) fn flatline(v: Volts) -> Self {
        TransientResult {
            samples: vec![(Seconds::ZERO, v)],
            v_min: v,
            t_min: Seconds::ZERO,
            v_initial: v,
            v_final: v,
        }
    }
}

/// Fixed-step RK4 transient simulator over a [`Ladder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientSim {
    /// VR setpoint voltage at the head of the ladder.
    pub source: Volts,
    /// Integration time step.
    pub dt: Seconds,
    /// Total simulated duration.
    pub duration: Seconds,
    /// Store every `decimate`-th sample in the output waveform.
    pub decimate: usize,
}

impl TransientSim {
    /// Creates a simulator with validation.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidTimeStep`] if `dt` or `duration` is not
    /// strictly positive, or if `dt > duration`.
    pub fn new(source: Volts, dt: Seconds, duration: Seconds) -> Result<Self, PdnError> {
        if !(dt.value() > 0.0 && duration.value() > 0.0 && dt.value() <= duration.value()) {
            return Err(PdnError::InvalidTimeStep { dt: dt.value() });
        }
        Ok(TransientSim {
            source,
            dt,
            duration,
            decimate: 16,
        })
    }

    /// A simulator tuned for droop capture: 0.1 ns step over 20 µs.
    #[must_use]
    pub fn droop_capture(source: Volts) -> Self {
        TransientSim {
            source,
            dt: Seconds::from_ns(0.1),
            duration: Seconds::from_us(20.0),
            decimate: 64,
        }
    }

    /// Runs the simulation of `step` applied to `ladder`'s die node.
    ///
    /// This is a thin wrapper over a one-lane [`TransientSim::run_batch`]
    /// call — the batched structure-of-arrays kernel in [`crate::batch`]
    /// is the *only* integration loop, and it is bit-identical
    /// lane-for-lane at every kernel width, so a single-lane batch is the
    /// scalar path. The chain-model coefficients are memoized per ladder
    /// content in [`crate::cache::ladder_coeffs`], the system starts in
    /// the exact DC steady state for `step.from`, and once the die voltage
    /// has held the post-step analytic steady state within a tight band
    /// for [`SETTLE_WINDOW_S`] of simulated time the remaining window is
    /// skipped: every later sample would differ from `v_final` by less
    /// than the band, and the global minimum (which the droop guardband is
    /// derived from) necessarily occurred earlier.
    #[must_use]
    pub fn run(&self, ladder: &Ladder, step: LoadStep) -> TransientResult {
        self.run_batch(ladder, core::slice::from_ref(&step))
            .pop()
            // run_batch returns exactly one result per input lane, so the
            // fallback is unreachable; it exists only to honour the
            // crate's no-panic rule.
            .unwrap_or_else(|| TransientResult::flatline(self.source))
    }

    /// Convenience: worst droop for a current step of `delta` amps starting
    /// from `quiescent`, applied after 1 µs with a 10 ns slew (a typical
    /// staggered wake-up).
    #[must_use]
    pub fn droop_for_step(&self, ladder: &Ladder, quiescent: Amps, delta: Amps) -> Volts {
        let step = LoadStep {
            from: quiescent,
            to: quiescent + delta,
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(10.0),
        };
        self.run(ladder, step).droop()
    }
}

/// Appends the end-of-run sample at the waveform's true exit time.
///
/// When the exit step coincides with a decimated sample the timestamps are
/// bit-equal and the value is already recorded, so nothing is pushed —
/// the waveform never carries two samples with one timestamp.
pub(crate) fn push_final_sample(samples: &mut Vec<(Seconds, Volts)>, t_exit: f64, v_final: Volts) {
    if samples.last().map(|(t, _)| t.value().to_bits()) != Some(t_exit.to_bits()) {
        samples.push((Seconds::new(t_exit), v_final));
    }
}

/// Precompiled chain-model coefficients of a [`Ladder`]: series branches
/// (R, L) between grounded C nodes, flattened into cache-friendly parallel
/// arrays with the reciprocals of L and C precomputed, so the RK4 inner
/// loop (four derivative evaluations per step, millions of steps per run)
/// multiplies instead of divides and never re-walks the ladder.
///
/// The coefficients are a pure function of the ladder's element values —
/// the VR setpoint enters the integration separately — so one compilation
/// serves every simulator configuration and every load step applied to the
/// same ladder. [`crate::cache::ladder_coeffs`] memoizes them process-wide,
/// keyed by the ladder's content hash.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderCoeffs {
    /// Series resistance of branch `k`, Ω.
    pub(crate) r: Vec<f64>,
    /// Shunt capacitance of node `k`, F.
    pub(crate) c: Vec<f64>,
    /// Reciprocal series inductance of branch `k`, 1/H.
    pub(crate) inv_l: Vec<f64>,
    /// Reciprocal shunt capacitance of node `k`, 1/F.
    pub(crate) inv_c: Vec<f64>,
}

impl LadderCoeffs {
    /// Compiles `ladder` into chain-model coefficient arrays.
    #[must_use]
    pub fn from_ladder(ladder: &Ladder) -> Self {
        let mut r = Vec::new();
        let mut l = Vec::new();
        let mut c = Vec::new();

        // VR branch: load-line resistance + equivalent output inductance.
        let vr = ladder.vr();
        let mut pending_r = vr.loadline.value();
        let mut pending_l = vr.equivalent_inductance();

        for stage in ladder.stages() {
            pending_r += stage.series.resistance.value();
            pending_l += stage.series.inductance.value();
            if let Some(bank) = &stage.shunt {
                r.push(pending_r);
                l.push(pending_l.max(MIN_BRANCH_INDUCTANCE));
                c.push(bank.total_capacitance().value());
                pending_r = 0.0;
                pending_l = 0.0;
            }
        }
        // Trailing series segments without a shunt: give the die node a
        // parasitic capacitance so the load has a state variable.
        if pending_r > 0.0 || pending_l > 0.0 || c.is_empty() {
            r.push(pending_r);
            l.push(pending_l.max(MIN_BRANCH_INDUCTANCE));
            c.push(PARASITIC_NODE_CAP);
        }

        let inv_l = l.iter().map(|&x| 1.0 / x).collect();
        let inv_c = c.iter().map(|&x| 1.0 / x).collect();
        LadderCoeffs { r, c, inv_l, inv_c }
    }

    /// Number of C-node state pairs (the state vector is `2 * nodes()`).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.c.len()
    }

    /// DC steady state for a constant load current: every branch carries the
    /// load current; node voltages drop cumulatively along the chain.
    #[must_use]
    pub fn steady_state(&self, source: Volts, load: Amps) -> Vec<f64> {
        let n = self.nodes();
        let mut state = vec![0.0; 2 * n];
        let i0 = load.value();
        let mut v = source.value();
        for k in 0..n {
            state[k] = i0;
            v -= self.r[k] * i0;
            state[n + k] = v;
        }
        state
    }

    /// The die node's analytic DC voltage under a constant `load` — the
    /// settle target of the early-exit detector.
    #[must_use]
    pub fn die_steady_voltage(&self, source: Volts, load: Amps) -> f64 {
        let n = self.nodes();
        self.steady_state(source, load)
            .get(2 * n - 1)
            .copied()
            .unwrap_or_else(|| source.value())
    }

    /// Computes `d(state)/dt` into `out` for die load current `i_load`,
    /// with the VR setpoint `source` at the head of the chain.
    ///
    /// This is the scalar *reference* recurrence: the batched kernel in
    /// [`crate::batch`] mirrors it row-by-row across lanes, and the
    /// equivalence tests pin the two together bit-for-bit. Zipped
    /// iteration (no indexing) so the loop carries no bounds checks.
    pub fn derivative(&self, source: f64, state: &[f64], i_load: f64, out: &mut [f64]) {
        let n = self.nodes();
        let (i, v) = state.split_at(n);
        let (di, dv) = out.split_at_mut(n);
        let mut v_prev = source;
        for ((((d, &ik), &vk), &rk), &inv_lk) in
            di.iter_mut().zip(i).zip(v).zip(&self.r).zip(&self.inv_l)
        {
            *d = (v_prev - vk - rk * ik) * inv_lk;
            v_prev = vk;
        }
        // Walk backwards so each node sees its downstream neighbour's
        // current; the last node feeds the die load.
        let mut i_out = i_load;
        for ((d, &ik), &inv_ck) in dv.iter_mut().zip(i).zip(&self.inv_c).rev() {
            *d = (ik - i_out) * inv_ck;
            i_out = ik;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{CapBank, SeriesBranch};
    use crate::ladder::{Ladder, VrOutputModel};
    use crate::units::{Farads, Henries, Ohms};

    fn small_ladder() -> Ladder {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hz(300e3)).unwrap();
        let mut b = Ladder::builder("t", vr);
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(0.3), Henries::from_ph(150.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(500.0),
                Ohms::from_mohm(5.0),
                Henries::from_nh(2.0),
                1,
            )
            .unwrap(),
        );
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(0.4), Henries::from_ph(20.0)).unwrap(),
            CapBank::new(
                Farads::from_nf(200.0),
                Ohms::from_mohm(0.3),
                Henries::from_ph(1.0),
                1,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    #[allow(non_snake_case)]
    fn Hz(v: f64) -> crate::units::Hertz {
        crate::units::Hertz::new(v)
    }

    #[test]
    fn validation_rejects_bad_steps() {
        assert!(TransientSim::new(Volts::new(1.0), Seconds::ZERO, Seconds::from_us(1.0)).is_err());
        assert!(TransientSim::new(
            Volts::new(1.0),
            Seconds::from_us(2.0),
            Seconds::from_us(1.0)
        )
        .is_err());
    }

    #[test]
    fn no_step_means_no_droop() {
        let sim = TransientSim::new(
            Volts::new(1.0),
            Seconds::from_ns(0.5),
            Seconds::from_us(2.0),
        )
        .unwrap();
        let step = LoadStep::step(Amps::new(10.0), Amps::new(10.0), Seconds::from_us(0.5));
        let r = sim.run(&small_ladder(), step);
        assert!(r.droop().as_mv() < 0.5, "droop {}", r.droop());
    }

    #[test]
    fn step_produces_droop_exceeding_dc_shift() {
        let sim = TransientSim::new(
            Volts::new(1.1),
            Seconds::from_ns(0.2),
            Seconds::from_us(50.0),
        )
        .unwrap();
        let step = LoadStep {
            from: Amps::new(5.0),
            to: Amps::new(45.0),
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(10.0),
        };
        let r = sim.run(&small_ladder(), step);
        // DC shift = ΔI * R_path = 40 A * 2.3 mΩ = 92 mV.
        let expected_dc = 40.0 * small_ladder().dc_resistance().value();
        assert!(
            (r.dc_shift().value() - expected_dc).abs() < 0.25 * expected_dc,
            "dc shift {} vs {}",
            r.dc_shift(),
            expected_dc
        );
        // The transient minimum is at or below the final DC level.
        assert!(r.v_min <= r.v_final);
        assert!(r.droop() >= r.dc_shift() * 0.95);
    }

    #[test]
    fn steady_state_matches_ohms_law() {
        let ladder = small_ladder();
        let model = LadderCoeffs::from_ladder(&ladder);
        let st = model.steady_state(Volts::new(1.0), Amps::new(20.0));
        let n = model.nodes();
        let v_die = st[2 * n - 1];
        let expected = 1.0 - 20.0 * ladder.dc_resistance().value();
        assert!((v_die - expected).abs() < 1e-9);
        assert_eq!(
            model
                .die_steady_voltage(Volts::new(1.0), Amps::new(20.0))
                .to_bits(),
            v_die.to_bits()
        );
        // Derivative at steady state is ~zero.
        let mut d = vec![0.0; 2 * n];
        model.derivative(1.0, &st, 20.0, &mut d);
        for x in d {
            assert!(x.abs() < 1e-6, "nonzero derivative {x}");
        }
    }

    #[test]
    fn load_step_current_profile() {
        let s = LoadStep {
            from: Amps::new(1.0),
            to: Amps::new(3.0),
            at: Seconds::from_us(1.0),
            slew: Seconds::from_ns(100.0),
        };
        // Exact equality is intended: outside the slew window the step
        // returns its endpoint constants unchanged.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(s.current_at(Seconds::ZERO).value(), 1.0);
            assert_eq!(s.current_at(Seconds::from_us(2.0)).value(), 3.0);
        }
        let mid = s.current_at(Seconds::new(1.0e-6 + 50e-9)).value();
        assert!((mid - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_step_is_instant() {
        let s = LoadStep::step(Amps::ZERO, Amps::new(10.0), Seconds::from_us(1.0));
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(s.current_at(Seconds::new(0.999e-6)).value(), 0.0);
            assert_eq!(s.current_at(Seconds::from_us(1.0)).value(), 10.0);
        }
    }

    #[test]
    fn droop_for_step_increases_with_delta() {
        let sim = TransientSim {
            source: Volts::new(1.1),
            dt: Seconds::from_ns(0.2),
            duration: Seconds::from_us(20.0),
            decimate: 64,
        };
        let ladder = small_ladder();
        let d_small = sim.droop_for_step(&ladder, Amps::new(5.0), Amps::new(10.0));
        let d_large = sim.droop_for_step(&ladder, Amps::new(5.0), Amps::new(40.0));
        assert!(d_large > d_small);
    }

    #[test]
    fn ladder_without_trailing_cap_gets_parasitic_node() {
        let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hz(300e3)).unwrap();
        let mut b = Ladder::builder("bare", vr);
        b.series(
            "route",
            SeriesBranch::new(Ohms::from_mohm(1.0), Henries::from_ph(50.0)).unwrap(),
        );
        let ladder = b.build().unwrap();
        let model = LadderCoeffs::from_ladder(&ladder);
        assert_eq!(model.nodes(), 1);
        assert!((model.c[0] - PARASITIC_NODE_CAP).abs() < 1e-18);
    }
}

//! Motherboard voltage-regulator (VR) model with current limits.
//!
//! Models the SVID-controlled VR feeding the CPU cores: a programmable
//! setpoint (VID), the load-line, and the current limits of Sec. 2.4.2 —
//! TDC (thermal design current / PL2), EDC (electrical design current /
//! Iccmax / PL4), and the power-supply limit (PL3).

use crate::error::PdnError;
use crate::loadline::LoadLine;
use crate::units::{Amps, Ohms, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Current limits of a VR and its upstream power supply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VrLimits {
    /// Thermal design current — sustainable indefinitely (PL2-related).
    pub tdc: Amps,
    /// Electrical design current — instantaneous peak (Iccmax / PL4).
    pub edc: Amps,
    /// Power-supply / battery protection limit in watts (PL3-related).
    pub supply_limit: Watts,
}

impl VrLimits {
    /// Creates a limit set.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if any limit is non-positive
    /// or if `edc < tdc` (a peak limit below the sustained limit is
    /// physically inconsistent).
    pub fn new(tdc: Amps, edc: Amps, supply_limit: Watts) -> Result<Self, PdnError> {
        if !(tdc.value() > 0.0 && tdc.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "TDC",
                value: tdc.value(),
            });
        }
        if !(edc.value() > 0.0 && edc.is_finite()) || edc < tdc {
            return Err(PdnError::InvalidComponent {
                what: "EDC",
                value: edc.value(),
            });
        }
        if !(supply_limit.value() > 0.0 && supply_limit.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "supply power limit",
                value: supply_limit.value(),
            });
        }
        Ok(VrLimits {
            tdc,
            edc,
            supply_limit,
        })
    }
}

/// How a current/power demand relates to the VR's limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitCheck {
    /// Within every limit.
    Ok,
    /// Above TDC: sustainable only for a bounded time (turbo region).
    AboveTdc,
    /// Above EDC: would trip over-current protection; must be prevented
    /// proactively.
    AboveEdc,
    /// Above the supply/battery power limit (PL3).
    AboveSupplyLimit,
}

/// A motherboard voltage regulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageRegulator {
    setpoint: Volts,
    loadline: LoadLine,
    limits: VrLimits,
}

impl VoltageRegulator {
    /// Creates a VR with an initial setpoint of 0 V (output disabled).
    pub fn new(loadline: LoadLine, limits: VrLimits) -> Self {
        VoltageRegulator {
            setpoint: Volts::ZERO,
            loadline,
            limits,
        }
    }

    /// The programmed VID setpoint.
    pub fn setpoint(&self) -> Volts {
        self.setpoint
    }

    /// Programs a new VID setpoint (SVID command).
    ///
    /// # Panics
    ///
    /// Panics if the setpoint is negative or non-finite.
    pub fn set_voltage(&mut self, setpoint: Volts) {
        assert!(
            setpoint.value() >= 0.0 && setpoint.is_finite(),
            "invalid VID setpoint {setpoint}"
        );
        self.setpoint = setpoint;
    }

    /// `true` when the VR output is enabled (setpoint above zero).
    pub fn is_on(&self) -> bool {
        self.setpoint > Volts::ZERO
    }

    /// Turns the VR off (package C8 turns the core VR off; paper Table 1).
    pub fn turn_off(&mut self) {
        self.setpoint = Volts::ZERO;
    }

    /// The load-line model.
    pub fn loadline(&self) -> LoadLine {
        self.loadline
    }

    /// The configured limits.
    pub fn limits(&self) -> VrLimits {
        self.limits
    }

    /// Voltage delivered to the load at current `icc`.
    pub fn output_voltage(&self, icc: Amps) -> Volts {
        if !self.is_on() {
            return Volts::ZERO;
        }
        self.loadline.load_voltage(self.setpoint, icc)
    }

    /// Checks `icc` against the current limits; the worst violation wins.
    pub fn check_current(&self, icc: Amps) -> LimitCheck {
        if icc > self.limits.edc {
            return LimitCheck::AboveEdc;
        }
        let power = self.output_voltage(icc) * icc;
        if power > self.limits.supply_limit {
            return LimitCheck::AboveSupplyLimit;
        }
        if icc > self.limits.tdc {
            return LimitCheck::AboveTdc;
        }
        LimitCheck::Ok
    }

    /// The maximum current deliverable without tripping EDC.
    pub fn max_instantaneous_current(&self) -> Amps {
        self.limits.edc
    }

    /// Power dissipated in the load-line at current `icc` (delivery loss).
    pub fn delivery_loss(&self, icc: Amps) -> Watts {
        (self.loadline.resistance * icc) * icc
    }
}

/// Convenience constructor for a Skylake-class desktop VR:
/// 1.6 mΩ load-line, 100 A TDC, 138 A EDC, 250 W supply.
pub fn skylake_desktop_vr() -> VoltageRegulator {
    // Constructed literally: the constants are positive, finite, and keep
    // EDC ≥ TDC, so the checked constructors could not reject them (a test
    // re-validates them through `new`).
    let loadline = LoadLine {
        resistance: Ohms::from_mohm(1.6),
    };
    let limits = VrLimits {
        tdc: Amps::new(100.0),
        edc: Amps::new(138.0),
        supply_limit: Watts::new(250.0),
    };
    VoltageRegulator::new(loadline, limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vr() -> VoltageRegulator {
        let mut v = skylake_desktop_vr();
        v.set_voltage(Volts::new(1.2));
        v
    }

    #[test]
    fn output_follows_loadline() {
        let v = vr();
        let out = v.output_voltage(Amps::new(50.0));
        assert!((out.value() - (1.2 - 0.0016 * 50.0)).abs() < 1e-12);
    }

    #[test]
    fn off_vr_outputs_zero() {
        let mut v = vr();
        assert!(v.is_on());
        v.turn_off();
        assert!(!v.is_on());
        assert_eq!(v.output_voltage(Amps::new(10.0)), Volts::ZERO);
    }

    #[test]
    fn limit_checks_ordered_by_severity() {
        let v = vr();
        assert_eq!(v.check_current(Amps::new(50.0)), LimitCheck::Ok);
        assert_eq!(v.check_current(Amps::new(120.0)), LimitCheck::AboveTdc);
        assert_eq!(v.check_current(Amps::new(140.0)), LimitCheck::AboveEdc);
    }

    #[test]
    fn supply_limit_detected() {
        let loadline = LoadLine::new(Ohms::from_mohm(1.6)).unwrap();
        let limits = VrLimits::new(Amps::new(100.0), Amps::new(200.0), Watts::new(60.0)).unwrap();
        let mut v = VoltageRegulator::new(loadline, limits);
        v.set_voltage(Volts::new(1.2));
        // 80 A × ~1.07 V ≈ 86 W > 60 W supply limit, but below EDC.
        assert_eq!(
            v.check_current(Amps::new(80.0)),
            LimitCheck::AboveSupplyLimit
        );
    }

    #[test]
    fn limits_validation() {
        assert!(VrLimits::new(Amps::ZERO, Amps::new(10.0), Watts::new(1.0)).is_err());
        assert!(VrLimits::new(Amps::new(10.0), Amps::new(5.0), Watts::new(1.0)).is_err());
        assert!(VrLimits::new(Amps::new(10.0), Amps::new(20.0), Watts::ZERO).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid VID setpoint")]
    fn negative_setpoint_panics() {
        let mut v = vr();
        v.set_voltage(Volts::new(-0.1));
    }

    #[test]
    fn skylake_vr_constants_pass_validation() {
        // Backs the literal construction in `skylake_desktop_vr`.
        let v = skylake_desktop_vr();
        assert!(LoadLine::new(v.loadline().resistance).is_ok());
        let l = v.limits();
        assert!(VrLimits::new(l.tdc, l.edc, l.supply_limit).is_ok());
    }

    #[test]
    fn delivery_loss_is_quadratic() {
        let v = vr();
        let p1 = v.delivery_loss(Amps::new(10.0)).value();
        let p2 = v.delivery_loss(Amps::new(20.0)).value();
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn max_instantaneous_current_is_edc() {
        let v = vr();
        assert_eq!(v.max_instantaneous_current(), v.limits().edc);
    }
}

//! Load-line (adaptive voltage positioning) model with multi-level
//! power-virus guardbands (paper Sec. 2.3, Fig. 2).
//!
//! The voltage at the load is `Vcc_load = Vcc − R_LL · Icc`. To keep the
//! load above its minimum functional voltage even under the worst-case
//! current (a *power-virus*), the PMU programs the VR above the target by a
//! guardband `R_LL · Icc_virus`. Modern processors split the worst case into
//! several *virus levels* keyed by the system state (number of active cores,
//! instruction mix) so lighter states pay a smaller guardband.

use crate::error::PdnError;
use crate::units::{Amps, Ohms, Volts};
use serde::{Deserialize, Serialize};

/// The load-line model `Vcc_load = Vcc − R_LL · Icc`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadLine {
    /// System impedance `R_LL` (typically 1.6–2.4 mΩ for client parts).
    pub resistance: Ohms,
}

impl LoadLine {
    /// Creates a load-line.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] for a non-positive or
    /// non-finite resistance.
    pub fn new(resistance: Ohms) -> Result<Self, PdnError> {
        if !(resistance.value() > 0.0 && resistance.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "load-line resistance",
                value: resistance.value(),
            });
        }
        Ok(LoadLine { resistance })
    }

    /// Voltage at the load for VR output `vcc` and load current `icc`.
    pub fn load_voltage(&self, vcc: Volts, icc: Amps) -> Volts {
        vcc - self.resistance * icc
    }

    /// VR output voltage required so the load sees `v_load` at `icc`.
    pub fn required_vcc(&self, v_load: Volts, icc: Amps) -> Volts {
        v_load + self.resistance * icc
    }

    /// The IR guardband paid at current `icc`.
    pub fn guardband(&self, icc: Amps) -> Volts {
        self.resistance * icc
    }
}

/// One power-virus level: a system state (e.g. "2 active cores") and the
/// maximum current that state can possibly draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirusLevel {
    /// Descriptive name (e.g. `"1 active core"`).
    pub name: String,
    /// Worst-case (power-virus) current for this system state.
    pub icc_virus: Amps,
}

impl VirusLevel {
    /// Creates a virus level.
    pub fn new(name: impl Into<String>, icc_virus: Amps) -> Self {
        VirusLevel {
            name: name.into(),
            icc_virus,
        }
    }
}

/// An ordered table of power-virus levels (paper Fig. 2(c)).
///
/// Levels must be strictly increasing in current. Level indices are
/// 1-based in the paper's notation (`VirusLevel_1 < VirusLevel_2 < ...`);
/// this API uses 0-based indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirusLevelTable {
    loadline: LoadLine,
    levels: Vec<VirusLevel>,
}

impl VirusLevelTable {
    /// Creates a table from strictly-increasing levels.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::UnsortedVirusLevels`] if levels are not strictly
    /// increasing in `icc_virus`, or if the table is empty.
    pub fn new(loadline: LoadLine, levels: Vec<VirusLevel>) -> Result<Self, PdnError> {
        if levels.is_empty() {
            return Err(PdnError::UnsortedVirusLevels);
        }
        for pair in levels.windows(2) {
            if let [lo, hi] = pair {
                if hi.icc_virus <= lo.icc_virus {
                    return Err(PdnError::UnsortedVirusLevels);
                }
            }
        }
        Ok(VirusLevelTable { loadline, levels })
    }

    /// The underlying load-line.
    pub fn loadline(&self) -> LoadLine {
        self.loadline
    }

    /// The levels, lowest current first.
    pub fn levels(&self) -> &[VirusLevel] {
        &self.levels
    }

    /// Index of the lowest level whose virus current covers `icc`, or `None`
    /// if `icc` exceeds even the top level (an EDC violation).
    pub fn level_for(&self, icc: Amps) -> Option<usize> {
        self.levels.iter().position(|l| l.icc_virus >= icc)
    }

    /// IR guardband paid at level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn guardband_at(&self, index: usize) -> Volts {
        self.loadline.guardband(self.levels[index].icc_virus)
    }

    /// The guardband *step* `ΔV` paid when moving from `from` to `to`
    /// (positive when escalating; Fig. 2(c) blue annotations).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn guardband_step(&self, from: usize, to: usize) -> Volts {
        self.guardband_at(to) - self.guardband_at(from)
    }

    /// VR setpoint so the load never falls below `v_min` while in level
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn setpoint(&self, index: usize, v_min: Volts) -> Volts {
        self.loadline
            .required_vcc(v_min, self.levels[index].icc_virus)
    }

    /// The guardband saved compared to a single-level (worst-case-only)
    /// design when operating at level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn saving_vs_single_level(&self, index: usize) -> Volts {
        let worst = self.levels.len() - 1;
        self.guardband_step(index, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VirusLevelTable {
        let ll = LoadLine::new(Ohms::from_mohm(2.0)).unwrap();
        VirusLevelTable::new(
            ll,
            vec![
                VirusLevel::new("1 core", Amps::new(30.0)),
                VirusLevel::new("2 cores", Amps::new(55.0)),
                VirusLevel::new("4 cores", Amps::new(100.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn load_voltage_drops_with_current() {
        let ll = LoadLine::new(Ohms::from_mohm(1.6)).unwrap();
        let v = ll.load_voltage(Volts::new(1.2), Amps::new(50.0));
        assert!((v.value() - (1.2 - 0.08)).abs() < 1e-12);
        // Round trip through required_vcc.
        let vcc = ll.required_vcc(v, Amps::new(50.0));
        assert!((vcc.value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn guardband_is_ir_product() {
        let ll = LoadLine::new(Ohms::from_mohm(2.4)).unwrap();
        assert!((ll.guardband(Amps::new(100.0)).as_mv() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn loadline_validation() {
        assert!(LoadLine::new(Ohms::ZERO).is_err());
        assert!(LoadLine::new(Ohms::new(-1.0)).is_err());
        assert!(LoadLine::new(Ohms::new(f64::INFINITY)).is_err());
    }

    #[test]
    fn table_rejects_unsorted_and_empty() {
        let ll = LoadLine::new(Ohms::from_mohm(2.0)).unwrap();
        assert_eq!(
            VirusLevelTable::new(ll, vec![]).unwrap_err(),
            PdnError::UnsortedVirusLevels
        );
        let unsorted = vec![
            VirusLevel::new("a", Amps::new(50.0)),
            VirusLevel::new("b", Amps::new(30.0)),
        ];
        assert!(VirusLevelTable::new(ll, unsorted).is_err());
        let duplicate = vec![
            VirusLevel::new("a", Amps::new(50.0)),
            VirusLevel::new("b", Amps::new(50.0)),
        ];
        assert!(VirusLevelTable::new(ll, duplicate).is_err());
    }

    #[test]
    fn level_selection_covers_current() {
        let t = table();
        assert_eq!(t.level_for(Amps::new(10.0)), Some(0));
        assert_eq!(t.level_for(Amps::new(30.0)), Some(0));
        assert_eq!(t.level_for(Amps::new(31.0)), Some(1));
        assert_eq!(t.level_for(Amps::new(99.0)), Some(2));
        assert_eq!(t.level_for(Amps::new(101.0)), None);
    }

    #[test]
    fn guardbands_increase_with_level() {
        let t = table();
        let g: Vec<f64> = (0..3).map(|i| t.guardband_at(i).as_mv()).collect();
        assert!((g[0] - 60.0).abs() < 1e-9);
        assert!((g[1] - 110.0).abs() < 1e-9);
        assert!((g[2] - 200.0).abs() < 1e-9);
        assert!(g[0] < g[1] && g[1] < g[2]);
    }

    #[test]
    fn guardband_steps_and_savings() {
        let t = table();
        assert!((t.guardband_step(0, 1).as_mv() - 50.0).abs() < 1e-9);
        assert!((t.guardband_step(2, 0).as_mv() + 140.0).abs() < 1e-9);
        assert!((t.saving_vs_single_level(0).as_mv() - 140.0).abs() < 1e-9);
        assert_eq!(t.saving_vs_single_level(2), Volts::ZERO);
    }

    #[test]
    fn setpoint_guarantees_vmin_at_virus_current() {
        let t = table();
        let v_min = Volts::new(0.75);
        for i in 0..3 {
            let setpoint = t.setpoint(i, v_min);
            let worst = t.loadline().load_voltage(setpoint, t.levels()[i].icc_virus);
            assert!((worst.value() - v_min.value()).abs() < 1e-12);
        }
    }
}

//! Error types for the PDN crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or simulating a PDN.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A component value was non-positive or non-finite.
    InvalidComponent {
        /// Which component was rejected (e.g. `"series resistance"`).
        what: &'static str,
        /// The offending value in base SI units.
        value: f64,
    },
    /// The ladder has no stages, so there is nothing to analyze.
    EmptyLadder,
    /// A frequency sweep was requested with an empty or inverted range.
    InvalidSweep {
        /// Start frequency in Hz.
        start_hz: f64,
        /// Stop frequency in Hz.
        stop_hz: f64,
    },
    /// The transient simulation was configured with a non-positive time step
    /// or duration.
    InvalidTimeStep {
        /// The offending time step in seconds.
        dt: f64,
    },
    /// A load-line table was built with unsorted or duplicate virus levels.
    UnsortedVirusLevels,
    /// A package voltage domain was looked up by a name that does not exist.
    UnknownDomain {
        /// The requested domain name.
        name: String,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidComponent { what, value } => {
                write!(f, "invalid {what}: {value} (must be positive and finite)")
            }
            PdnError::EmptyLadder => write!(f, "PDN ladder has no stages"),
            PdnError::InvalidSweep { start_hz, stop_hz } => {
                write!(f, "invalid frequency sweep: {start_hz} Hz .. {stop_hz} Hz")
            }
            PdnError::InvalidTimeStep { dt } => {
                write!(f, "invalid transient time step: {dt} s")
            }
            PdnError::UnsortedVirusLevels => {
                write!(f, "virus levels must be strictly increasing in current")
            }
            PdnError::UnknownDomain { name } => {
                write!(f, "no voltage domain named `{name}`")
            }
        }
    }
}

impl Error for PdnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PdnError::InvalidComponent {
            what: "series resistance",
            value: -1.0,
        };
        assert!(e.to_string().contains("series resistance"));
        assert!(PdnError::EmptyLadder.to_string().contains("no stages"));
        assert!(PdnError::InvalidSweep {
            start_hz: 10.0,
            stop_hz: 1.0
        }
        .to_string()
        .contains("sweep"));
        assert!(PdnError::InvalidTimeStep { dt: 0.0 }
            .to_string()
            .contains("time step"));
        assert!(PdnError::UnsortedVirusLevels
            .to_string()
            .contains("increasing"));
        assert!(PdnError::UnknownDomain {
            name: "VC9G".to_owned()
        }
        .to_string()
        .contains("VC9G"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PdnError>();
    }
}

//! Calibrated Skylake-class PDN topologies.
//!
//! Two variants of the same die's delivery network (paper Figs. 1, 5, 6):
//!
//! * [`PdnVariant::Gated`] — the mobile (Skylake-H-like) package: each CPU
//!   core's voltage domain sits behind an on-die power-gate and owns only
//!   its private slice of the die MIM capacitance. The package decaps and
//!   the other cores' MIM sit on the far side of the gate.
//! * [`PdnVariant::Bypassed`] — the DarkGates desktop (Skylake-S-like)
//!   package: the four gated domains and the ungated domain are shorted at
//!   the package into a single domain, sharing all MIM slices, the package
//!   decaps, and the package routing.
//!
//! Component values are lumped-model calibrations chosen so the gated
//! topology shows roughly twice the impedance of the bypassed one across the
//! sweep, matching the paper's Fig. 4. They are exposed as constants so
//! experiments can perturb them.

use crate::elements::{CapBank, SeriesBranch};
use crate::impedance::{ImpedanceAnalyzer, ImpedanceProfile};
use crate::ladder::{Ladder, VrOutputModel};
use crate::loadline::{LoadLine, VirusLevel, VirusLevelTable};
use crate::units::{Amps, Farads, Henries, Hertz, Ohms, Volts, Watts};
use crate::vr::{VoltageRegulator, VrLimits};
use serde::{Deserialize, Serialize};

/// Number of CPU cores on the modeled die.
pub const CORE_COUNT: usize = 4;

/// VR load-line resistance (paper Sec. 2.3: 1.6–2.4 mΩ).
pub const LOADLINE_MOHM: f64 = 1.6;
/// VR control-loop bandwidth.
pub const VR_BANDWIDTH_HZ: f64 = 300e3;
/// VR thermal design current.
pub const TDC_A: f64 = 100.0;
/// VR electrical design current (Iccmax).
pub const EDC_A: f64 = 138.0;
/// Upstream supply power limit (PL3-class).
pub const SUPPLY_LIMIT_W: f64 = 250.0;

/// Board routing resistance / inductance.
pub const BOARD_R_MOHM: f64 = 0.2;
/// Board routing inductance in picohenries.
pub const BOARD_L_PH: f64 = 120.0;
/// Package routing resistance / inductance (shared segment).
pub const PACKAGE_R_MOHM: f64 = 0.25;
/// Package routing inductance in picohenries.
pub const PACKAGE_L_PH: f64 = 35.0;
/// On-die grid resistance from the domain node to the load.
pub const DIE_R_MOHM: f64 = 0.15;
/// On-die grid inductance in picohenries.
pub const DIE_L_PH: f64 = 4.0;

/// Power-gate on-state resistance. Sized per the paper's area/impedance
/// trade-off discussion (Sec. 2.1): small enough to be viable, large enough
/// that bypassing it roughly halves the path impedance.
pub const POWER_GATE_R_MOHM: f64 = 1.2;
/// Power-gate parasitic inductance in picohenries.
pub const POWER_GATE_L_PH: f64 = 2.0;

/// Per-core MIM capacitance slice in nanofarads.
pub const MIM_PER_CORE_NF: f64 = 500.0;
/// Ungated-domain (shared) MIM capacitance in nanofarads.
pub const MIM_SHARED_NF: f64 = 500.0;
/// MIM ESR in milliohms. The MIM sits behind the distributed on-die grid,
/// which contributes series resistance that damps the die anti-resonance.
pub const MIM_ESR_MOHM: f64 = 3.5;
/// MIM ESL in picohenries.
pub const MIM_ESL_PH: f64 = 1.0;

/// Which side of the DarkGates hybrid a package implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdnVariant {
    /// Power-gates in the path (mobile / Skylake-H-like package).
    Gated,
    /// Power-gates bypassed at the package (desktop / Skylake-S-like,
    /// the DarkGates configuration).
    Bypassed,
}

impl PdnVariant {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PdnVariant::Gated => "power-gates enabled",
            PdnVariant::Bypassed => "power-gates bypassed",
        }
    }
}

/// A fully-assembled Skylake-class PDN: ladder, load-line, virus levels, VR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkylakePdn {
    /// The topology variant.
    pub variant: PdnVariant,
    /// The lumped ladder from VR to the core load.
    pub ladder: Ladder,
    /// The load-line model.
    pub loadline: LoadLine,
    /// Power-virus guardband levels (1 / 2 / 4 active cores).
    pub virus_table: VirusLevelTable,
    /// The motherboard VR.
    pub vr: VoltageRegulator,
}

impl SkylakePdn {
    /// Builds the calibrated PDN for `variant`.
    ///
    /// The component values are compile-time calibration constants, so the
    /// fallible assembly in [`Self::try_build`] cannot actually fail here.
    pub fn build(variant: PdnVariant) -> Self {
        Self::try_build(variant)
            // dg-analyze: allow(no-panic-in-lib, reason = "inputs are compile-time calibration constants; a test exercises try_build on every variant")
            .expect("calibration constants are valid")
    }

    /// Fallible assembly of the calibrated PDN for `variant`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`](crate::error::PdnError) if any calibration
    /// constant fails component validation (only possible if the constants
    /// are edited into an invalid range).
    pub fn try_build(variant: PdnVariant) -> Result<Self, crate::error::PdnError> {
        let vr_model =
            VrOutputModel::new(Ohms::from_mohm(LOADLINE_MOHM), Hertz::new(VR_BANDWIDTH_HZ))?;

        let board = SeriesBranch::new(Ohms::from_mohm(BOARD_R_MOHM), Henries::from_ph(BOARD_L_PH))?;
        let bulk = CapBank::new(
            Farads::from_uf(560.0),
            Ohms::from_mohm(6.0),
            Henries::from_nh(3.0),
            6,
        )?;

        let package = SeriesBranch::new(
            Ohms::from_mohm(PACKAGE_R_MOHM),
            Henries::from_ph(PACKAGE_L_PH),
        )?;
        let pkg_decap = CapBank::new(
            Farads::from_uf(22.0),
            Ohms::from_mohm(6.0),
            Henries::from_ph(150.0),
            20,
        )?;

        let die = SeriesBranch::new(Ohms::from_mohm(DIE_R_MOHM), Henries::from_ph(DIE_L_PH))?;

        let mim_core = CapBank::new(
            Farads::from_nf(MIM_PER_CORE_NF),
            Ohms::from_mohm(MIM_ESR_MOHM),
            Henries::from_ph(MIM_ESL_PH),
            1,
        )?;
        let mim_shared = CapBank::new(
            Farads::from_nf(MIM_SHARED_NF),
            Ohms::from_mohm(MIM_ESR_MOHM),
            Henries::from_ph(MIM_ESL_PH),
            1,
        )?;

        let name = format!("skylake-pdn ({})", variant.label());
        let mut b = Ladder::builder(name, vr_model);
        b.series_with_decap("board", board, bulk);
        b.series_with_decap("package", package, pkg_decap);

        match variant {
            PdnVariant::Gated => {
                // The core sits behind its power-gate with only its own MIM
                // slice; the shared MIM helps only the far side of the gate.
                let gate = SeriesBranch::new(
                    Ohms::from_mohm(POWER_GATE_R_MOHM),
                    Henries::from_ph(POWER_GATE_L_PH),
                )?;
                b.series_with_decap("ungated-domain", SeriesBranch::short(), mim_shared);
                b.series("power-gate", gate);
                b.series_with_decap("die", die, mim_core);
            }
            PdnVariant::Bypassed => {
                // Single shorted domain: all five MIM slices in parallel as
                // a bank (preserving per-slice ESR damping), and the die
                // grid effectively paralleled across the shared routes.
                let merged = CapBank::new(
                    Farads::from_nf(MIM_PER_CORE_NF),
                    Ohms::from_mohm(MIM_ESR_MOHM),
                    Henries::from_ph(MIM_ESL_PH),
                    CORE_COUNT + 1,
                )?;
                let die_shared = die.paralleled(2);
                b.series_with_decap("die", die_shared, merged);
            }
        }

        let ladder = b.build()?;

        let loadline = LoadLine::new(Ohms::from_mohm(LOADLINE_MOHM))?;
        let virus_table = VirusLevelTable::new(
            loadline,
            vec![
                VirusLevel::new("1 active core", Amps::new(34.0)),
                VirusLevel::new("2 active cores", Amps::new(62.0)),
                VirusLevel::new("4 active cores", Amps::new(118.0)),
            ],
        )?;

        let limits = VrLimits::new(
            Amps::new(TDC_A),
            Amps::new(EDC_A),
            Watts::new(SUPPLY_LIMIT_W),
        )?;
        let mut vr = VoltageRegulator::new(loadline, limits);
        vr.set_voltage(Volts::new(1.0));

        Ok(SkylakePdn {
            variant,
            ladder,
            loadline,
            virus_table,
            vr,
        })
    }

    /// Impedance profile over the default Fig. 4 sweep.
    ///
    /// Served from the content-keyed [`crate::cache`]: the first call per
    /// distinct circuit sweeps, later calls (or calls on any ladder with
    /// identical element values) clone the cached profile.
    pub fn impedance_profile(&self) -> ImpedanceProfile {
        (*crate::cache::impedance_profile(&ImpedanceAnalyzer::default(), &self.ladder)).clone()
    }

    /// Peak impedance over the default sweep (cached, no profile clone).
    pub fn peak_impedance(&self) -> Ohms {
        crate::cache::impedance_profile(&ImpedanceAnalyzer::default(), &self.ladder)
            .peak()
            .1
    }

    /// Total DC path resistance from VR to the core load.
    pub fn dc_resistance(&self) -> Ohms {
        self.ladder.dc_resistance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_has_power_gate_stage_bypassed_does_not() {
        let g = SkylakePdn::build(PdnVariant::Gated);
        let b = SkylakePdn::build(PdnVariant::Bypassed);
        assert!(g.ladder.stage("power-gate").is_some());
        assert!(b.ladder.stage("power-gate").is_none());
    }

    #[test]
    fn gated_dc_resistance_roughly_double() {
        let g = SkylakePdn::build(PdnVariant::Gated);
        let b = SkylakePdn::build(PdnVariant::Bypassed);
        let ratio = g.dc_resistance() / b.dc_resistance();
        assert!(
            (1.6..=2.4).contains(&ratio),
            "DC resistance ratio {ratio} outside ~2x band"
        );
    }

    #[test]
    fn fig4_impedance_ratio_approximately_two() {
        let g = SkylakePdn::build(PdnVariant::Gated);
        let b = SkylakePdn::build(PdnVariant::Bypassed);
        let zg = g.impedance_profile();
        let zb = b.impedance_profile();
        let mean_ratio = zg.mean_ratio_over(&zb);
        assert!(
            (1.5..=3.0).contains(&mean_ratio),
            "mean impedance ratio {mean_ratio} outside the ~2x band"
        );
        // The gated profile dominates everywhere.
        assert!(zg.dominates(&zb, 1.0));
    }

    #[test]
    fn peak_impedance_is_finite_and_positive() {
        for v in [PdnVariant::Gated, PdnVariant::Bypassed] {
            let pdn = SkylakePdn::build(v);
            let z = pdn.peak_impedance();
            assert!(z.value() > 0.0 && z.is_finite(), "{v:?}: {z}");
        }
    }

    #[test]
    fn virus_levels_cover_edc() {
        let pdn = SkylakePdn::build(PdnVariant::Bypassed);
        let top = pdn.virus_table.levels().last().unwrap().icc_virus;
        assert!(top.value() <= EDC_A);
        assert!(pdn.virus_table.level_for(Amps::new(30.0)).is_some());
    }

    #[test]
    fn try_build_succeeds_for_both_variants() {
        // Backs the allow() on `build`: the calibration constants must
        // always assemble cleanly.
        for v in [PdnVariant::Gated, PdnVariant::Bypassed] {
            assert!(SkylakePdn::try_build(v).is_ok(), "{v:?}");
        }
    }

    #[test]
    fn variant_labels() {
        assert!(PdnVariant::Gated.label().contains("enabled"));
        assert!(PdnVariant::Bypassed.label().contains("bypassed"));
    }
}

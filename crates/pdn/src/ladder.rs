//! PDN ladder topology.
//!
//! The power delivery network is modeled as a *ladder*: an ordered cascade of
//! [`Stage`]s from the voltage regulator (VR) to the die. Each stage carries
//! a series R–L branch (routing or a power-gate) and, optionally, a shunt
//! decoupling-capacitor bank hanging off the node at the stage's far end.
//!
//! ```text
//!  VR ──[R_LL, L_VR]──┬──[R,L]──┬──[R,L]──┬── ... ──┬── die load
//!                     │         │         │         │
//!                   bulk      pkg caps  (gate)    MIM caps
//! ```
//!
//! The impedance seen *by the die looking back into the network* is computed
//! by walking the ladder from the VR: series branches add, shunt banks
//! combine in parallel. This is the quantity plotted in the paper's Fig. 4.

use crate::complex::Complex;
use crate::elements::{CapBank, SeriesBranch};
use crate::error::PdnError;
use crate::units::{Hertz, Ohms};
use serde::{Deserialize, Serialize};

/// One segment of the PDN: a series branch plus an optional shunt cap bank
/// at the downstream node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Human-readable name (e.g. `"package routing"`, `"power-gate"`).
    pub name: String,
    /// Series R–L of this segment.
    pub series: SeriesBranch,
    /// Decap bank at the node after the series branch, if any.
    pub shunt: Option<CapBank>,
}

impl Stage {
    /// Creates a stage with a shunt capacitor bank.
    pub fn with_shunt(name: impl Into<String>, series: SeriesBranch, shunt: CapBank) -> Self {
        Stage {
            name: name.into(),
            series,
            shunt: Some(shunt),
        }
    }

    /// Creates a stage with no decoupling at its downstream node.
    pub fn bare(name: impl Into<String>, series: SeriesBranch) -> Self {
        Stage {
            name: name.into(),
            series,
            shunt: None,
        }
    }
}

/// Closed-loop output model of the VR feeding the ladder.
///
/// Below its control bandwidth a buck VR holds its output at the load-line
/// resistance `R_LL`; above the bandwidth the output impedance rises
/// inductively with an equivalent inductance `L_eq = R_LL / ω_bw`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VrOutputModel {
    /// Load-line (DC output) resistance.
    pub loadline: Ohms,
    /// Control-loop bandwidth.
    pub bandwidth: Hertz,
}

impl VrOutputModel {
    /// Creates a VR output model.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if the load-line is not
    /// strictly positive or the bandwidth is not strictly positive.
    pub fn new(loadline: Ohms, bandwidth: Hertz) -> Result<Self, PdnError> {
        if !(loadline.value() > 0.0 && loadline.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "VR load-line resistance",
                value: loadline.value(),
            });
        }
        if !(bandwidth.value() > 0.0 && bandwidth.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "VR bandwidth",
                value: bandwidth.value(),
            });
        }
        Ok(VrOutputModel {
            loadline,
            bandwidth,
        })
    }

    /// Equivalent output inductance above the loop bandwidth.
    pub fn equivalent_inductance(&self) -> f64 {
        self.loadline.value() / self.bandwidth.angular()
    }

    /// Phasor output impedance at frequency `f`:
    /// `R_LL + jω·L_eq` (resistive at DC, inductive past the bandwidth).
    pub fn impedance(&self, f: Hertz) -> Complex {
        Complex::new(
            self.loadline.value(),
            f.angular() * self.equivalent_inductance(),
        )
    }
}

/// A complete PDN from VR to die.
///
/// # Examples
///
/// ```
/// use dg_pdn::elements::{CapBank, SeriesBranch};
/// use dg_pdn::ladder::{Ladder, VrOutputModel};
/// use dg_pdn::units::{Farads, Henries, Hertz, Ohms};
///
/// # fn main() -> Result<(), dg_pdn::PdnError> {
/// let vr = VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3))?;
/// let mut builder = Ladder::builder("minimal", vr);
/// builder.series_with_decap(
///     "board",
///     SeriesBranch::new(Ohms::from_mohm(0.2), Henries::from_ph(120.0))?,
///     CapBank::new(Farads::from_uf(470.0), Ohms::from_mohm(5.0), Henries::from_nh(3.0), 4)?,
/// );
/// let ladder = builder.build()?;
/// // At DC the impedance is the resistive path.
/// let z = ladder.impedance_magnitude(Hertz::new(1.0));
/// assert!((z.as_mohm() - ladder.dc_resistance().as_mohm()).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ladder {
    name: String,
    vr: VrOutputModel,
    stages: Vec<Stage>,
}

impl Ladder {
    /// Starts building a ladder; see [`LadderBuilder`].
    pub fn builder(name: impl Into<String>, vr: VrOutputModel) -> LadderBuilder {
        LadderBuilder {
            name: name.into(),
            vr,
            stages: Vec::new(),
        }
    }

    /// The ladder's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The VR output model at the head of the ladder.
    pub fn vr(&self) -> &VrOutputModel {
        &self.vr
    }

    /// The stages from VR to die.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Impedance seen by the die looking back into the network at `f`.
    ///
    /// Walks the ladder from the VR: the running impedance accumulates each
    /// series branch and is then shunted by each decap bank.
    pub fn impedance_at(&self, f: Hertz) -> Complex {
        let mut z = self.vr.impedance(f);
        for stage in &self.stages {
            z = z + stage.series.impedance(f);
            if let Some(bank) = &stage.shunt {
                z = z.parallel(bank.impedance(f));
            }
        }
        z
    }

    /// Impedance magnitude at `f`.
    pub fn impedance_magnitude(&self, f: Hertz) -> Ohms {
        Ohms::new(self.impedance_at(f).abs())
    }

    /// Total DC path resistance from VR to die (load-line plus every series
    /// branch). Shunt capacitors are open at DC and do not contribute.
    pub fn dc_resistance(&self) -> Ohms {
        self.vr.loadline
            + self
                .stages
                .iter()
                .map(|s| s.series.resistance)
                .sum::<Ohms>()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Returns a copy of the ladder with the named stage transformed by
    /// `f`, or `None` if no stage has that name. Used by sensitivity
    /// analysis to perturb individual elements.
    pub fn with_mapped_stage(&self, name: &str, f: impl FnOnce(&mut Stage)) -> Option<Ladder> {
        let idx = self.stages.iter().position(|s| s.name == name)?;
        let mut copy = self.clone();
        f(&mut copy.stages[idx]);
        Some(copy)
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the ladder has no stages (cannot happen for ladders built
    /// through [`LadderBuilder::build`], which rejects the empty case).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Incremental builder for [`Ladder`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct LadderBuilder {
    name: String,
    vr: VrOutputModel,
    stages: Vec<Stage>,
}

impl LadderBuilder {
    /// Appends a stage at the die-side end of the ladder.
    pub fn stage(&mut self, stage: Stage) -> &mut Self {
        self.stages.push(stage);
        self
    }

    /// Appends a series-only stage.
    pub fn series(&mut self, name: impl Into<String>, branch: SeriesBranch) -> &mut Self {
        self.stages.push(Stage::bare(name, branch));
        self
    }

    /// Appends a stage with both series branch and shunt decap bank.
    pub fn series_with_decap(
        &mut self,
        name: impl Into<String>,
        branch: SeriesBranch,
        bank: CapBank,
    ) -> &mut Self {
        self.stages.push(Stage::with_shunt(name, branch, bank));
        self
    }

    /// Finishes the ladder.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::EmptyLadder`] if no stages were added.
    pub fn build(&self) -> Result<Ladder, PdnError> {
        if self.stages.is_empty() {
            return Err(PdnError::EmptyLadder);
        }
        Ok(Ladder {
            name: self.name.clone(),
            vr: self.vr,
            stages: self.stages.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Farads, Henries};

    fn test_vr() -> VrOutputModel {
        VrOutputModel::new(Ohms::from_mohm(1.6), Hertz::new(300e3)).unwrap()
    }

    fn simple_ladder() -> Ladder {
        let mut b = Ladder::builder("test", test_vr());
        b.series_with_decap(
            "board",
            SeriesBranch::new(Ohms::from_mohm(0.2), Henries::from_ph(100.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(470.0),
                Ohms::from_mohm(5.0),
                Henries::from_nh(3.0),
                4,
            )
            .unwrap(),
        );
        b.series_with_decap(
            "package",
            SeriesBranch::new(Ohms::from_mohm(0.3), Henries::from_ph(40.0)).unwrap(),
            CapBank::new(
                Farads::from_uf(22.0),
                Ohms::from_mohm(2.0),
                Henries::from_ph(300.0),
                8,
            )
            .unwrap(),
        );
        b.series_with_decap(
            "die",
            SeriesBranch::new(Ohms::from_mohm(0.2), Henries::from_ph(5.0)).unwrap(),
            CapBank::new(
                Farads::from_nf(150.0),
                Ohms::from_mohm(0.3),
                Henries::from_ph(1.0),
                1,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    #[test]
    fn empty_ladder_rejected() {
        let b = Ladder::builder("empty", test_vr());
        assert_eq!(b.build().unwrap_err(), PdnError::EmptyLadder);
    }

    #[test]
    fn dc_resistance_sums_path() {
        let l = simple_ladder();
        // 1.6 + 0.2 + 0.3 + 0.2 = 2.3 mΩ
        assert!((l.dc_resistance().as_mohm() - 2.3).abs() < 1e-9);
    }

    #[test]
    fn low_frequency_impedance_approaches_loadline_path() {
        let l = simple_ladder();
        let z = l.impedance_magnitude(Hertz::new(1.0));
        // At 1 Hz all caps are open, all inductors are shorts: |Z| ≈ R_dc.
        assert!((z.as_mohm() - l.dc_resistance().as_mohm()).abs() < 0.05);
    }

    #[test]
    fn high_frequency_impedance_is_die_cap_limited() {
        let l = simple_ladder();
        // At 10 MHz, impedance is dominated by the die MIM bank, far below
        // the inductive path impedance.
        let z = l.impedance_magnitude(Hertz::from_mhz(10.0));
        let die_only = l.stage("die").unwrap().shunt.unwrap();
        let zd = die_only.impedance(Hertz::from_mhz(10.0)).abs();
        assert!(z.value() <= zd * 1.05, "shunt path must dominate: {z}");
    }

    #[test]
    fn impedance_has_resonant_peak_between_plateaus() {
        let l = simple_ladder();
        let z_lo = l.impedance_magnitude(Hertz::new(100.0));
        // Mid-band peak (cap-to-cap anti-resonance) must exceed both the DC
        // plateau and the high-frequency die-cap region somewhere.
        let mut z_peak = Ohms::ZERO;
        let mut f = 1e3;
        while f < 1e9 {
            z_peak = z_peak.max(l.impedance_magnitude(Hertz::new(f)));
            f *= 1.2;
        }
        assert!(z_peak > z_lo, "peak {z_peak} vs low {z_lo}");
    }

    #[test]
    fn vr_model_inductive_above_bandwidth() {
        let vr = test_vr();
        let z_dc = vr.impedance(Hertz::new(1.0)).abs();
        let z_hi = vr.impedance(Hertz::from_mhz(30.0)).abs();
        assert!((z_dc - 0.0016).abs() < 1e-6);
        assert!(z_hi > 10.0 * z_dc);
    }

    #[test]
    fn vr_model_validation() {
        assert!(VrOutputModel::new(Ohms::ZERO, Hertz::new(1e5)).is_err());
        assert!(VrOutputModel::new(Ohms::from_mohm(1.0), Hertz::ZERO).is_err());
    }

    #[test]
    fn stage_lookup_by_name() {
        let l = simple_ladder();
        assert!(l.stage("package").is_some());
        assert!(l.stage("nonexistent").is_none());
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert_eq!(l.name(), "test");
    }
}

//! Alternative power-delivery architectures: MBVR, IVR, LDO.
//!
//! The paper (Sec. 2.3) names the three PDNs used by recent client
//! processors: motherboard voltage regulators (MBVR — the architecture
//! DarkGates targets), fully-integrated voltage regulators (IVR/FIVR,
//! Haswell/Ice Lake), and low-dropout regulators (LDO, Skylake-X-class).
//! DarkGates exists precisely because MBVR parts share one rail across
//! per-core power-gates; IVR and LDO parts slice the problem differently.
//! This module models the conversion/efficiency trade-offs so the designs
//! can be compared quantitatively.

use crate::error::PdnError;
use crate::units::{Amps, Ohms, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Which delivery architecture a product uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdnArchitecture {
    /// Motherboard VR: one shared rail, per-core power-gates (the
    /// DarkGates baseline).
    Mbvr,
    /// Fully-integrated VR: high-voltage input rail, on-die buck per
    /// domain; per-core voltages, lower input current.
    Ivr,
    /// Low-dropout regulator per domain off a shared rail: cheap per-core
    /// voltage, linear (dropout) losses.
    Ldo,
}

impl PdnArchitecture {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PdnArchitecture::Mbvr => "motherboard VR",
            PdnArchitecture::Ivr => "integrated VR (FIVR)",
            PdnArchitecture::Ldo => "LDO per domain",
        }
    }

    /// Whether the architecture gives each core its own voltage domain
    /// without dedicated power-gates.
    pub fn per_core_voltage(self) -> bool {
        !matches!(self, PdnArchitecture::Mbvr)
    }
}

/// An integrated (buck) voltage regulator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvrModel {
    /// Input rail voltage (e.g. 1.8 V for FIVR).
    pub v_in: Volts,
    /// Peak conversion efficiency (at the sweet-spot load).
    pub eta_peak: f64,
    /// Load fraction at which the peak efficiency occurs.
    pub sweet_spot: f64,
}

impl IvrModel {
    /// A Haswell-class FIVR: 1.8 V input, ~90 % peak efficiency at 60 %
    /// load.
    pub fn fivr() -> Self {
        IvrModel {
            v_in: Volts::new(1.8),
            eta_peak: 0.90,
            sweet_spot: 0.60,
        }
    }

    /// Creates a model with validation.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidComponent`] if the input voltage or
    /// efficiency parameters are out of range.
    pub fn new(v_in: Volts, eta_peak: f64, sweet_spot: f64) -> Result<Self, PdnError> {
        if !(v_in.value() > 0.0 && v_in.is_finite()) {
            return Err(PdnError::InvalidComponent {
                what: "IVR input voltage",
                value: v_in.value(),
            });
        }
        if !(0.0 < eta_peak && eta_peak <= 1.0) {
            return Err(PdnError::InvalidComponent {
                what: "IVR peak efficiency",
                value: eta_peak,
            });
        }
        if !(0.0 < sweet_spot && sweet_spot <= 1.0) {
            return Err(PdnError::InvalidComponent {
                what: "IVR sweet spot",
                value: sweet_spot,
            });
        }
        Ok(IvrModel {
            v_in,
            eta_peak,
            sweet_spot,
        })
    }

    /// Conversion efficiency at `load_fraction` of full load: a shallow
    /// parabola peaking at the sweet spot, sagging toward light load
    /// (switching losses dominate) and full load (conduction losses).
    ///
    /// # Panics
    ///
    /// Panics if `load_fraction` is outside `[0, 1]`.
    pub fn efficiency(&self, load_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&load_fraction),
            "load fraction {load_fraction} out of range"
        );
        let sag = (load_fraction - self.sweet_spot).powi(2);
        // Light-load penalty dominates: quadratic sag plus a 1/x-ish term
        // as the load approaches zero.
        let light = 0.05 * (0.05 / (load_fraction + 0.05));
        (self.eta_peak - 0.25 * sag - light).clamp(0.05, 1.0)
    }

    /// Input power drawn from the platform rail for a given output power.
    pub fn input_power(&self, output: Watts, load_fraction: f64) -> Watts {
        output / self.efficiency(load_fraction)
    }

    /// Input current relief vs. a direct rail at `v_out`: the IVR draws
    /// from the high-voltage rail, cutting input current by roughly
    /// `v_out/v_in / η`.
    pub fn input_current(&self, output: Watts, v_out: Volts, load_fraction: f64) -> Amps {
        if v_out.value() <= 0.0 {
            return Amps::ZERO;
        }
        self.input_power(output, load_fraction) / self.v_in
    }
}

/// A low-dropout regulator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdoModel {
    /// The shared input rail the LDO drops from.
    pub v_rail: Volts,
    /// Minimum dropout voltage the LDO needs.
    pub dropout: Volts,
}

impl LdoModel {
    /// A Skylake-X-class core LDO from a 1.35 V rail, 50 mV dropout.
    pub fn skylake_x() -> Self {
        LdoModel {
            v_rail: Volts::new(1.35),
            dropout: Volts::from_mv(50.0),
        }
    }

    /// The highest output voltage this LDO can regulate.
    pub fn max_output(&self) -> Volts {
        self.v_rail - self.dropout
    }

    /// LDO efficiency at output voltage `v_out`: `v_out / v_rail`
    /// (linear regulation burns the headroom as heat).
    ///
    /// # Panics
    ///
    /// Panics if `v_out` exceeds [`max_output`].
    ///
    /// [`max_output`]: LdoModel::max_output
    pub fn efficiency(&self, v_out: Volts) -> f64 {
        assert!(
            v_out <= self.max_output(),
            "output {v_out} above LDO capability {}",
            self.max_output()
        );
        (v_out / self.v_rail).max(0.0)
    }

    /// Input power drawn from the rail for a given output power.
    pub fn input_power(&self, output: Watts, v_out: Volts) -> Watts {
        let eta = self.efficiency(v_out);
        if eta <= 0.0 {
            return Watts::ZERO;
        }
        output / eta
    }
}

/// Delivery loss (input − output power) of each architecture at an
/// operating point, for apples-to-apples comparison. The MBVR loss is the
/// load-line I²R term.
pub fn delivery_loss(
    arch: PdnArchitecture,
    output: Watts,
    v_out: Volts,
    loadline: Ohms,
    load_fraction: f64,
) -> Watts {
    match arch {
        PdnArchitecture::Mbvr => {
            if v_out.value() <= 0.0 {
                return Watts::ZERO;
            }
            let i = output / v_out;
            Watts::new(loadline.value() * i.value() * i.value())
        }
        PdnArchitecture::Ivr => {
            let m = IvrModel::fivr();
            m.input_power(output, load_fraction) - output
        }
        PdnArchitecture::Ldo => {
            let m = LdoModel::skylake_x();
            m.input_power(output, v_out.min(m.max_output())) - output
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivr_efficiency_peaks_at_sweet_spot() {
        let m = IvrModel::fivr();
        let at_peak = m.efficiency(0.60);
        assert!(at_peak > m.efficiency(0.10));
        assert!(at_peak > m.efficiency(1.00));
        assert!((0.80..=0.92).contains(&at_peak), "peak {at_peak}");
    }

    #[test]
    fn ivr_input_power_exceeds_output() {
        let m = IvrModel::fivr();
        let out = Watts::new(40.0);
        let input = m.input_power(out, 0.6);
        assert!(input > out);
        assert!(input.value() < 50.0);
    }

    #[test]
    fn ivr_cuts_input_current() {
        let m = IvrModel::fivr();
        let out = Watts::new(40.0);
        let v_core = Volts::new(1.0);
        let direct = out / v_core;
        let via_ivr = m.input_current(out, v_core, 0.6);
        assert!(
            via_ivr.value() < 0.7 * direct.value(),
            "IVR {via_ivr} vs direct {direct}"
        );
    }

    #[test]
    fn ivr_validation() {
        assert!(IvrModel::new(Volts::ZERO, 0.9, 0.6).is_err());
        assert!(IvrModel::new(Volts::new(1.8), 1.2, 0.6).is_err());
        assert!(IvrModel::new(Volts::new(1.8), 0.9, 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ivr_bad_load_panics() {
        IvrModel::fivr().efficiency(1.5);
    }

    #[test]
    fn ldo_efficiency_is_voltage_ratio() {
        let m = LdoModel::skylake_x();
        let eta = m.efficiency(Volts::new(1.0));
        assert!((eta - 1.0 / 1.35).abs() < 1e-12);
        assert!((m.max_output().value() - 1.30).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "above LDO capability")]
    fn ldo_over_voltage_panics() {
        LdoModel::skylake_x().efficiency(Volts::new(1.34));
    }

    #[test]
    fn ldo_cheap_at_high_output_voltage() {
        let m = LdoModel::skylake_x();
        let out = Watts::new(12.0);
        let near_rail = m.input_power(out, Volts::new(1.25)) - out;
        let deep_drop = m.input_power(out, Volts::new(0.70)) - out;
        assert!(near_rail < deep_drop);
    }

    #[test]
    fn loss_comparison_across_architectures() {
        // A 40 W core domain at 1.1 V with a 1.6 mΩ load-line.
        let out = Watts::new(40.0);
        let v = Volts::new(1.1);
        let mbvr = delivery_loss(PdnArchitecture::Mbvr, out, v, Ohms::from_mohm(1.6), 0.6);
        let ivr = delivery_loss(PdnArchitecture::Ivr, out, v, Ohms::from_mohm(1.6), 0.6);
        let ldo = delivery_loss(PdnArchitecture::Ldo, out, v, Ohms::from_mohm(1.6), 0.6);
        // MBVR's resistive path loss is the smallest at this point —
        // which is why high-power desktops keep MBVR and need DarkGates.
        assert!(mbvr < ivr, "mbvr {mbvr} vs ivr {ivr}");
        assert!(mbvr < ldo, "mbvr {mbvr} vs ldo {ldo}");
        // The LDO burns the full headroom: worst at low output voltage.
        let ldo_low = delivery_loss(
            PdnArchitecture::Ldo,
            out,
            Volts::new(0.8),
            Ohms::from_mohm(1.6),
            0.6,
        );
        assert!(ldo_low > ldo);
    }

    #[test]
    fn architecture_labels_and_traits() {
        assert!(!PdnArchitecture::Mbvr.per_core_voltage());
        assert!(PdnArchitecture::Ivr.per_core_voltage());
        assert!(PdnArchitecture::Ldo.per_core_voltage());
        assert!(PdnArchitecture::Ivr.label().contains("FIVR"));
    }
}

//! Strongly-typed electrical units.
//!
// dg-analyze: allow-file(unit-hygiene, reason = "this module defines the unit newtypes; its from_* conversion constructors are the one sanctioned raw-f64 boundary")
//!
//! Every quantity in the PDN model is carried in a newtype over `f64`
//! ([C-NEWTYPE]) so that a voltage cannot be confused with a current and an
//! impedance cannot be confused with a capacitance. The arithmetic that is
//! physically meaningful is implemented directly (`Ohms * Amps = Volts`,
//! `Volts / Ohms = Amps`, ...); everything else requires an explicit
//! `.value()` escape hatch.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $symbol:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new quantity from a raw `f64` value in base SI units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electrical current in amperes.
    Amps,
    "A"
);
unit!(
    /// Resistance / impedance magnitude in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Inductance in henries.
    Henries,
    "H"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);

impl Volts {
    /// Creates a voltage from millivolts.
    #[inline]
    pub const fn from_mv(mv: f64) -> Self {
        Volts(mv / 1000.0)
    }

    /// Returns the value in millivolts.
    #[inline]
    pub const fn as_mv(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Ohms {
    /// Creates a resistance from milliohms.
    #[inline]
    pub const fn from_mohm(mohm: f64) -> Self {
        Ohms(mohm / 1000.0)
    }

    /// Returns the value in milliohms.
    #[inline]
    pub const fn as_mohm(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Farads {
    /// Creates a capacitance from microfarads.
    #[inline]
    pub const fn from_uf(uf: f64) -> Self {
        Farads(uf * 1e-6)
    }

    /// Creates a capacitance from nanofarads.
    #[inline]
    pub const fn from_nf(nf: f64) -> Self {
        Farads(nf * 1e-9)
    }
}

impl Henries {
    /// Creates an inductance from picohenries.
    #[inline]
    pub const fn from_ph(ph: f64) -> Self {
        Henries(ph * 1e-12)
    }

    /// Creates an inductance from nanohenries.
    #[inline]
    pub const fn from_nh(nh: f64) -> Self {
        Henries(nh * 1e-9)
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Returns the value in megahertz.
    #[inline]
    pub const fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub const fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Angular frequency ω = 2πf in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }
}

impl Seconds {
    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }
}

// --- Physically meaningful mixed-unit arithmetic -------------------------

impl Mul<Amps> for Ohms {
    type Output = Volts;
    /// Ohm's law: `V = R · I`.
    #[inline]
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    /// Ohm's law: `I = V / R`.
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    /// Ohm's law: `R = V / I`.
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// Electrical power: `P = V · I`.
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    /// `I = P / V`.
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    /// Energy in joules (represented as raw `f64` to avoid a unit explosion).
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let r = Ohms::from_mohm(2.0);
        let i = Amps::new(50.0);
        let v = r * i;
        assert!((v.as_mv() - 100.0).abs() < 1e-9);
        let i2 = v / r;
        assert!((i2.value() - 50.0).abs() < 1e-9);
        let r2 = v / i;
        assert!((r2.as_mohm() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_identities() {
        let v = Volts::new(1.2);
        let i = Amps::new(10.0);
        let p = v * i;
        assert!((p.value() - 12.0).abs() < 1e-12);
        let i_back = p / v;
        assert!((i_back.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_symbol_and_precision() {
        let v = Volts::from_mv(1234.5);
        assert_eq!(format!("{v:.3}"), "1.234 V");
        let z = Ohms::from_mohm(1.6);
        assert_eq!(format!("{z:.4}"), "0.0016 Ω");
    }

    #[test]
    fn unit_conversions() {
        assert!((Hertz::from_ghz(4.2).as_mhz() - 4200.0).abs() < 1e-9);
        assert!((Farads::from_uf(22.0).value() - 22e-6).abs() < 1e-18);
        assert!((Henries::from_ph(30.0).value() - 30e-12).abs() < 1e-24);
        assert!((Seconds::from_us(5.0).value() - 5e-6).abs() < 1e-18);
        assert!((Seconds::from_ns(10.0).value() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Volts::new(1.0);
        let b = Volts::new(0.25);
        assert_eq!((a - b).value(), 0.75);
        assert_eq!((a + b).value(), 1.25);
        assert_eq!((a * 2.0).value(), 2.0);
        assert_eq!((a / 4.0).value(), 0.25);
        assert_eq!(a / b, 4.0);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((-a).value(), -1.0);
    }

    #[test]
    fn clamp_and_abs() {
        let v = Volts::new(-0.5);
        assert_eq!(v.abs().value(), 0.5);
        assert_eq!(
            Volts::new(2.0).clamp(Volts::ZERO, Volts::new(1.35)).value(),
            1.35
        );
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5), Watts::new(0.5)]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 4.0);
    }

    #[test]
    fn angular_frequency() {
        let f = Hertz::new(1.0);
        assert!((f.angular() - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn energy_product() {
        let e = Watts::new(10.0) * Seconds::from_ms(100.0);
        assert!((e - 1.0).abs() < 1e-12);
    }
}

//! Disk tier for the content-addressed substrate caches.
//!
//! The in-memory maps in [`crate::cache`] reset on every process start, so
//! a freshly spawned serve shard pays the full cold-compute cost for every
//! substrate its traffic touches. This module persists the same entries —
//! impedance profiles, DC steady states, [`LadderCoeffs`] — under a
//! configurable root directory so restarted or newly spawned shards warm
//! from disk instead of recomputing.
//!
//! Format, by construction simple enough to audit byte-by-byte:
//!
//! * **Filename is the content hash**: `<root>/<kind>/<key:016x>.bin`,
//!   where `key` is the same FNV-1a content key the memory tier uses. Two
//!   processes caching the same substrate write the same file with the
//!   same bytes, so concurrent writers are idempotent.
//! * **Atomic rename writes**: payloads land in a unique `*.tmp` sibling
//!   first and are `rename(2)`d into place, so a reader never observes a
//!   half-written entry and a crash leaves at worst a stray temp file.
//! * **Corruption is a miss**: every payload carries a magic, a kind tag,
//!   and an FNV-1a checksum of the body. Any mismatch — truncation, bit
//!   rot, a format change between versions — makes [`load`] return `None`
//!   and the caller recompute (and overwrite) the entry.
//!
//! The tier is disabled until [`set_dir`] is called (the `--cache-dir`
//! flag of `dg-serve`); with no directory configured every operation is a
//! no-op and the hit/miss counters stay untouched. All I/O errors are
//! deliberately swallowed: the disk tier is an accelerator, never a
//! correctness dependency.

use crate::cache::ContentKey;
use crate::impedance::ImpedanceProfile;
use crate::transient::LadderCoeffs;
use crate::units::{Hertz, Ohms};
use dg_engine::sync::TrackedMutex;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const MAGIC: [u8; 4] = *b"DGC1";

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn dir_slot() -> &'static TrackedMutex<Option<PathBuf>> {
    static DIR: OnceLock<TrackedMutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| TrackedMutex::new("pdn.diskcache.dir", None))
}

/// Points the disk tier at `root` (creating it), or disables it with
/// `None`. Process-wide; typically called once at startup from the
/// `--cache-dir` flag.
pub fn set_dir(root: Option<PathBuf>) {
    if let Some(dir) = &root {
        let _ = fs::create_dir_all(dir);
    }
    *dir_slot().lock() = root;
}

/// The currently configured root, if the tier is enabled.
pub fn dir() -> Option<PathBuf> {
    dir_slot().lock().clone()
}

/// Cumulative `(hits, misses, stores)` since process start. Misses count
/// only while a directory is configured, so a warm-start comparison can
/// read the first-window hit rate directly.
pub fn stats() -> (u64, u64, u64) {
    (
        HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
        STORES.load(Ordering::Relaxed),
    )
}

fn entry_path(root: &Path, kind: &str, key: u64) -> PathBuf {
    root.join(kind).join(format!("{key:016x}.bin"))
}

fn checksum(body: &[u8]) -> u64 {
    ContentKey::new().bytes(body).finish()
}

/// Wraps `body` in the on-disk envelope: magic, kind tag, checksum, body.
fn encode_envelope(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(tag);
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates the envelope and returns the body, or `None` on any
/// corruption (wrong magic, wrong kind, checksum mismatch, truncation).
fn decode_envelope(tag: u8, raw: &[u8]) -> Option<&[u8]> {
    let rest = raw.strip_prefix(&MAGIC)?;
    let (&file_tag, rest) = rest.split_first()?;
    if file_tag != tag {
        return None;
    }
    if rest.len() < 8 {
        return None;
    }
    let (sum_bytes, body) = rest.split_at(8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if stored != checksum(body) {
        return None;
    }
    Some(body)
}

/// Loads the raw body stored under `(kind, key)`, or `None` when the tier
/// is disabled, the entry is absent, or the entry fails validation.
pub fn load_blob(kind: &str, tag: u8, key: u64) -> Option<Vec<u8>> {
    let root = dir()?;
    match fs::read(entry_path(&root, kind, key))
        .ok()
        .and_then(|raw| decode_envelope(tag, &raw).map(<[u8]>::to_vec))
    {
        Some(body) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            Some(body)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Persists `body` under `(kind, key)` via a unique temp file and an
/// atomic rename. Best-effort: errors are swallowed, success is counted.
pub fn store_blob(kind: &str, tag: u8, key: u64, body: &[u8]) {
    let Some(root) = dir() else { return };
    let final_path = entry_path(&root, kind, key);
    let Some(parent) = final_path.parent() else {
        return;
    };
    if fs::create_dir_all(parent).is_err() {
        return;
    }
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = parent.join(format!("{key:016x}.{}.{seq}.tmp", std::process::id()));
    if fs::write(&tmp, encode_envelope(tag, body)).is_err() {
        let _ = fs::remove_file(&tmp);
        return;
    }
    if fs::rename(&tmp, &final_path).is_ok() {
        STORES.fetch_add(1, Ordering::Relaxed);
    } else {
        let _ = fs::remove_file(&tmp);
    }
}

// Kind tags distinguish payload layouts inside the shared envelope so a
// key collision across kinds can never deserialize as the wrong type.
const TAG_PROFILE: u8 = 1;
const TAG_STATE: u8 = 2;
const TAG_COEFFS: u8 = 3;
/// Tag for opaque response bodies cached by the serve tier.
pub const TAG_RESPONSE: u8 = 4;

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(f64::from_le_bytes)
    }

    fn f64_vec(&mut self) -> Option<Vec<f64>> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMENTS {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.0.is_empty()
    }
}

/// Upper bound on decoded element counts; anything larger is corruption,
/// not a substrate this workspace produces.
const MAX_ELEMENTS: usize = 1 << 22;

fn push_f64_vec(out: &mut Vec<u8>, values: &[f64]) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Loads a cached impedance profile. Exact `f64` bit patterns round-trip,
/// so a disk hit is indistinguishable from the original computation.
pub fn load_profile(key: u64) -> Option<ImpedanceProfile> {
    let body = load_blob("profile", TAG_PROFILE, key)?;
    let mut cur = Cursor(&body);
    let name_len = cur.u32()? as usize;
    if name_len > MAX_ELEMENTS {
        return None;
    }
    let name = String::from_utf8(cur.take(name_len)?.to_vec()).ok()?;
    let n = cur.u32()? as usize;
    if n > MAX_ELEMENTS {
        return None;
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let f = cur.f64()?;
        let z = cur.f64()?;
        points.push((Hertz::new(f), Ohms::new(z)));
    }
    cur.done()
        .then(|| ImpedanceProfile::from_points(name, points))
}

/// Persists an impedance profile under its content key.
pub fn store_profile(key: u64, profile: &ImpedanceProfile) {
    let name = profile.name().as_bytes();
    let points = profile.points();
    let mut body = Vec::with_capacity(8 + name.len() + 16 * points.len());
    body.extend_from_slice(&(name.len() as u32).to_le_bytes());
    body.extend_from_slice(name);
    body.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for (f, z) in points {
        body.extend_from_slice(&f.value().to_le_bytes());
        body.extend_from_slice(&z.value().to_le_bytes());
    }
    store_blob("profile", TAG_PROFILE, key, &body);
}

/// Loads a cached DC steady-state vector.
pub fn load_state(key: u64) -> Option<Vec<f64>> {
    let body = load_blob("state", TAG_STATE, key)?;
    let mut cur = Cursor(&body);
    let values = cur.f64_vec()?;
    cur.done().then_some(values)
}

/// Persists a DC steady-state vector under its content key.
pub fn store_state(key: u64, state: &[f64]) {
    let mut body = Vec::with_capacity(4 + 8 * state.len());
    push_f64_vec(&mut body, state);
    store_blob("state", TAG_STATE, key, &body);
}

/// Loads cached transient chain-model coefficients. The four arrays must
/// be mutually consistent (equal node counts, non-empty) or the entry is
/// treated as corrupt.
pub fn load_coeffs(key: u64) -> Option<LadderCoeffs> {
    let body = load_blob("coeffs", TAG_COEFFS, key)?;
    let mut cur = Cursor(&body);
    let r = cur.f64_vec()?;
    let c = cur.f64_vec()?;
    let inv_l = cur.f64_vec()?;
    let inv_c = cur.f64_vec()?;
    if !cur.done() || r.is_empty() {
        return None;
    }
    let n = r.len();
    if c.len() != n || inv_l.len() != n || inv_c.len() != n {
        return None;
    }
    Some(LadderCoeffs { r, c, inv_l, inv_c })
}

/// Persists transient chain-model coefficients under the ladder key.
pub fn store_coeffs(key: u64, coeffs: &LadderCoeffs) {
    let mut body = Vec::new();
    push_f64_vec(&mut body, &coeffs.r);
    push_f64_vec(&mut body, &coeffs.c);
    push_f64_vec(&mut body, &coeffs.inv_l);
    push_f64_vec(&mut body, &coeffs.inv_c);
    store_blob("coeffs", TAG_COEFFS, key, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skylake::{PdnVariant, SkylakePdn};

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dg-diskcache-{label}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn envelope_round_trips_and_rejects_corruption() {
        let body = b"hello substrate";
        let raw = encode_envelope(TAG_STATE, body);
        assert_eq!(decode_envelope(TAG_STATE, &raw), Some(&body[..]));
        // Wrong kind tag.
        assert_eq!(decode_envelope(TAG_COEFFS, &raw), None);
        // Flipped body bit fails the checksum.
        let mut bad = raw.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_envelope(TAG_STATE, &bad), None);
        // Truncation at every prefix length is a clean miss.
        for cut in 0..raw.len() {
            assert_eq!(decode_envelope(TAG_STATE, &raw[..cut]), None);
        }
    }

    #[test]
    fn coeffs_codec_rejects_inconsistent_arrays() {
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let coeffs = LadderCoeffs::from_ladder(&pdn.ladder);
        let mut body = Vec::new();
        push_f64_vec(&mut body, &coeffs.r);
        push_f64_vec(&mut body, &coeffs.c[..coeffs.c.len() - 1]); // short
        push_f64_vec(&mut body, &coeffs.inv_l);
        push_f64_vec(&mut body, &coeffs.inv_c);
        // Bypass the blob layer: decode the arrays directly.
        let mut cur = Cursor(&body);
        let r = cur.f64_vec().unwrap();
        let c = cur.f64_vec().unwrap();
        assert_ne!(r.len(), c.len(), "the corruption under test");
    }

    /// One sequential test owns the process-global directory so parallel
    /// tests never observe each other's roots.
    #[test]
    fn disk_tier_round_trips_all_kinds_and_treats_corruption_as_miss() {
        let root = scratch("roundtrip");
        set_dir(Some(root.clone()));

        // Steady state.
        let state = vec![1.5, -2.25, 1e-9, f64::MIN_POSITIVE];
        store_state(7, &state);
        assert_eq!(load_state(7).as_deref(), Some(&state[..]));

        // Coefficients: exact bit-level round trip.
        let pdn = SkylakePdn::build(PdnVariant::Gated);
        let coeffs = LadderCoeffs::from_ladder(&pdn.ladder);
        store_coeffs(9, &coeffs);
        assert_eq!(load_coeffs(9).as_ref(), Some(&coeffs));

        // Impedance profile.
        let profile = ImpedanceProfile::from_points(
            "rt",
            vec![
                (Hertz::new(1e6), Ohms::new(0.002)),
                (Hertz::new(2e6), Ohms::new(0.004)),
            ],
        );
        store_profile(11, &profile);
        let back = load_profile(11).expect("profile round trip");
        assert_eq!(back.name(), "rt");
        assert_eq!(back.points().len(), 2);
        for (a, b) in profile.points().iter().zip(back.points()) {
            assert_eq!(a.0.value().to_bits(), b.0.value().to_bits());
            assert_eq!(a.1.value().to_bits(), b.1.value().to_bits());
        }

        // Filename is the content hash.
        assert!(root
            .join("state")
            .join(format!("{:016x}.bin", 7u64))
            .exists());

        // Corrupting the file on disk turns the entry into a miss.
        let path = entry_path(&root, "state", 7);
        let mut raw = fs::read(&path).expect("entry bytes");
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        fs::write(&path, &raw).expect("rewrite corrupted");
        assert_eq!(load_state(7), None, "corruption must read as a miss");

        // A recompute overwrites the corrupt entry in place.
        store_state(7, &state);
        assert_eq!(load_state(7).as_deref(), Some(&state[..]));

        // No stray temp files remain.
        let strays: Vec<_> = fs::read_dir(root.join("state"))
            .expect("dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(strays.is_empty(), "temp files must be renamed or removed");

        set_dir(None);
        assert_eq!(load_state(7), None, "disabled tier never hits");
        let _ = fs::remove_dir_all(&root);
    }
}

//! Cross-crate integration tests: the substrates must agree with each
//! other when composed into full systems.

use darkgates::units::{Amps, Seconds, Volts, Watts};
use darkgates::DarkGates;
use dg_cstates::latency::{break_even_time, LatencyTable};
use dg_cstates::power::IdlePowerModel;
use dg_cstates::resolve::{resolve, PlatformInputs};
use dg_cstates::states::{CoreCstate, GraphicsCstate, MemoryState, PackageCstate};
use dg_pdn::transient::TransientSim;
use dg_pmu::guardband::DROOP_STEP_CURRENT_A;
use dg_power::dynamic::CdynProfile;
use dg_soc::products::Product;
use dg_soc::run::{run_graphics, run_spec};
use dg_soc::sim::{SimConfig, Simulator};
use dg_workloads::graphics::three_dmark_suite;
use dg_workloads::spec::{by_name, SpecMode};

/// The droop guardband must actually cover the droop the transient
/// simulator produces for the guardband's design current step.
#[test]
fn guardband_covers_simulated_droop() {
    for dg in [DarkGates::desktop(), DarkGates::mobile()] {
        let pdn = dg.build_pdn();
        let mgr = dg.guardband_manager();
        let sim = TransientSim::droop_capture(Volts::new(1.10));
        let droop = sim.droop_for_step(
            &pdn.ladder,
            Amps::new(10.0),
            Amps::new(DROOP_STEP_CURRENT_A),
        );
        let gb = mgr.droop_guardband();
        assert!(
            gb.value() >= droop.value() * 0.85,
            "{:?}: guardband {gb} vs simulated droop {droop}",
            dg.mode()
        );
    }
}

/// The PDN's DC resistance must be consistent with the load-line model the
/// VR uses (the load-line is the first ladder element).
#[test]
fn pdn_and_loadline_agree() {
    let pdn = DarkGates::desktop().build_pdn();
    let r_dc = pdn.dc_resistance();
    let r_ll = pdn.loadline.resistance;
    assert!(r_dc > r_ll);
    assert!(r_dc.as_mohm() < r_ll.as_mohm() + 2.0);
}

/// Products must respect their own design limits when simulated with the
/// heaviest workload.
#[test]
fn virus_run_respects_all_limits() {
    for tdp in Product::skylake_tdp_levels() {
        for product in [Product::skylake_s(tdp), Product::skylake_h(tdp)] {
            let sim = Simulator::new(&product);
            let r = sim.run_cpu(
                &product.table_ac,
                4,
                CdynProfile::core_virus(),
                SimConfig {
                    duration: Seconds::new(120.0),
                    dt: Seconds::new(0.25),
                    trace: false,
                },
            );
            assert!(
                r.max_tj.value() <= product.limits.tjmax.value() + 1.0,
                "{}: Tj {}",
                product.name,
                r.max_tj
            );
            // Sustained power within ~PL1 (brief PL2 bursts average in).
            assert!(
                r.avg_power.value() <= product.limits.power.pl2.value(),
                "{}: avg power {}",
                product.name,
                r.avg_power
            );
        }
    }
}

/// The voltage the sim actually runs at never exceeds the product's Vmax
/// budget.
#[test]
fn simulated_voltage_below_vmax() {
    let product = Product::skylake_s(Watts::new(91.0));
    let top = product.table_1c.p0();
    assert!(
        top.voltage <= product.limits.vmax,
        "top state {} exceeds Vmax {}",
        top.voltage,
        product.limits.vmax
    );
}

/// A DarkGates desktop that wakes from full idle passes through the
/// C-state machinery consistently: the platform reaches exactly the
/// product's deepest state.
#[test]
fn cstate_resolution_matches_product_capability() {
    for dg in [DarkGates::desktop(), DarkGates::mobile()] {
        let product = dg.product(Watts::new(65.0));
        let inputs = PlatformInputs::all_cores(CoreCstate::Cc7, product.core_count)
            .graphics(GraphicsCstate::Rc6)
            .memory(MemoryState::SelfRefresh)
            .llc_flushed(true)
            .deepest_allowed(product.deepest_pkg_cstate);
        let reached = resolve(&inputs);
        assert_eq!(reached, product.deepest_pkg_cstate);
    }
}

/// Break-even analysis: entering C8 from C7 pays off within a millisecond
/// on a DarkGates package — far shorter than RMT's idle periods.
#[test]
fn c8_break_even_is_short() {
    let model = IdlePowerModel::new();
    let cfg = DarkGates::desktop().gating_config();
    let table = LatencyTable::skylake();
    let p_c7 = model.package_idle_power(PackageCstate::C7, &cfg);
    let p_c8 = model.package_idle_power(PackageCstate::C8, &cfg);
    let be = break_even_time(&table, p_c7, p_c8, PackageCstate::C8).expect("C8 saves power");
    assert!(
        be.value() < 1e-3,
        "break-even {be} too long for RMT-style idling"
    );
}

/// Graphics runs produce consistent budget accounting: the reported total
/// power stays within TDP and the graphics budget shrinks under bypass.
#[test]
fn graphics_budget_accounting() {
    for tdp in Product::skylake_tdp_levels() {
        let s = Product::skylake_s(tdp);
        let h = Product::skylake_h(tdp);
        for scene in three_dmark_suite() {
            let rs = run_graphics(&s, &scene);
            let rh = run_graphics(&h, &scene);
            assert!(
                rs.total_power.value() <= tdp.value() + 1e-6,
                "{}: {} over TDP",
                s.name,
                rs.total_power
            );
            assert!(rs.gfx_budget <= rh.gfx_budget);
            assert!(rs.gfx_frequency.as_mhz() >= 300.0);
        }
    }
}

/// Base mode runs one core; rate mode runs all cores — and the simulator's
/// power reflects that.
#[test]
fn mode_power_scaling() {
    let product = Product::skylake_h(Watts::new(91.0));
    let namd = by_name("444.namd").unwrap();
    let base = run_spec(&product, &namd, SpecMode::Base);
    let rate = run_spec(&product, &namd, SpecMode::Rate);
    assert!(rate.avg_power.value() > 2.0 * base.avg_power.value());
    assert!(rate.frequency <= base.frequency);
}

/// The same die, two packages: V/F curve objects are identical between the
/// two products; only guardbands, ceilings, and C-state capability differ.
#[test]
fn die_sharing_invariant() {
    let s = Product::skylake_s(Watts::new(45.0));
    let h = Product::skylake_h(Watts::new(45.0));
    assert_eq!(s.core_count, h.core_count);
    assert_eq!(s.core_leakage, h.core_leakage);
    assert_eq!(s.gfx_leakage, h.gfx_leakage);
    assert_eq!(s.thermal, h.thermal);
    assert!(s.guardband < h.guardband);
    assert!(s.fmax_1c() > h.fmax_1c());
    assert!(s.deepest_pkg_cstate > h.deepest_pkg_cstate);
}

/// The multi-node thermal network independently reproduces the
/// reliability model's "+~5 °C" neighbor-heating assumption (Sec. 4.2).
#[test]
fn thermal_network_confirms_reliability_assumption() {
    use dg_power::thermal_network::ThermalNetwork;
    let net = ThermalNetwork::skylake_floorplan_for_tdp(Watts::new(45.0));
    let w = |v: [f64; 6]| v.into_iter().map(Watts::new).collect::<Vec<_>>();
    let gated = net.steady_state(&w([14.0, 0.0, 0.0, 0.0, 0.0, 3.0]));
    let bypassed = net.steady_state(&w([14.0, 1.4, 1.4, 1.4, 0.0, 3.0]));
    let (idx, _) = net.hottest(&gated);
    let delta = bypassed[idx].value() - gated[idx].value();
    let assumed = DarkGates::desktop()
        .reliability_model()
        .extra_temperature()
        .value();
    assert!(
        (delta - assumed).abs() < 3.0,
        "network {delta} °C vs assumed {assumed} °C"
    );
}

/// The AVX license machinery keeps the virus current within the PDN's EDC
/// envelope: the worst licensed state that the table covers stays under
/// the VR's instantaneous limit.
#[test]
fn license_levels_respect_edc() {
    use dg_pmu::license::{License, LicenseManager};
    let pdn = DarkGates::desktop().build_pdn();
    let per_core_base = Amps::new(26.0);
    let mut mgr = LicenseManager::new();
    // Scalar code on all four cores fits the top virus level.
    assert!(mgr
        .virus_level(&pdn.virus_table, 4, per_core_base)
        .is_some());
    // AVX-512 on all four cores exceeds it: the PMU must not allow this
    // combination at full current (it caps frequency/current instead).
    mgr.request(License::L2);
    assert!(mgr
        .virus_level(&pdn.virus_table, 4, per_core_base)
        .is_none());
    // The same AVX-512 burst on two cores is coverable.
    assert!(mgr
        .virus_level(&pdn.virus_table, 2, per_core_base)
        .is_some());
    // And every covered current stays below the VR's EDC.
    let top = pdn.virus_table.levels().last().unwrap().icc_virus;
    assert!(top <= pdn.vr.limits().edc);
}

/// The package-domain transform and the ladder topology agree: the
/// desktop package has one un-gated core domain, the mobile package has
/// gated per-core domains, and pooling alleviates per-bump current.
#[test]
fn package_transform_matches_topologies() {
    use dg_pdn::package::PackageLayout;
    let mobile = PackageLayout::skylake_mobile();
    let desktop = PackageLayout::skylake_desktop();
    assert_eq!(
        mobile.domains().iter().filter(|d| d.gated).count(),
        4,
        "mobile has four gated core domains"
    );
    assert!(desktop.domains().iter().all(|d| !d.gated));
    // Topology side: the gated ladder has a power-gate stage; the
    // bypassed one does not.
    assert!(DarkGates::mobile()
        .build_pdn()
        .ladder
        .stage("power-gate")
        .is_some());
    assert!(DarkGates::desktop()
        .build_pdn()
        .ladder
        .stage("power-gate")
        .is_none());
    // EM relief (Sec. 4.2): a single-core burst stresses the pooled
    // domain's bumps far less.
    let burst = Amps::new(34.0);
    assert!(
        desktop
            .per_bump_current("VCC_CORES", burst)
            .unwrap()
            .value()
            < 0.3 * mobile.per_bump_current("VC0G", burst).unwrap().value()
    );
}

/// Full stack smoke test: desktop DarkGates built from a fuse word runs a
/// benchmark, idles into C8, and reports plausible numbers everywhere.
#[test]
fn end_to_end_smoke() {
    use dg_pmu::modes::Fuse;
    let dg = DarkGates::from_fuse(Fuse::from_raw(1));
    let product = dg.product(Watts::new(91.0));

    // Active: run a benchmark.
    let namd = by_name("444.namd").unwrap();
    let report = run_spec(&product, &namd, SpecMode::Base);
    assert!(report.frequency.as_ghz() > 4.0);
    assert!(report.avg_power.value() > 5.0);

    // Idle: resolve into C8 and check the idle power is sub-watt.
    let model = IdlePowerModel::new();
    let idle = model.package_idle_power(product.deepest_pkg_cstate, &dg.gating_config());
    assert!(idle.value() < 1.0, "idle power {idle}");
}

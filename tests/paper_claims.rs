//! Integration tests asserting the paper's headline claims end-to-end.

use darkgates::experiments;
use darkgates::overhead;
use darkgates::units::{Volts, Watts};
use darkgates::DarkGates;
use dg_soc::run::{run_energy, run_spec};
use dg_workloads::energy::{energy_star, ready_mode};
use dg_workloads::spec::{by_name, SpecMode};

/// Abstract (paragraph 3): "DarkGates improves the performance of SPEC
/// CPU2006 workloads by up to 8.1% (4.6% on average) for a 91W TDP
/// desktop system."
#[test]
fn headline_91w_spec_gains() {
    let r = experiments::fig7();
    assert!(
        (0.038..0.058).contains(&r.average),
        "average gain {} vs paper 4.6%",
        r.average
    );
    assert!(
        (0.070..0.095).contains(&r.max),
        "max gain {} vs paper 8.1%",
        r.max
    );
}

/// Sec. 7.1: gains correlate with frequency scalability — the top
/// benchmarks are gamess/namd-like, the memory-bound ones gain nothing.
#[test]
fn gains_track_scalability() {
    let r = experiments::fig7();
    let find = |name: &str| {
        r.rows
            .iter()
            .find(|x| x.benchmark == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    assert!(find("416.gamess").gain > 0.06);
    assert!(find("444.namd").gain > 0.06);
    assert!(find("410.bwaves").gain < 0.01);
    assert!(find("433.milc").gain < 0.01);

    // Spearman-ish check: sort by scalability; gains must be
    // non-decreasing within a small tolerance.
    let mut rows = r.rows.clone();
    rows.sort_by(|a, b| a.scalability.partial_cmp(&b.scalability).unwrap());
    for w in rows.windows(2) {
        assert!(
            w[1].gain >= w[0].gain - 0.01,
            "{} ({}) vs {} ({})",
            w[0].benchmark,
            w[0].gain,
            w[1].benchmark,
            w[1].gain
        );
    }
}

/// Fig. 4: the gated PDN has roughly twice the impedance of the bypassed
/// one.
#[test]
fn impedance_halving() {
    let r = experiments::fig4();
    assert!(
        (1.5..3.0).contains(&r.mean_ratio),
        "mean ratio {}",
        r.mean_ratio
    );
    // The gated profile is above the bypassed one everywhere.
    assert!(r.gated.dominates(&r.bypassed, 1.0));
}

/// Sec. 4.2: the guardband saving converts into ~4 extra 100 MHz bins of
/// fused ceiling at 91 W.
#[test]
fn four_bins_of_fmax() {
    let s = DarkGates::desktop().product(Watts::new(91.0));
    let h = DarkGates::mobile().product(Watts::new(91.0));
    let delta = s.fmax_1c().as_mhz() - h.fmax_1c().as_mhz();
    assert!((300.0..=500.0).contains(&delta), "uplift {delta} MHz");
}

/// Sec. 4.2 reliability: <5 mV at 91 W, <20 mV at 35 W.
#[test]
fn reliability_guardband_endpoints() {
    let m = DarkGates::desktop().reliability_model();
    assert!(m.guardband(Watts::new(91.0)) <= Volts::from_mv(5.0));
    assert!(m.guardband(Watts::new(35.0)) <= Volts::from_mv(20.0));
    assert!(m.guardband(Watts::new(35.0)) > Volts::from_mv(10.0));
    assert!((m.extra_temperature().value() - 5.0).abs() < 1e-9);
}

/// Sec. 4.3: bypassed package C7 costs >3× the gated baseline's C7.
#[test]
fn c7_power_blowup() {
    use dg_cstates::power::IdlePowerModel;
    use dg_cstates::states::PackageCstate;
    let model = IdlePowerModel::new();
    let dg = DarkGates::desktop().gating_config();
    let base = DarkGates::mobile().gating_config();
    let ratio = model.package_idle_power(PackageCstate::C7, &dg)
        / model.package_idle_power(PackageCstate::C7, &base);
    assert!(ratio > 3.0, "C7 ratio {ratio}");
}

/// Abstract: DarkGates fulfills the ENERGY STAR and RMT requirements.
#[test]
fn energy_programs_met() {
    let product = DarkGates::desktop().product(Watts::new(91.0));
    for wl in [energy_star(), ready_mode()] {
        let r = run_energy(&product, &wl);
        assert!(
            r.meets_limit,
            "{} misses its limit: {}",
            wl.name, r.avg_power
        );
    }
}

/// Fig. 10 headline: C8 cuts ENERGY STAR by ~33% and RMT by ~68% relative
/// to DarkGates clamped at C7.
#[test]
fn fig10_reductions() {
    let rows = experiments::fig10();
    let es = rows.iter().find(|r| r.workload.contains("ENERGY")).unwrap();
    let rmt = rows.iter().find(|r| r.workload.contains("RMT")).unwrap();
    assert!(
        (0.25..0.42).contains(&es.dg_c8_reduction),
        "ENERGY STAR {}",
        es.dg_c8_reduction
    );
    assert!(
        (0.55..0.78).contains(&rmt.dg_c8_reduction),
        "RMT {}",
        rmt.dg_c8_reduction
    );
}

/// Sec. 5: the firmware overhead is ~0.3 KB, under 0.004% of the die.
#[test]
fn implementation_overhead() {
    let r = overhead::report();
    assert_eq!(r.firmware_bytes, 300);
    assert!(r.firmware_die_fraction < 4e-5);
    assert_eq!(r.c8_hardware_cost, 0);
}

/// Sanity anchor: the baseline 91 W part is the i7-6700K-class 4.2 GHz /
/// 4-core configuration of Table 2.
#[test]
fn table2_anchor() {
    let t = experiments::table2();
    assert_eq!(t.cores, 4);
    assert!((t.core_freq_ghz.1 - 4.2).abs() < 1e-9);
    assert!((t.tdp_w.0 - 35.0).abs() < 1e-9);
    assert!((t.tdp_w.1 - 91.0).abs() < 1e-9);
}

/// The DarkGates part never loses on CPU workloads at any TDP: spot-check
/// one scalable and one memory-bound benchmark per TDP level in both
/// modes.
#[test]
fn never_loses_on_cpu() {
    for tdp in dg_soc::products::Product::skylake_tdp_levels() {
        let s = DarkGates::desktop().product(tdp);
        let h = DarkGates::mobile().product(tdp);
        for name in ["444.namd", "410.bwaves"] {
            let b = by_name(name).unwrap();
            for mode in [SpecMode::Base, SpecMode::Rate] {
                let gain = run_spec(&s, &b, mode).perf / run_spec(&h, &b, mode).perf - 1.0;
                assert!(gain > -0.005, "{tdp} {name} {mode:?}: gain {gain}");
            }
        }
    }
}

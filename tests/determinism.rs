//! Determinism guarantees of the parallel experiment engine.
//!
//! The `dg-engine` pool promises bit-identical results for any worker
//! count: every `par_map`/`par_tasks` call collects into index-ordered
//! slots and all floating-point reductions stay sequential. These tests
//! pin that contract on the real experiment matrices by running the same
//! figure with different thread overrides and comparing every `f64` by
//! its bit pattern, not by tolerance.
//!
//! The thread override is process-global, so the tests serialize on a
//! shared lock.

use darkgates::experiments::{self, Fig7Result, Fig8Cell};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn fig7_bits(r: &Fig7Result) -> Vec<(String, u64, u64, u64, u64)> {
    let mut out: Vec<_> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.benchmark.clone(),
                row.suite as u64,
                row.scalability.to_bits(),
                row.gain.to_bits(),
                0u64,
            )
        })
        .collect();
    out.push((
        "summary".into(),
        0,
        r.average.to_bits(),
        r.max.to_bits(),
        r.rows.len() as u64,
    ));
    out
}

fn fig8_bits(cells: &[Fig8Cell]) -> Vec<(u64, u64, u64)> {
    cells
        .iter()
        .map(|c| {
            (
                c.tdp.value().to_bits(),
                c.base_gain.to_bits(),
                c.rate_gain.to_bits(),
            )
        })
        .collect()
}

#[test]
fn fig7_bit_identical_across_thread_counts() {
    let _lock = TEST_LOCK.lock().unwrap();
    let single = {
        let _guard = dg_engine::set_thread_override(1);
        experiments::fig7()
    };
    for workers in [2, 4] {
        let parallel = {
            let _guard = dg_engine::set_thread_override(workers);
            experiments::fig7()
        };
        assert_eq!(
            fig7_bits(&single),
            fig7_bits(&parallel),
            "fig7 diverged between 1 and {workers} worker(s)"
        );
    }
}

#[test]
fn fig8_bit_identical_across_thread_counts() {
    let _lock = TEST_LOCK.lock().unwrap();
    let single = {
        let _guard = dg_engine::set_thread_override(1);
        experiments::fig8()
    };
    let parallel = {
        let _guard = dg_engine::set_thread_override(4);
        experiments::fig8()
    };
    assert_eq!(
        fig8_bits(&single),
        fig8_bits(&parallel),
        "fig8 diverged between 1 and 4 workers"
    );
}

#[test]
fn cached_impedance_profile_matches_cold_computation() {
    let _lock = TEST_LOCK.lock().unwrap();
    use darkgates::pdn::impedance::ImpedanceAnalyzer;
    use darkgates::pdn::skylake::{PdnVariant, SkylakePdn};

    for variant in [PdnVariant::Gated, PdnVariant::Bypassed] {
        let pdn = SkylakePdn::build(variant);
        let cold = ImpedanceAnalyzer::default().profile(&pdn.ladder);
        // Cached path: first call may populate, second is guaranteed a hit.
        let warm1 = pdn.impedance_profile();
        let warm2 = pdn.impedance_profile();
        for (c, w) in [&warm1, &warm2]
            .into_iter()
            .flat_map(|w| cold.points().iter().zip(w.points()))
        {
            assert_eq!(c.0.value().to_bits(), w.0.value().to_bits());
            assert_eq!(c.1.value().to_bits(), w.1.value().to_bits());
        }
    }
}

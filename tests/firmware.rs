//! Firmware-level integration scenarios: the Pcode state machine, SVID
//! sequencing, licenses, the idle governor, and the C-state model working
//! together across crates.

use darkgates::units::{Seconds, Watts};
use darkgates::DarkGates;
use dg_cstates::states::PackageCstate;
use dg_pmu::license::License;
use dg_pmu::pcode::{Pcode, PcodeEvent};
use dg_power::dynamic::CdynProfile;
use dg_soc::trace_run::pcode_config;
use dg_workloads::spec::by_name;

fn boot(dg: &DarkGates, tdp_w: f64) -> Pcode {
    let product = dg.product(Watts::new(tdp_w));
    Pcode::boot(pcode_config(&product))
}

fn run_for(pcode: &mut Pcode, seconds: f64) {
    let dt = Seconds::from_ms(10.0);
    let steps = (seconds / dt.value()).round() as usize;
    for _ in 0..steps {
        pcode.step(dt);
    }
}

/// A full day-in-the-life scenario: boot → burst → AVX phase → idle →
/// wake → deep idle, with coherent telemetry at every stage.
#[test]
fn day_in_the_life() {
    let mut p = boot(&DarkGates::desktop(), 91.0);

    // Burst: all cores on a compute-heavy benchmark.
    let namd = by_name("444.namd").unwrap();
    p.handle(PcodeEvent::WorkloadChange {
        active_cores: 4,
        cdyn: namd.cdyn(),
    });
    run_for(&mut p, 10.0);
    let f_scalar = p.frequency().expect("running");
    assert!(f_scalar.as_ghz() >= 4.0, "scalar burst at {f_scalar}");

    // AVX-512 phase: frequency steps down by the license offset.
    p.handle(PcodeEvent::LicenseRequest(License::L2));
    run_for(&mut p, 5.0);
    let f_avx = p.frequency().expect("running");
    assert!(f_avx < f_scalar);
    assert_eq!(p.license(), License::L2);

    // Back to scalar, then into a long idle.
    p.handle(PcodeEvent::LicenseRequest(License::L0));
    run_for(&mut p, 2.0);
    p.handle(PcodeEvent::IdleRequest {
        expected_idle: Seconds::new(5.0),
    });
    assert_eq!(p.idle_state(), Some(PackageCstate::C8));
    run_for(&mut p, 5.0);

    // Wake into light work.
    p.handle(PcodeEvent::WorkloadChange {
        active_cores: 1,
        cdyn: CdynProfile::core_memory_bound(),
    });
    run_for(&mut p, 2.0);
    assert!(p.frequency().is_some());

    let t = p.telemetry();
    assert!(t.wakes >= 1);
    assert!(t.pstate_changes > 2);
    assert!(t.residency.idle_fraction(PackageCstate::C8) > 0.15);
    assert!(t.residency.active_fraction() > 0.5);
    assert!(t.max_tj.value() <= 94.0);
    // Energy bookkeeping covers the whole scenario.
    assert!((t.energy.elapsed().value() - 24.0).abs() < 0.5);
}

/// The same scenario on both packages: the desktop is faster when busy
/// and no worse than ~20 mW when deeply idle.
#[test]
fn hybrid_packages_compared_via_firmware() {
    let mut results = Vec::new();
    for dg in [DarkGates::desktop(), DarkGates::mobile()] {
        let mut p = boot(&dg, 91.0);
        p.handle(PcodeEvent::WorkloadChange {
            active_cores: 1,
            cdyn: CdynProfile::core_typical(),
        });
        run_for(&mut p, 10.0);
        let busy_f = p.frequency().expect("running");
        p.handle(PcodeEvent::IdleRequest {
            expected_idle: Seconds::new(10.0),
        });
        let idle_state = p.idle_state().expect("idle");
        // Average power over the idle stretch only.
        let before = p.telemetry().energy.energy_joules();
        run_for(&mut p, 10.0);
        let idle_power = (p.telemetry().energy.energy_joules() - before) / 10.0;
        results.push((busy_f, idle_state, idle_power));
    }
    let (f_desktop, s_desktop, p_desktop) = results[0];
    let (f_mobile, s_mobile, p_mobile) = results[1];
    assert!(
        f_desktop.as_mhz() - f_mobile.as_mhz() >= 300.0,
        "busy: {f_desktop} vs {f_mobile}"
    );
    assert_eq!(s_desktop, PackageCstate::C8);
    assert!(s_mobile <= PackageCstate::C7);
    assert!(
        (p_desktop - p_mobile).abs() < 0.05,
        "idle: desktop {p_desktop} W vs mobile {p_mobile} W"
    );
}

/// SVID sequencing: the firmware's voltage transitions always lead the
/// frequency on the way up — observable as a sub-ceiling frequency
/// immediately after a cold workload start.
#[test]
fn voltage_leads_frequency() {
    let mut p = boot(&DarkGates::mobile(), 91.0);
    p.handle(PcodeEvent::WorkloadChange {
        active_cores: 1,
        cdyn: CdynProfile::core_typical(),
    });
    // The rail boots at the floor VID; the first microseconds cannot run
    // the top bin.
    p.step(Seconds::from_us(5.0));
    let early = p.frequency().expect("running");
    run_for(&mut p, 2.0);
    let settled = p.frequency().expect("running");
    assert!(early < settled, "early {early} vs settled {settled}");
    assert!(p.svid_commands() >= 2);
}

/// Thermal integrity under the firmware at the smallest cooler: a
/// sustained all-core virus run never breaches Tjmax.
#[test]
fn firmware_respects_tjmax_at_35w() {
    let mut p = boot(&DarkGates::desktop(), 35.0);
    p.handle(PcodeEvent::WorkloadChange {
        active_cores: 4,
        cdyn: CdynProfile::core_virus(),
    });
    run_for(&mut p, 180.0);
    assert!(
        p.telemetry().max_tj.value() <= 93.5,
        "Tj {}",
        p.telemetry().max_tj
    );
    // The budget binds long before the cooler does (that is what a
    // TDP-sized cooler means): the virus run is pinned well below the
    // fused ceiling.
    let f = p.frequency().expect("running");
    assert!(f.as_ghz() <= 3.2, "virus sustained {f}");
    // Sustained power lands at (or under) PL1 once the EMA clamps.
    let avg = p.telemetry().energy.average_power();
    assert!(avg.value() <= 35.0 * 1.25 + 1.0, "avg {avg}");
}

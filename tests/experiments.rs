//! Full-scale experiment regressions: run every figure's harness and
//! assert the paper's shape (direction, approximate magnitude,
//! crossovers). Exact paper-vs-measured numbers are recorded in
//! EXPERIMENTS.md.

use darkgates::experiments::{fig10, fig3, fig3_sweep, fig4, fig7, fig8, fig9, table1, table2};
use dg_workloads::spec::{SpecMode, SpecSuite};

#[test]
fn fig3_guardband_reduction_motivation() {
    let rows = fig3();
    // 4 TDPs × 2 modes × 2 suites.
    assert_eq!(rows.len(), 16);
    for r in &rows {
        // Every class gains; the paper reports 6–10% averages with the
        // extremes set by TDP and mode.
        assert!(
            (0.02..0.14).contains(&r.gain),
            "{:?} {:?} @ {}: gain {}",
            r.suite,
            r.mode,
            r.tdp,
            r.gain
        );
    }
    // Observation 4: base gains grow as TDP shrinks.
    let base_gain = |tdp_w: f64| -> f64 {
        let sel: Vec<_> = rows
            .iter()
            .filter(|r| (r.tdp.value() - tdp_w).abs() < 1e-9 && r.mode == SpecMode::Base)
            .collect();
        sel.iter().map(|r| r.gain).sum::<f64>() / sel.len() as f64
    };
    assert!(base_gain(35.0) > base_gain(95.0));
    // Observation 5: at the top TDP, rate gains exceed base gains.
    let at_95: Vec<_> = rows
        .iter()
        .filter(|r| (r.tdp.value() - 95.0).abs() < 1e-9)
        .collect();
    let rate_95 = at_95
        .iter()
        .filter(|r| r.mode == SpecMode::Rate)
        .map(|r| r.gain)
        .sum::<f64>()
        / 2.0;
    let base_95 = at_95
        .iter()
        .filter(|r| r.mode == SpecMode::Base)
        .map(|r| r.gain)
        .sum::<f64>()
        / 2.0;
    assert!(rate_95 > base_95, "rate {rate_95} vs base {base_95}");
}

#[test]
fn fig3_sweep_gain_grows_with_frequency() {
    let points = fig3_sweep();
    assert_eq!(points.len(), 16);
    // Within each TDP, a deeper guardband reduction never lowers the
    // uplift or the gain (Fig. 3: performance improves as the frequency
    // increases).
    for tdp_w in [35.0, 45.0, 65.0, 95.0] {
        let series: Vec<_> = points
            .iter()
            .filter(|p| (p.tdp.value() - tdp_w).abs() < 1e-9)
            .collect();
        assert_eq!(series.len(), 4);
        for w in series.windows(2) {
            assert!(w[1].uplift_mhz >= w[0].uplift_mhz);
            assert!(
                w[1].gain >= w[0].gain - 1e-9,
                "{tdp_w} W: gain fell from {} to {}",
                w[0].gain,
                w[1].gain
            );
        }
        // The 100 mV endpoint matches the main fig3 experiment's regime.
        assert!(series[3].gain > 0.02);
    }
}

#[test]
fn fig4_impedance_profile() {
    let r = fig4();
    assert!((1.5..3.0).contains(&r.mean_ratio), "mean {}", r.mean_ratio);
    assert!(r.gated.dominates(&r.bypassed, 1.0));
    // Both profiles cover the full sweep with finite values.
    assert!(r.gated.points().len() >= 100);
    for &(_, z) in r.gated.points().iter().chain(r.bypassed.points()) {
        assert!(z.value() > 0.0 && z.is_finite());
    }
}

#[test]
fn fig7_per_benchmark_gains() {
    let r = fig7();
    assert_eq!(r.rows.len(), 29);
    assert!((0.038..0.058).contains(&r.average), "avg {}", r.average);
    assert!((0.070..0.095).contains(&r.max), "max {}", r.max);
    // No benchmark loses, none gains more than the frequency uplift.
    for row in &r.rows {
        assert!(
            (-0.002..0.105).contains(&row.gain),
            "{}: {}",
            row.benchmark,
            row.gain
        );
    }
    // Both suites are represented.
    assert!(r.rows.iter().any(|x| x.suite == SpecSuite::Int));
    assert!(r.rows.iter().any(|x| x.suite == SpecSuite::Fp));
}

#[test]
fn fig8_tdp_sweep() {
    let cells = fig8();
    assert_eq!(cells.len(), 4);
    for c in &cells {
        assert!(
            (0.030..0.070).contains(&c.base_gain),
            "{}: base {}",
            c.tdp,
            c.base_gain
        );
        assert!(
            (0.030..0.070).contains(&c.rate_gain),
            "{}: rate {}",
            c.tdp,
            c.rate_gain
        );
    }
    // Paper trends: base gains shrink with TDP...
    assert!(
        cells[0].base_gain > cells[3].base_gain,
        "base trend: {} -> {}",
        cells[0].base_gain,
        cells[3].base_gain
    );
    // ...and at 91 W, rate gains exceed base gains (Vmax-constrained).
    assert!(
        cells[3].rate_gain > cells[3].base_gain,
        "91W: rate {} vs base {}",
        cells[3].rate_gain,
        cells[3].base_gain
    );
    // At 35 W the ordering flips (thermally constrained).
    assert!(
        cells[0].base_gain > cells[0].rate_gain,
        "35W: base {} vs rate {}",
        cells[0].base_gain,
        cells[0].rate_gain
    );
}

#[test]
fn fig9_graphics_degradation() {
    let rows = fig9();
    assert_eq!(rows.len(), 4);
    // 35 W: small but real degradation (~2%).
    assert!(
        (0.005..0.05).contains(&rows[0].degradation),
        "35W: {}",
        rows[0].degradation
    );
    // 45 W and up: no meaningful degradation.
    for r in &rows[1..] {
        assert!(r.degradation.abs() < 0.01, "{}: {}", r.tdp, r.degradation);
    }
}

#[test]
fn fig10_energy_workloads() {
    let rows = fig10();
    let es = &rows[0];
    let rmt = &rows[1];
    // Paper: −33% (ENERGY STAR) and −68% (RMT) for DarkGates+C8.
    assert!((0.25..0.42).contains(&es.dg_c8_reduction), "{es:?}");
    assert!((0.55..0.78).contains(&rmt.dg_c8_reduction), "{rmt:?}");
    // The baseline's RMT idle sits in the few-hundred-milliwatt band the
    // paper describes.
    assert!(
        (0.3..0.9).contains(&rmt.non_dg_c7_power.value()),
        "RMT baseline {}",
        rmt.non_dg_c7_power
    );
    for r in &rows {
        assert!(!r.dg_c7_meets_limit);
        assert!(r.dg_c8_meets_limit);
        assert!(r.non_dg_meets_limit);
        assert!(r.non_dg_reduction >= r.dg_c8_reduction);
    }
}

/// The harness is deterministic: repeated runs produce identical results
/// (no hidden RNG, no time dependence).
#[test]
fn experiments_are_deterministic() {
    assert_eq!(fig4(), fig4());
    assert_eq!(fig10(), fig10());
    use darkgates::units::Watts;
    use darkgates::DarkGates;
    use dg_soc::run::run_spec;
    use dg_workloads::spec::by_name;
    let s = DarkGates::desktop().product(Watts::new(91.0));
    let namd = by_name("444.namd").unwrap();
    let a = run_spec(&s, &namd, SpecMode::Base);
    let b = run_spec(&s, &namd, SpecMode::Base);
    assert_eq!(a, b);
}

#[test]
fn tables_regenerate() {
    let t1 = table1();
    assert_eq!(t1.len(), 8);
    assert!(t1
        .iter()
        .any(|(s, d)| format!("{s}") == "C8" && d.contains("VR is OFF")));
    let t2 = table2();
    assert_eq!(t2.cores, 4);
    assert!(t2.mobile.contains("baseline"));
}

//! Turbo timeline: the PL2 burst → PL1 sustain dynamics of a rate run,
//! step by step, on both packages.
//!
//! Prints a text timeline of frequency, package power, budget, and
//! junction temperature — the behaviour the time-stepped simulator adds
//! over a closed-form solver.
//!
//! Run with: `cargo run --release -p darkgates --example turbo_timeline`

use darkgates::units::{Seconds, Watts};
use darkgates::DarkGates;
use dg_power::dynamic::CdynProfile;
use dg_soc::sim::{SimConfig, Simulator};

fn main() {
    let tdp = Watts::new(35.0);
    println!("=== Turbo burst and sustain at {tdp} (all-core typical load) ===\n");

    for dg in [DarkGates::desktop(), DarkGates::mobile()] {
        let product = dg.product(tdp);
        let sim = Simulator::new(&product);
        let cfg = SimConfig {
            duration: Seconds::new(120.0),
            dt: Seconds::new(0.25),
            trace: true,
        };
        let r = sim.run_cpu(&product.table_ac, 4, CdynProfile::core_typical(), cfg);

        println!("{}", product.name);
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>7}",
            "time", "freq", "power", "budget", "Tj"
        );
        // Log-spaced sample times capture both the burst and the sustain.
        for &t_s in &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 120.0] {
            let idx = ((t_s / 0.25) as usize - 1).min(r.trace.len() - 1);
            let step = &r.trace[idx];
            println!(
                "{:>6.1} s {:>6.2} GHz {:>7.1} W {:>7.1} W {:>5.1} C",
                step.time.value(),
                step.frequency.as_ghz(),
                step.power.value(),
                step.budget.value(),
                step.tj.value()
            );
        }
        println!(
            "  -> sustained {:.2} GHz, average {:.1} W, peak Tj {:.1} C\n",
            r.sustained_frequency.as_ghz(),
            r.avg_power.value(),
            r.max_tj.value()
        );
    }

    println!("Both parts burst at PL2 until the running-average power hits");
    println!("PL1, then settle; the DarkGates part sustains a higher clock");
    println!("because the same power buys more bins on its better V/F curve.");
}

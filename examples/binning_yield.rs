//! Binning yield: how DarkGates moves a whole die population up the
//! frequency-bin ladder.
//!
//! Samples a population of dies with process variation, bins each under
//! the gated and bypassed guardbands against the same voltage budget, and
//! prints the two bin histograms side by side.
//!
//! Run with: `cargo run --release -p darkgates --example binning_yield`

use darkgates::units::{Hertz, Volts, Watts};
use darkgates::DarkGates;
use dg_power::pstate::PStateTable;
use dg_power::variation::{bin_population, ProcessVariation};
use dg_power::vf::VfCurve;

fn main() {
    let tdp = Watts::new(91.0);
    let gb_gated = DarkGates::mobile().guardband_manager().total_guardband(tdp);
    let gb_byp = DarkGates::desktop()
        .guardband_manager()
        .total_guardband(tdp);

    let nominal = VfCurve::skylake_core();
    // The budget every die is screened against: the voltage the nominal
    // gated die needs at its 4.2 GHz anchor.
    let budget = nominal
        .voltage_at(Hertz::from_ghz(4.2))
        .expect("anchor on curve")
        + gb_gated;

    let population = ProcessVariation::mature_14nm().population(2026, 2000);
    let bin = PStateTable::standard_bin();
    let gated = bin_population(&population, &nominal, gb_gated, budget, bin);
    let bypassed = bin_population(&population, &nominal, gb_byp, budget, bin);

    println!(
        "=== Binning 2000 dies against a {:.3} V budget ===\n",
        budget.value()
    );
    println!(
        "guardbands: gated {:.1} mV, bypassed {:.1} mV\n",
        gb_gated.as_mv(),
        gb_byp.as_mv()
    );
    println!("{:>9} {:>12} {:>12}", "bin", "gated", "bypassed");

    let mut freqs: Vec<Hertz> = gated
        .bins
        .iter()
        .chain(bypassed.bins.iter())
        .map(|(f, _)| *f)
        .collect();
    freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    freqs.dedup_by(|a, b| (a.value() - b.value()).abs() < 1.0);

    let count_at = |report: &dg_power::variation::BinningReport, f: Hertz| {
        report
            .bins
            .iter()
            .find(|(bf, _)| (bf.value() - f.value()).abs() < 1.0)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    for f in freqs {
        println!(
            "{:>7.1}G {:>12} {:>12}",
            f.as_ghz(),
            count_at(&gated, f),
            count_at(&bypassed, f)
        );
    }
    println!(
        "\nmedian bin: gated {:.1} GHz -> bypassed {:.1} GHz",
        gated.median_bin().expect("yield").as_ghz(),
        bypassed.median_bin().expect("yield").as_ghz()
    );
    println!(
        "rejects: gated {}, bypassed {}",
        gated.rejects, bypassed.rejects
    );
    println!("\nEvery die gains ~4 bins: the guardband saving is common-mode");
    println!("across variation, so the whole population shifts upward.");
    let _ = Volts::ZERO;
}

//! Segment binning: one die, two packages (paper Secs. 2.2, 4.1).
//!
//! Walks the whole product catalog and prints a Table-2-style SKU ladder:
//! for every TDP level, the gated mobile part and its DarkGates desktop
//! sibling, with ceilings, guardbands, and C-state capability.
//!
//! Run with: `cargo run --release -p darkgates --example segment_binning`

use darkgates::DarkGates;
use dg_soc::products::Product;
use dg_soc::run::run_spec;
use dg_workloads::spec::{suite, SpecMode};

fn main() {
    println!("=== Skylake die → two packages (segment binning) ===\n");
    println!(
        "{:<6} {:<10} {:>9} {:>9} {:>11} {:>9} {:>10}",
        "TDP", "package", "1c turbo", "ac turbo", "guardband", "deepest", "avg gain"
    );

    for tdp in Product::skylake_tdp_levels() {
        let s = DarkGates::desktop().product(tdp);
        let h = DarkGates::mobile().product(tdp);

        // Average SPEC base gain of the desktop part over its sibling.
        let all = suite();
        let gain: f64 = all
            .iter()
            .map(|b| {
                run_spec(&s, b, SpecMode::Base).perf / run_spec(&h, b, SpecMode::Base).perf - 1.0
            })
            .sum::<f64>()
            / all.len() as f64;

        for (p, label, g) in [(&h, "gated", None), (&s, "bypassed", Some(gain))] {
            println!(
                "{:<6} {:<10} {:>7.1}G {:>7.1}G {:>8.1} mV {:>9} {:>10}",
                format!("{}W", tdp.value()),
                label,
                p.fmax_1c().as_ghz(),
                p.fmax_ac().as_ghz(),
                p.guardband.as_mv(),
                format!("{}", p.deepest_pkg_cstate),
                g.map(|x| format!("{:+.1}%", x * 100.0))
                    .unwrap_or_else(|| "ref".to_owned()),
            );
        }
        println!();
    }

    println!("Both packages share one die: identical V/F silicon, leakage,");
    println!("and thermal models — only the package wiring (power-gate");
    println!("bypass), the firmware fuse, and the platform C-state ceiling");
    println!("differ.");
}

//! Quickstart: build both sides of the DarkGates hybrid, compare their
//! guardbands, frequency ceilings, a benchmark run, and idle power.
//!
//! Run with: `cargo run --release -p darkgates --example quickstart`

use darkgates::units::Watts;
use darkgates::DarkGates;
use dg_cstates::power::IdlePowerModel;
use dg_soc::run::run_spec;
use dg_workloads::spec::{by_name, SpecMode};

fn main() {
    let tdp = Watts::new(91.0);
    let desktop = DarkGates::desktop();
    let mobile = DarkGates::mobile();

    println!("=== DarkGates quickstart (91 W desktop vs. gated baseline) ===\n");

    // Component 1: the package-level PDN.
    let pdn_d = desktop.build_pdn();
    let pdn_m = mobile.build_pdn();
    println!("PDN DC resistance:");
    println!("  bypassed (Skylake-S): {:.3}", pdn_d.dc_resistance());
    println!("  gated    (Skylake-H): {:.3}", pdn_m.dc_resistance());

    // Component 2: the firmware guardbands.
    let gb_d = desktop.guardband_manager().total_guardband(tdp);
    let gb_m = mobile.guardband_manager().total_guardband(tdp);
    println!("\nTotal voltage guardband at {tdp}:");
    println!("  bypassed: {:.1} mV", gb_d.as_mv());
    println!("  gated:    {:.1} mV", gb_m.as_mv());
    println!("  saving:   {:.1} mV", (gb_m - gb_d).as_mv());

    // The products that fall out.
    let s = desktop.product(tdp);
    let h = mobile.product(tdp);
    println!("\nFused 1-core turbo ceilings:");
    println!("  {}: {:.1} GHz", s.name, s.fmax_1c().as_ghz());
    println!("  {}: {:.1} GHz", h.name, h.fmax_1c().as_ghz());

    // Run a scalable benchmark on both.
    let namd = by_name("444.namd").expect("444.namd is in the suite");
    let rs = run_spec(&s, &namd, SpecMode::Base);
    let rh = run_spec(&h, &namd, SpecMode::Base);
    println!("\n444.namd (SPEC base):");
    println!(
        "  DarkGates: {:.2} GHz sustained, {:.1} W package",
        rs.sustained_frequency.as_ghz(),
        rs.avg_power.value()
    );
    println!(
        "  baseline:  {:.2} GHz sustained, {:.1} W package",
        rh.sustained_frequency.as_ghz(),
        rh.avg_power.value()
    );
    println!(
        "  performance gain: {:+.1}%",
        (rs.perf / rh.perf - 1.0) * 100.0
    );

    // Component 3: idle power with the deeper C-state.
    let model = IdlePowerModel::new();
    println!("\nFully-idle package power:");
    for dg in [&desktop, &mobile] {
        let state = dg.deepest_package_cstate();
        let p = model.package_idle_power(state, &dg.gating_config());
        println!("  {:?} at package {state}: {:.2}", dg.mode(), p);
    }
}

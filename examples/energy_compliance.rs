//! Energy compliance: ENERGY STAR and Ready Mode on the three Fig. 10
//! configurations, showing why DarkGates *needs* package C8.
//!
//! Run with: `cargo run --release -p darkgates --example energy_compliance`

use darkgates::experiments::fig10;
use darkgates::units::Watts;
use darkgates::DarkGates;
use dg_soc::run::run_energy;
use dg_workloads::energy::{energy_star, ready_mode};

fn main() {
    println!("=== Desktop energy-efficiency compliance (Fig. 10) ===\n");

    for row in fig10() {
        println!("{}", row.workload);
        println!(
            "  DarkGates + C7 (reference): {:>6.3} W   {}",
            row.dg_c7_power.value(),
            verdict(row.dg_c7_meets_limit)
        );
        println!(
            "  DarkGates + C8:             {:>6.3} W   {}   (−{:.0}%)",
            row.dg_c8_power.value(),
            verdict(row.dg_c8_meets_limit),
            row.dg_c8_reduction * 100.0
        );
        println!(
            "  Non-DarkGates + C7:         {:>6.3} W   {}   (−{:.0}%)",
            row.non_dg_c7_power.value(),
            verdict(row.non_dg_meets_limit),
            row.non_dg_reduction * 100.0
        );
        println!();
    }

    println!("Full-product runs (run_energy on the 91 W catalog parts):");
    for dg in [DarkGates::desktop(), DarkGates::mobile()] {
        let product = dg.product(Watts::new(91.0));
        for wl in [energy_star(), ready_mode()] {
            let r = run_energy(&product, &wl);
            println!(
                "  {:<28} {:<18} {:>6.3} W  {}",
                product.name,
                r.workload,
                r.avg_power.value(),
                verdict(r.meets_limit)
            );
        }
    }

    println!("\nWithout C8, the bypassed cores leak through package C7's");
    println!("always-on core VR and the desktop misses both programs'");
    println!("limits; C8 turns the core VR off and recovers compliance.");
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

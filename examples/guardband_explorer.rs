//! Guardband explorer: how the droop guardband is built from the PDN and
//! what each millivolt is worth in frequency.
//!
//! Sweeps the worst-case current step, recomputes the droop guardband from
//! both impedance profiles, and converts the saving into 100 MHz bins via
//! the V/F curve — the full mechanism chain of the paper in one table.
//!
//! Run with: `cargo run --release -p darkgates --example guardband_explorer`

use darkgates::units::{Amps, Hertz, Volts, Watts};
use darkgates::DarkGates;
use dg_power::pstate::PStateTable;
use dg_power::vf::VfCurve;

fn main() {
    let desktop = DarkGates::desktop();
    let mobile = DarkGates::mobile();

    let z_gated = mobile.build_pdn().peak_impedance();
    let z_byp = desktop.build_pdn().peak_impedance();
    println!("=== Guardband explorer ===\n");
    println!("Peak PDN impedance:");
    println!("  gated:    {:.3} mΩ", z_gated.as_mohm());
    println!("  bypassed: {:.3} mΩ", z_byp.as_mohm());
    println!("  ratio:    {:.2}×  (paper Fig. 4: ≈2×)\n", z_gated / z_byp);

    let rel = desktop.reliability_model();
    let tdp = Watts::new(91.0);
    let curve = VfCurve::skylake_core();
    let bin = PStateTable::standard_bin();
    let anchor = Hertz::from_ghz(4.2);
    let v_anchor = curve.voltage_at(anchor).expect("anchor on curve");

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "ΔI step", "gated gb", "byp gb", "saving", "Fmax byp", "bins"
    );
    for step_a in [20.0, 30.0, 40.0, 48.0, 60.0] {
        let step = Amps::new(step_a);
        let gb_gated = z_gated * step;
        let gb_byp = z_byp * step + rel.guardband(tdp);
        let saving = gb_gated - gb_byp;
        // The budget the gated part needed at 4.2 GHz now feeds the
        // bypassed curve.
        let budget = v_anchor + gb_gated;
        let fmax = curve
            .with_guardband(gb_byp)
            .max_frequency_at_quantized(budget, bin)
            .expect("budget covers curve");
        let bins = ((fmax.as_mhz() - anchor.as_mhz()) / 100.0).round() as i64;
        println!(
            "{:>6.0} A {:>9.1} mV {:>9.1} mV {:>7.1} mV {:>7.1} GHz {:>+8}",
            step_a,
            gb_gated.as_mv(),
            gb_byp.as_mv(),
            saving.as_mv(),
            fmax.as_ghz(),
            bins
        );
    }

    println!("\nReliability adder for the bypassed part (paper Sec. 4.2):");
    for tdp_w in [35.0, 45.0, 65.0, 91.0] {
        let gb = rel.guardband(Watts::new(tdp_w));
        println!("  {tdp_w:>3.0} W: {:>5.1} mV", gb.as_mv());
    }
    println!(
        "  extra junction temperature: ~{:.0} °C",
        rel.extra_temperature().value()
    );

    let total_g = mobile.guardband_manager().total_guardband(tdp);
    let total_b = desktop.guardband_manager().total_guardband(tdp);
    println!(
        "\nProduction setting (ΔI = 48 A): {:.1} mV gated vs {:.1} mV bypassed",
        total_g.as_mv(),
        total_b.as_mv()
    );
    println!(
        "net saving {:.1} mV → the +400 MHz fused ceiling of the catalog.",
        (total_g - total_b).as_mv()
    );
    let _ = Volts::ZERO;
}

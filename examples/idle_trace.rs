//! Idle-trace replay: the Pcode firmware and idle governor driving real
//! busy/idle phase traces through both packages.
//!
//! Shows the full C-state machinery live: break-even selection, the
//! governor's prediction and demotion, package C8 entry on the DarkGates
//! desktop, and the resulting average power.
//!
//! Run with: `cargo run --release -p darkgates --example idle_trace`

use darkgates::units::{Seconds, Watts};
use darkgates::DarkGates;
use dg_soc::trace_run::run_trace;
use dg_workloads::trace::{bursty, rmt_trace, video_playback};

fn main() {
    let tdp = Watts::new(91.0);
    let desktop = DarkGates::desktop().product(tdp);
    let mobile = DarkGates::mobile().product(tdp);

    let traces = vec![
        rmt_trace(7, Seconds::new(120.0)),
        video_playback(Seconds::new(20.0)),
        bursty(
            21,
            Seconds::new(60.0),
            Seconds::new(0.2),
            Seconds::new(1.2),
            2,
        ),
    ];

    println!("=== Phase-trace replay through the Pcode firmware ===\n");
    for trace in &traces {
        println!(
            "{} ({:.0}% busy, {:.0} s)",
            trace.name,
            trace.busy_fraction() * 100.0,
            trace.total_duration().value()
        );
        for product in [&desktop, &mobile] {
            let dt = Seconds::from_ms(1.0);
            let r = run_trace(product, trace, dt);
            println!(
                "  {:<28} avg {:>7.3} W | busy f {:>4.1} GHz | {:>4.0}% in {} | {:>3} wakes | {} demotions",
                product.name,
                r.avg_power.value(),
                r.avg_busy_frequency.as_ghz(),
                r.deepest_state_fraction * 100.0,
                product.deepest_pkg_cstate,
                r.wakes,
                r.demotions,
            );
        }
        println!();
    }

    println!("The RMT-shaped trace shows the architecture end to end: the");
    println!("DarkGates desktop parks in package C8 (core VR off) and");
    println!("matches the gated baseline's idle power, while its busy");
    println!("bursts run ~400 MHz faster.");
}

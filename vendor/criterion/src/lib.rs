//! Offline stand-in for the `criterion` API surface this workspace uses.
//!
//! Provides `Criterion`, `benchmark_group` / `bench_function` / `iter`, and
//! the `criterion_group!` / `criterion_main!` macros with a simple
//! wall-clock measurement loop: per benchmark it warms up once, then times
//! `sample_size` batches and reports min / mean / max per-iteration time.
//! No statistics beyond that — the goal is a dependency-free timed harness
//! whose numbers are comparable run-to-run on the same host.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, mirroring
/// `criterion::black_box`.
pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` invocations of `routine` (after one warm-up
    /// call) and records a sample per invocation.
    // Benchmarks are the one place wall-clock time is the measurement
    // itself, not an input to a result; the disallowed-methods lint
    // guards simulation determinism, which timing samples never feed.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples (b.iter was not called)");
        return;
    }
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "  {label}: min {} / mean {} / max {} ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_record_samples() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // one warm-up + three timed samples
        assert_eq!(ran, 4);
        c.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}

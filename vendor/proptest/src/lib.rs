//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! The build environment cannot resolve crates.io, so this crate provides a
//! deterministic, dependency-free property-testing harness with the same
//! source-level surface as the subset of proptest the repo's test suites
//! use:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * numeric range strategies (`0.0..1.0f64`, `1..8usize`, `0..=4u8`, ...),
//! * `prop::bool::ANY`, `prop::collection::vec`, `prop::sample::select`,
//! * tuple strategies and `.prop_map`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! derived from the test's name (fully deterministic, no persistence
//! files) and failing cases are reported without shrinking. Each failure
//! message includes the case index so a run can be reproduced by seed.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for `test_name`, deterministically: the seed is an
    /// FNV-1a hash of the name, so every run of a given test generates the
    /// same case sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }
}

/// Outcome of one generated case: rejected by `prop_assume!` or failed by a
/// `prop_assert!`.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy an assumption; skip it.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the workspace's heavier
        // simulator properties fast while still sweeping the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The strategy type behind [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Generates `true` / `false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                crate::TestRng::next_u64(rng) & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length bounds accepted by [`vec`].
        pub trait SizeBounds {
            /// Inclusive `(min, max)` lengths.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeBounds for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl SizeBounds for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl SizeBounds for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// A vector of `min..=max` values drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { elem, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max - self.min) as u64 + 1;
                let len = self.min + (crate::TestRng::next_u64(rng) % span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// The strategy returned by [`select`].
        pub struct Select<T>(Vec<T>);

        /// Uniformly selects one of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = (crate::TestRng::next_u64(rng) % self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares deterministic property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Generated values are bound (typed) above and moved into a
                // zero-argument closure so that `$body` sees concretely-typed
                // names and `prop_assert!`'s early `return Err(..)` exits only
                // the case, not the whole test.
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $arg;)+
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let ok: bool = $cond;
        if !ok {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let ok: bool = $cond;
        if !ok {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        let ok: bool = $cond;
        if !ok {
            return Err($crate::TestCaseError::Reject);
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_label() -> impl Strategy<Value = &'static str> {
        prop::sample::select(vec!["a", "b", "c"])
    }

    proptest! {
        /// Range strategies stay in bounds and the harness runs the body.
        #[test]
        fn ranges_in_bounds(x in 0.25..0.75f64, n in 1..5usize, b in prop::bool::ANY) {
            prop_assert!((0.25..0.75).contains(&x), "x {x}");
            prop_assert!((1..5).contains(&n));
            prop_assert!(if b { n >= 1 } else { n < 5 });
        }

        /// Vec and tuple strategies compose; prop_map transforms.
        #[test]
        fn composite_strategies(
            pairs in prop::collection::vec((1..4usize, 0.0..1.0f64), 2..6),
            label in arb_label(),
            scaled in (0..10u8).prop_map(|v| v as f64 * 0.5),
        ) {
            prop_assert!((2..6).contains(&pairs.len()));
            for (n, f) in &pairs {
                prop_assert!((1..4).contains(n));
                prop_assert!((0.0..1.0).contains(f));
            }
            prop_assert!(["a", "b", "c"].contains(&label));
            prop_assert!((0.0..=4.5).contains(&scaled));
            prop_assert_eq!(label.len(), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0.0..1.0f64) {
            prop_assume!(x < 0.5);
            prop_assert!(x < 0.5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0.0..1.0f64;
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&s, &mut a).to_bits(),
                Strategy::generate(&s, &mut b).to_bits()
            );
        }
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! This workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! nothing serializes values — so the derives expand to nothing. The sibling
//! `serde` stand-in provides blanket trait impls, which keeps any future
//! `T: Serialize` bound satisfied without per-type codegen.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `rand` API surface this workspace uses.
//!
//! Implements `StdRng::seed_from_u64`, `Rng::gen_range` over the common
//! numeric range types, and `Rng::gen_bool` on top of xoshiro256++ seeded
//! via SplitMix64 — the same construction the xoshiro reference code
//! recommends. The statistical quality is far beyond what the workspace's
//! seeded Monte-Carlo models (process variation sampling, synthetic idle
//! traces) require, and everything stays deterministic per seed.
//!
//! The stream differs from the real `rand::rngs::StdRng` (ChaCha12), so
//! seeded sequences are not bit-compatible with upstream — all in-repo
//! consumers assert distributional properties, not exact draws.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly-distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto the unit interval `[0, 1)` with 53-bit
/// resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from 64 uniform bits.
pub trait SampleRange<T> {
    /// Uniform sample of the range from `bits`.
    fn sample(self, bits: u64) -> T;
}

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (unit_f64(bits) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                lo + (unit_f64(bits) as $t) * (hi - lo)
            }
        }
    )*};
}
float_ranges!(f32, f64);

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bits % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (bits % span) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit
            // state, per the xoshiro authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            a.gen_range(0..u64::MAX),
            c.gen_range(0..u64::MAX),
            "different seeds should diverge"
        );
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(0..=4u8);
            assert!(j <= 4);
            let g = rng.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
        assert!(xs.iter().any(|&x| x < 0.01));
        assert!(xs.iter().any(|&x| x > 0.99));
    }
}

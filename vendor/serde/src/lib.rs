//! Offline stand-in for the `serde` API surface this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `serde` cannot be resolved. The workspace derives `Serialize` /
//! `Deserialize` on its model types purely as forward-looking metadata —
//! no code path serializes a value — so this crate provides:
//!
//! * marker traits `Serialize` and `Deserialize<'de>` with blanket impls,
//!   so `T: Serialize` bounds are always satisfiable, and
//! * re-exported no-op derive macros from the local `serde_derive` stand-in.
//!
//! Swapping the real serde back in (when a registry is available) is a
//! one-line change in the workspace `Cargo.toml`; no downstream code needs
//! to change because the import surface (`use serde::{Deserialize,
//! Serialize};`) is identical.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        _x: f64,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Variants {
        _A,
        _B(u32),
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derives_expand_and_bounds_hold() {
        assert_serialize::<Plain>();
        assert_serialize::<Variants>();
        assert_serialize::<Vec<(f64, String)>>();
    }
}
